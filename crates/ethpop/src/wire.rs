//! `PeerConn`: drives one RLPx + DEVp2p + eth connection over a simulated
//! TCP stream.
//!
//! Both the behavioral nodes and NodeFinder itself use this driver; policy
//! (when to dial, when to disconnect, what to log) lives with the caller.

use crate::state;
use bytes::BytesMut;
use devp2p::{DisconnectReason, Hello, Session, SessionEvent, SharedCapability};
use enode::NodeId;
use ethcrypto::secp256k1::SecretKey;
use ethwire::EthMessage;
use netsim::{ConnId, SnapError, SnapReader, SnapWriter};
use rlpx::{expected_len, FrameCodec, Handshake, Role};

/// Things a connection surfaces to its owner.
#[derive(Debug, Clone, PartialEq)]
pub enum WireEvent {
    /// RLPx handshake finished; DEVp2p HELLO is on its way.
    RlpxEstablished {
        /// Authenticated peer identity.
        peer_id: NodeId,
    },
    /// The peer's HELLO arrived.
    Hello {
        /// The HELLO contents.
        hello: Hello,
        /// Negotiated capabilities (empty ⇒ useless peer).
        shared: Vec<SharedCapability>,
    },
    /// An eth-subprotocol message arrived.
    Eth(EthMessage),
    /// A message for a non-eth capability arrived (counted, not decoded).
    OtherSubprotocol {
        /// Capability name.
        cap: String,
        /// Relative message id.
        msg: u64,
    },
    /// DEVp2p keepalive ping (pong is queued automatically).
    Ping,
    /// DEVp2p keepalive answer.
    Pong,
    /// The peer sent DISCONNECT.
    Disconnected(DisconnectReason),
    /// The peer violated the protocol; the owner should close the socket.
    ProtocolError(&'static str),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Waiting for TCP to come up (dialer only).
    Connecting,
    /// RLPx auth/ack in flight.
    Handshaking,
    /// Framed session running.
    Active,
    /// Terminal.
    Dead,
}

/// One peer connection's full protocol state.
pub struct PeerConn {
    /// Simulator connection id.
    pub conn: ConnId,
    role: Role,
    stage: Stage,
    handshake: Option<Handshake>,
    remote_id_hint: Option<NodeId>,
    codec: Option<FrameCodec>,
    session: Option<Session>,
    local_hello: Hello,
    inbuf: BytesMut,
    /// Authenticated peer id (after RLPx).
    pub peer_id: Option<NodeId>,
    /// When the dial/accept happened (caller's clock, ms).
    pub opened_at_ms: u64,
}

impl PeerConn {
    /// A connection we are dialing; call [`PeerConn::on_tcp_connected`]
    /// when the simulator reports the socket is up.
    pub fn dialing(conn: ConnId, remote_id: NodeId, local_hello: Hello, now_ms: u64) -> PeerConn {
        PeerConn {
            conn,
            role: Role::Initiator,
            stage: Stage::Connecting,
            handshake: None,
            remote_id_hint: Some(remote_id),
            codec: None,
            session: None,
            local_hello,
            inbuf: BytesMut::new(),
            peer_id: None,
            opened_at_ms: now_ms,
        }
    }

    /// A connection a remote opened to us.
    pub fn accepted(conn: ConnId, local_hello: Hello, now_ms: u64) -> PeerConn {
        PeerConn {
            conn,
            role: Role::Recipient,
            stage: Stage::Handshaking,
            handshake: None,
            remote_id_hint: None,
            codec: None,
            session: None,
            local_hello,
            inbuf: BytesMut::new(),
            peer_id: None,
            opened_at_ms: now_ms,
        }
    }

    /// Whether the DEVp2p session is active (HELLO exchanged).
    pub fn is_active(&self) -> bool {
        self.stage == Stage::Active
            && self
                .session
                .as_ref()
                .map(|s| s.is_active())
                .unwrap_or(false)
    }

    /// Whether the connection is dead.
    pub fn is_dead(&self) -> bool {
        self.stage == Stage::Dead
    }

    /// Negotiated capabilities (empty before HELLO).
    pub fn shared_capabilities(&self) -> &[SharedCapability] {
        self.session
            .as_ref()
            .map(|s| s.shared_capabilities())
            .unwrap_or(&[])
    }

    /// The peer's HELLO (after the exchange).
    pub fn remote_hello(&self) -> Option<&Hello> {
        self.session.as_ref().and_then(|s| s.remote_hello())
    }

    /// TCP came up (dialer side): start the RLPx handshake. Returns bytes
    /// to send.
    pub fn on_tcp_connected<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        key: &SecretKey,
    ) -> Vec<Vec<u8>> {
        debug_assert_eq!(self.role, Role::Initiator);
        let mut hs = Handshake::new(Role::Initiator, *key, rng);
        let remote = self.remote_id_hint.expect("dialer knows remote id");
        match hs.write_auth(rng, &remote) {
            Ok(auth) => {
                self.handshake = Some(hs);
                self.stage = Stage::Handshaking;
                vec![auth]
            }
            Err(_) => {
                // Remote id is not a valid public key (spammer identities):
                // the dial is a dud.
                self.stage = Stage::Dead;
                Vec::new()
            }
        }
    }

    /// Stream bytes arrived. Returns `(events, bytes_to_send)`.
    pub fn on_data<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        key: &SecretKey,
        bytes: &[u8],
    ) -> (Vec<WireEvent>, Vec<Vec<u8>>) {
        let mut events = Vec::new();
        let mut out = Vec::new();
        self.inbuf.extend_from_slice(bytes);
        loop {
            match self.stage {
                Stage::Dead | Stage::Connecting => break,
                Stage::Handshaking => {
                    if self.inbuf.len() < 2 {
                        break;
                    }
                    let prefix = [self.inbuf[0], self.inbuf[1]];
                    let need = expected_len(&prefix);
                    if self.inbuf.len() < need {
                        break;
                    }
                    let msg: Vec<u8> = self.inbuf.split_to(need).to_vec();
                    match self.role {
                        Role::Recipient => {
                            let mut hs = Handshake::new(Role::Recipient, *key, rng);
                            match hs.read_auth(rng, &msg) {
                                Ok(ack) => {
                                    out.push(ack);
                                    self.finish_handshake(hs, &mut events);
                                }
                                Err(_) => {
                                    self.stage = Stage::Dead;
                                    events.push(WireEvent::ProtocolError("bad auth"));
                                    break;
                                }
                            }
                        }
                        Role::Initiator => {
                            let mut hs = self.handshake.take().expect("auth was sent");
                            match hs.read_ack(&msg) {
                                Ok(()) => self.finish_handshake(hs, &mut events),
                                Err(_) => {
                                    self.stage = Stage::Dead;
                                    events.push(WireEvent::ProtocolError("bad ack"));
                                    break;
                                }
                            }
                        }
                    }
                    // Our HELLO was queued by the new session: flush it.
                    out.extend(self.flush_session());
                }
                Stage::Active => {
                    let codec = self.codec.as_mut().expect("active implies codec");
                    match codec.read_frame(&mut self.inbuf) {
                        Ok(Some(frame)) => {
                            self.on_frame(&frame, &mut events);
                            out.extend(self.flush_session());
                        }
                        Ok(None) => break,
                        Err(_) => {
                            self.stage = Stage::Dead;
                            events.push(WireEvent::ProtocolError("bad frame"));
                            break;
                        }
                    }
                }
            }
        }
        (events, out)
    }

    fn finish_handshake(&mut self, hs: Handshake, events: &mut Vec<WireEvent>) {
        match hs.secrets() {
            Ok(secrets) => {
                let peer_id = secrets.peer_id;
                self.peer_id = Some(peer_id);
                self.codec = Some(FrameCodec::new(secrets));
                self.session = Some(Session::new(self.local_hello.clone()));
                self.stage = Stage::Active;
                events.push(WireEvent::RlpxEstablished { peer_id });
            }
            Err(_) => {
                self.stage = Stage::Dead;
                events.push(WireEvent::ProtocolError("secret derivation"));
            }
        }
    }

    fn on_frame(&mut self, frame: &[u8], events: &mut Vec<WireEvent>) {
        // frame = rlp(msg_id) ‖ payload
        let r = rlp::Rlp::new(frame);
        let Ok(msg_id) = r.as_u64() else {
            events.push(WireEvent::ProtocolError("bad msg id"));
            self.stage = Stage::Dead;
            return;
        };
        let Ok(id_len) = r.item_len() else {
            events.push(WireEvent::ProtocolError("bad msg id len"));
            self.stage = Stage::Dead;
            return;
        };
        let payload = &frame[id_len..];
        let session = self.session.as_mut().expect("active implies session");
        match session.on_message(msg_id, payload) {
            Ok(SessionEvent::HelloReceived { hello, shared }) => {
                events.push(WireEvent::Hello { hello, shared });
            }
            Ok(SessionEvent::Disconnected(reason)) => {
                self.stage = Stage::Dead;
                events.push(WireEvent::Disconnected(reason));
            }
            Ok(SessionEvent::PingReceived) => events.push(WireEvent::Ping),
            Ok(SessionEvent::PongReceived) => events.push(WireEvent::Pong),
            Ok(SessionEvent::Subprotocol {
                cap,
                version: _,
                msg,
                payload,
            }) => {
                if cap == "eth" {
                    match EthMessage::decode(msg, &payload) {
                        Ok(m) => events.push(WireEvent::Eth(m)),
                        Err(_) => events.push(WireEvent::ProtocolError("bad eth message")),
                    }
                } else {
                    events.push(WireEvent::OtherSubprotocol { cap, msg });
                }
            }
            Err(_) => {
                self.stage = Stage::Dead;
                events.push(WireEvent::ProtocolError("session error"));
            }
        }
    }

    /// Frame and return everything the session has queued.
    pub fn flush_session(&mut self) -> Vec<Vec<u8>> {
        let Some(session) = self.session.as_mut() else {
            return Vec::new();
        };
        let Some(codec) = self.codec.as_mut() else {
            return Vec::new();
        };
        session
            .take_outbound()
            .into_iter()
            .map(|(id, payload)| {
                let mut frame = rlp::encode(&id);
                frame.extend_from_slice(&payload);
                codec.write_frame(&frame)
            })
            .collect()
    }

    /// Queue + frame an eth message. Returns wire bytes (empty if the
    /// session is not active or eth was not negotiated).
    pub fn send_eth(&mut self, msg: &EthMessage) -> Vec<Vec<u8>> {
        let Some(session) = self.session.as_mut() else {
            return Vec::new();
        };
        if session
            .send_subprotocol("eth", msg.msg_id(), msg.encode_payload())
            .is_err()
        {
            return Vec::new();
        }
        self.flush_session()
    }

    /// Queue + frame a DISCONNECT, marking the connection dead.
    pub fn send_disconnect(&mut self, reason: DisconnectReason) -> Vec<Vec<u8>> {
        let Some(session) = self.session.as_mut() else {
            self.stage = Stage::Dead;
            return Vec::new();
        };
        session.disconnect(reason);
        let frames = self.flush_session();
        self.stage = Stage::Dead;
        frames
    }

    /// Queue + frame a DEVp2p keepalive ping.
    pub fn send_ping(&mut self) -> Vec<Vec<u8>> {
        if let Some(session) = self.session.as_mut() {
            session.ping();
        }
        self.flush_session()
    }

    /// Mark the connection dead (socket closed underneath us).
    pub fn mark_dead(&mut self) {
        self.stage = Stage::Dead;
    }

    // ---- checkpoint/restore -------------------------------------------

    /// Append this connection's full protocol state to a snapshot section.
    pub fn encode_into(&self, w: &mut SnapWriter) {
        w.usize(self.conn);
        w.u8(match self.role {
            Role::Initiator => 0,
            Role::Recipient => 1,
        });
        w.u8(match self.stage {
            Stage::Connecting => 0,
            Stage::Handshaking => 1,
            Stage::Active => 2,
            Stage::Dead => 3,
        });
        w.bool(self.handshake.is_some());
        if let Some(hs) = &self.handshake {
            state::w_handshake(w, &hs.to_state());
        }
        state::w_opt_node_id(w, &self.remote_id_hint);
        w.bool(self.codec.is_some());
        if let Some(codec) = &self.codec {
            state::w_frame_codec(w, &codec.to_state());
        }
        w.bool(self.session.is_some());
        if let Some(session) = &self.session {
            state::w_session(w, &session.to_state());
        }
        state::w_hello(w, &self.local_hello);
        w.bytes(&self.inbuf);
        state::w_opt_node_id(w, &self.peer_id);
        w.u64(self.opened_at_ms);
    }

    /// Rebuild a connection from [`PeerConn::encode_into`] output.
    /// `static_key` is the owning node's current identity key (identity
    /// rotation kills every live connection, so one key covers them all).
    pub fn decode_from(
        r: &mut SnapReader<'_>,
        static_key: &SecretKey,
    ) -> Result<PeerConn, SnapError> {
        let conn = r.usize()?;
        let role = match r.u8()? {
            0 => Role::Initiator,
            1 => Role::Recipient,
            _ => return Err(SnapError::Corrupt("peer-conn role tag out of range")),
        };
        let stage = match r.u8()? {
            0 => Stage::Connecting,
            1 => Stage::Handshaking,
            2 => Stage::Active,
            3 => Stage::Dead,
            _ => return Err(SnapError::Corrupt("peer-conn stage tag out of range")),
        };
        let handshake = if r.bool()? {
            Some(Handshake::from_state(*static_key, state::r_handshake(r)?))
        } else {
            None
        };
        let remote_id_hint = state::r_opt_node_id(r)?;
        let codec = if r.bool()? {
            Some(FrameCodec::from_state(state::r_frame_codec(r)?))
        } else {
            None
        };
        let session = if r.bool()? {
            Some(Session::from_state(state::r_session(r)?))
        } else {
            None
        };
        let local_hello = state::r_hello(r)?;
        let inbuf = BytesMut::from(r.bytes()?);
        let peer_id = state::r_opt_node_id(r)?;
        let opened_at_ms = r.u64()?;
        Ok(PeerConn {
            conn,
            role,
            stage,
            handshake,
            remote_id_hint,
            codec,
            session,
            local_hello,
            inbuf,
            peer_id,
            opened_at_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use devp2p::Capability;
    use ethwire::{Chain, ChainConfig, Status};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hello_for(key: &SecretKey, client: &str) -> Hello {
        Hello {
            p2p_version: devp2p::P2P_VERSION,
            client_id: client.into(),
            capabilities: vec![Capability::eth63()],
            listen_port: 30303,
            node_id: NodeId::from_secret_key(key),
        }
    }

    /// Full in-memory conversation: dial → handshake → hello → status.
    #[test]
    fn end_to_end_conversation() {
        let mut rng = StdRng::seed_from_u64(5);
        let key_a = SecretKey::from_bytes(&[1u8; 32]).unwrap();
        let key_b = SecretKey::from_bytes(&[2u8; 32]).unwrap();

        let mut a = PeerConn::dialing(
            0,
            NodeId::from_secret_key(&key_b),
            hello_for(&key_a, "Geth/v1.8.11"),
            0,
        );
        let mut b = PeerConn::accepted(0, hello_for(&key_b, "Parity/v1.10.6"), 0);

        // a dials; auth flows to b; ack + hello flows back; etc.
        let mut to_b: Vec<Vec<u8>> = a.on_tcp_connected(&mut rng, &key_a);
        let mut to_a: Vec<Vec<u8>> = Vec::new();
        let mut a_events = Vec::new();
        let mut b_events = Vec::new();
        for _ in 0..10 {
            let mut next_to_a = Vec::new();
            for chunk in to_b.drain(..) {
                let (ev, out) = b.on_data(&mut rng, &key_b, &chunk);
                b_events.extend(ev);
                next_to_a.extend(out);
            }
            to_a.extend(next_to_a);
            let mut next_to_b = Vec::new();
            for chunk in to_a.drain(..) {
                let (ev, out) = a.on_data(&mut rng, &key_a, &chunk);
                a_events.extend(ev);
                next_to_b.extend(out);
            }
            to_b.extend(next_to_b);
            if to_b.is_empty() && to_a.is_empty() {
                break;
            }
        }

        assert!(a_events.iter().any(|e| matches!(e, WireEvent::RlpxEstablished { peer_id } if *peer_id == NodeId::from_secret_key(&key_b))));
        assert!(b_events.iter().any(|e| matches!(e, WireEvent::RlpxEstablished { peer_id } if *peer_id == NodeId::from_secret_key(&key_a))));
        assert!(a_events.iter().any(
            |e| matches!(e, WireEvent::Hello { hello, .. } if hello.client_id == "Parity/v1.10.6")
        ));
        assert!(b_events.iter().any(
            |e| matches!(e, WireEvent::Hello { hello, .. } if hello.client_id == "Geth/v1.8.11")
        ));
        assert!(a.is_active() && b.is_active());

        // Now exchange STATUS.
        let chain = Chain::new(ChainConfig::mainnet(), 1000);
        let status = Status {
            protocol_version: 63,
            network_id: chain.config.network_id,
            total_difficulty: chain.total_difficulty(),
            best_hash: chain.best_hash(),
            genesis_hash: chain.config.genesis_hash,
        };
        let frames = a.send_eth(&EthMessage::Status(status.clone()));
        assert!(!frames.is_empty());
        let mut got_status = false;
        for f in frames {
            let (ev, _) = b.on_data(&mut rng, &key_b, &f);
            for e in ev {
                if let WireEvent::Eth(EthMessage::Status(st)) = e {
                    assert_eq!(st, status);
                    got_status = true;
                }
            }
        }
        assert!(got_status);

        // And a disconnect.
        let frames = b.send_disconnect(DisconnectReason::TooManyPeers);
        let mut got_disc = false;
        for f in frames {
            let (ev, _) = a.on_data(&mut rng, &key_a, &f);
            for e in ev {
                if let WireEvent::Disconnected(r) = e {
                    assert_eq!(r, DisconnectReason::TooManyPeers);
                    got_disc = true;
                }
            }
        }
        assert!(got_disc);
        assert!(a.is_dead() && b.is_dead());
    }

    #[test]
    fn dial_to_invalid_node_id_dies_cleanly() {
        let mut rng = StdRng::seed_from_u64(6);
        let key = SecretKey::from_bytes(&[1u8; 32]).unwrap();
        // A spammer-style random id: not a curve point.
        let mut c = PeerConn::dialing(0, NodeId([0x5au8; 64]), hello_for(&key, "x"), 0);
        let out = c.on_tcp_connected(&mut rng, &key);
        assert!(out.is_empty());
        assert!(c.is_dead());
    }

    #[test]
    fn garbage_bytes_kill_connection() {
        let mut rng = StdRng::seed_from_u64(7);
        let key = SecretKey::from_bytes(&[1u8; 32]).unwrap();
        let mut c = PeerConn::accepted(0, hello_for(&key, "x"), 0);
        // Garbage with a plausible length prefix: fails ECIES, dies.
        let mut garbage = vec![0x00u8, 0x80];
        garbage.extend(vec![0x5au8; 0x80]);
        let (events, out) = c.on_data(&mut rng, &key, &garbage);
        assert!(out.is_empty());
        assert!(events
            .iter()
            .any(|e| matches!(e, WireEvent::ProtocolError(_))));
        assert!(c.is_dead());
    }

    #[test]
    fn garbage_with_huge_length_prefix_just_buffers() {
        // 0xffff length prefix: the conn waits for 65KB that never comes;
        // the owner's probe timeout reaps it. No panic, no events.
        let mut rng = StdRng::seed_from_u64(7);
        let key = SecretKey::from_bytes(&[1u8; 32]).unwrap();
        let mut c = PeerConn::accepted(0, hello_for(&key, "x"), 0);
        let (events, out) = c.on_data(&mut rng, &key, &vec![0xffu8; 600]);
        assert!(out.is_empty());
        assert!(events.is_empty());
        assert!(!c.is_dead());
    }

    #[test]
    fn drip_fed_handshake_works() {
        let mut rng = StdRng::seed_from_u64(8);
        let key_a = SecretKey::from_bytes(&[1u8; 32]).unwrap();
        let key_b = SecretKey::from_bytes(&[2u8; 32]).unwrap();
        let mut a = PeerConn::dialing(
            0,
            NodeId::from_secret_key(&key_b),
            hello_for(&key_a, "a"),
            0,
        );
        let mut b = PeerConn::accepted(0, hello_for(&key_b, "b"), 0);
        let auth = a.on_tcp_connected(&mut rng, &key_a);
        // feed the auth one byte at a time
        let mut acks = Vec::new();
        for byte in auth.iter().flatten() {
            let (_, out) = b.on_data(&mut rng, &key_b, &[*byte]);
            acks.extend(out);
        }
        assert!(!acks.is_empty());
        assert!(b.peer_id.is_some());
    }
}
