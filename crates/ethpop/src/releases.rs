//! Client release schedules and version-adoption model (Table 5, Fig 10).
//!
//! Day 0 of simulated time is April 18th 2018, the start of the paper's
//! measurement; releases before it have negative day offsets. Dates are
//! approximate real-world release dates of the 2017–2018 clients.

/// One released client version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Release {
    /// Version string, e.g. `"v1.8.11"`.
    pub version: &'static str,
    /// Days relative to April 18th 2018.
    pub day: i64,
    /// Whether this is a stable-channel release.
    pub stable: bool,
}

/// Geth's release history around the measurement window. Geth's cycle is
/// simple: one channel, each release supersedes the last (§6.2).
pub const GETH_RELEASES: [Release; 20] = [
    Release {
        version: "v1.5.9",
        day: -420,
        stable: true,
    },
    Release {
        version: "v1.6.1",
        day: -350,
        stable: true,
    },
    Release {
        version: "v1.6.7",
        day: -280,
        stable: true,
    },
    Release {
        version: "v1.7.0",
        day: -216,
        stable: true,
    },
    Release {
        version: "v1.7.1",
        day: -209,
        stable: true,
    },
    Release {
        version: "v1.7.2",
        day: -186,
        stable: true,
    },
    Release {
        version: "v1.7.3",
        day: -147,
        stable: true,
    },
    Release {
        version: "v1.8.0",
        day: -63,
        stable: true,
    },
    Release {
        version: "v1.8.1",
        day: -58,
        stable: true,
    },
    Release {
        version: "v1.8.2",
        day: -49,
        stable: true,
    },
    Release {
        version: "v1.8.3",
        day: -25,
        stable: true,
    },
    Release {
        version: "v1.8.4",
        day: -2,
        stable: true,
    },
    // v1.8.5 and v1.8.9 were replaced within days to fix deadlocks [52].
    Release {
        version: "v1.8.5",
        day: 9,
        stable: true,
    },
    Release {
        version: "v1.8.6",
        day: 11,
        stable: true,
    },
    Release {
        version: "v1.8.7",
        day: 14,
        stable: true,
    },
    Release {
        version: "v1.8.8",
        day: 26,
        stable: true,
    },
    Release {
        version: "v1.8.9",
        day: 44,
        stable: true,
    },
    Release {
        version: "v1.8.10",
        day: 47,
        stable: true,
    },
    Release {
        version: "v1.8.11",
        day: 56,
        stable: true,
    },
    Release {
        version: "v1.8.12",
        day: 78,
        stable: true,
    },
];

/// Parity's release history: weekly-ish releases across stable/beta
/// channels (§6.2 notes the sparser, faster cycle).
pub const PARITY_RELEASES: [Release; 16] = [
    Release {
        version: "v1.6.10",
        day: -290,
        stable: true,
    },
    Release {
        version: "v1.7.0",
        day: -260,
        stable: false,
    },
    Release {
        version: "v1.7.9",
        day: -170,
        stable: true,
    },
    Release {
        version: "v1.7.11",
        day: -140,
        stable: true,
    },
    Release {
        version: "v1.8.0",
        day: -190,
        stable: false,
    },
    Release {
        version: "v1.8.11",
        day: -90,
        stable: true,
    },
    Release {
        version: "v1.9.2",
        day: -70,
        stable: false,
    },
    Release {
        version: "v1.9.5",
        day: -40,
        stable: true,
    },
    Release {
        version: "v1.9.7",
        day: -20,
        stable: true,
    },
    Release {
        version: "v1.10.0",
        day: -28,
        stable: false,
    },
    Release {
        version: "v1.10.3",
        day: 7,
        stable: false,
    },
    Release {
        version: "v1.10.4",
        day: 21,
        stable: false,
    },
    Release {
        version: "v1.10.6",
        day: 35,
        stable: true,
    },
    Release {
        version: "v1.10.7",
        day: 49,
        stable: true,
    },
    Release {
        version: "v1.10.8",
        day: 63,
        stable: false,
    },
    Release {
        version: "v1.10.9",
        day: 80,
        stable: true,
    },
];

/// The version a node runs at `day`, given its personal update lag.
///
/// Models the paper's observation: most nodes track new releases with some
/// delay (sharp uptake after release, Fig 10), a minority pin old versions
/// indefinitely (68.3% were ≥2 iterations behind on the last day; 3.5% of
/// Geth nodes pre-dated v1.7.1).
pub fn version_at(
    releases: &[Release],
    day: i64,
    update_lag_days: i64,
    pinned: Option<usize>,
) -> Release {
    if let Some(idx) = pinned {
        return releases[idx.min(releases.len() - 1)];
    }
    let effective = day - update_lag_days;
    releases
        .iter()
        .filter(|r| r.day <= effective)
        .max_by_key(|r| r.day)
        .copied()
        .unwrap_or(releases[0])
}

/// Format a Geth-style client id.
pub fn geth_client_id(version: &str) -> String {
    format!("Geth/{version}-stable/linux-amd64/go1.10")
}

/// Format a Geth development ("unstable") build id — operators building
/// from source between releases (18.1% of Geth nodes in Table 5).
pub fn geth_client_id_unstable(version: &str) -> String {
    format!("Geth/{version}-unstable/linux-amd64/go1.10")
}

/// Format a Parity-style client id.
pub fn parity_client_id(version: &str, stable: bool) -> String {
    let channel = if stable { "stable" } else { "beta" };
    format!("Parity/{version}-{channel}/x86_64-linux-gnu/rustc1.24.1")
}

/// Parse the version and client family back out of a HELLO client-id
/// string — the analysis side of Table 4/5.
pub fn parse_client_id(client_id: &str) -> (String, Option<String>) {
    let mut parts = client_id.split('/');
    let family = parts.next().unwrap_or("unknown").to_string();
    let version = parts.next().map(|v| {
        // strip channel suffixes: "v1.8.11-stable" -> "v1.8.11"
        v.split('-').next().unwrap_or(v).to_string()
    });
    (family, version)
}

/// Whether a client-id string advertises a stable build.
pub fn is_stable_build(client_id: &str) -> bool {
    !client_id.contains("-beta") && !client_id.contains("-rc") && !client_id.contains("unstable")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_chronological_per_channel() {
        for w in GETH_RELEASES.windows(2) {
            assert!(w[0].day <= w[1].day, "{:?}", w);
        }
    }

    #[test]
    fn version_at_tracks_latest() {
        let r = version_at(&GETH_RELEASES, 60, 0, None);
        assert_eq!(r.version, "v1.8.11");
        let r = version_at(&GETH_RELEASES, 80, 0, None);
        assert_eq!(r.version, "v1.8.12");
    }

    #[test]
    fn update_lag_delays_adoption() {
        // v1.8.11 released day 56; a node with 10-day lag still runs
        // v1.8.10 at day 60.
        let r = version_at(&GETH_RELEASES, 60, 10, None);
        assert_eq!(r.version, "v1.8.10");
    }

    #[test]
    fn pinned_nodes_never_update() {
        let r = version_at(&GETH_RELEASES, 1000, 0, Some(3));
        assert_eq!(r.version, "v1.7.0");
    }

    #[test]
    fn ancient_day_falls_back_to_oldest() {
        let r = version_at(&GETH_RELEASES, -1000, 0, None);
        assert_eq!(r.version, "v1.5.9");
    }

    #[test]
    fn client_id_roundtrip() {
        let id = geth_client_id("v1.8.11");
        let (family, version) = parse_client_id(&id);
        assert_eq!(family, "Geth");
        assert_eq!(version.unwrap(), "v1.8.11");
        assert!(is_stable_build(&id));

        let id = parity_client_id("v1.10.3", false);
        let (family, version) = parse_client_id(&id);
        assert_eq!(family, "Parity");
        assert_eq!(version.unwrap(), "v1.10.3");
        assert!(!is_stable_build(&id));
    }
}
