//! The world generator: samples a full synthetic DEVp2p ecosystem from the
//! paper's reported marginals and wires it into a simulator.
//!
//! Everything here is *ground truth* the crawler is never shown — the
//! experiment harness uses it only to validate coverage after the fact.

use crate::clients::{NodeProfile, ReleaseFamily, ReleasePlan, ServiceKind};
use crate::node::EthNode;
use devp2p::Capability;
use enode::{Endpoint, NodeId, NodeRecord};
use ethcrypto::secp256k1::SecretKey;
use ethwire::{Chain, ChainConfig, BYZANTIUM_BLOCK, DAO_FORK_BLOCK, SNAPSHOT_HEAD};
use netsim::{HostAddr, HostId, HostMeta, NetSim, SimConfig, REGION_OF_COUNTRY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Scale and composition knobs. Defaults target a world that runs in
/// seconds-to-minutes while preserving the paper's proportions.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of regular (non-spammer) DEVp2p nodes.
    pub n_nodes: usize,
    /// Simulated milliseconds per experiment "day" (time compression; the
    /// paper's 82 calendar days map onto `82 * day_ms`).
    pub day_ms: u64,
    /// How long the generated churn schedule must cover.
    pub duration_ms: u64,
    /// Fraction of nodes that are never publicly reachable (NAT'd).
    /// Table 2 implies ≈0.65 for the live network.
    pub unreachable_fraction: f64,
    /// Fraction of nodes that stay online for the whole run.
    pub always_on_fraction: f64,
    /// Mean online-session length for churning nodes, ms.
    pub mean_session_ms: u64,
    /// Mean offline gap for churning nodes, ms.
    pub mean_offline_ms: u64,
    /// Mean ms between a node's transaction gossip rounds.
    pub tx_interval_ms: u64,
    /// Abusive identity-rotating hosts (§5.4).
    pub spammer_ips: usize,
    /// Spammer identity lifetime, ms.
    pub spammer_rotation_ms: u64,
    /// Bootstrap nodes (always-on, reachable, known to everyone).
    pub n_bootstrap: usize,
    /// UDP loss probability.
    pub udp_loss: f64,
    /// Ablation (§6.3): give Parity nodes the *correct* log-distance
    /// metric instead of the buggy per-byte sum.
    pub parity_metric_fixed: bool,
    /// Override Parity's share of the Mainnet client mix (default 0.17,
    /// Table 4). The eclipse experiment saturates a world with Parity.
    pub parity_share: Option<f64>,
    /// Scheduler shards for the simulator (see [`SimConfig::shards`]).
    /// Any value replays the identical trace; >1 partitions the event
    /// wheels for large worlds.
    pub shards: usize,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            seed: 1804,
            n_nodes: 400,
            day_ms: 10 * 60 * 1000, // one "day" = 10 simulated minutes
            duration_ms: 30 * 60 * 1000,
            unreachable_fraction: 0.60,
            always_on_fraction: 0.35,
            mean_session_ms: 8 * 60 * 1000,
            mean_offline_ms: 6 * 60 * 1000,
            tx_interval_ms: 20_000,
            spammer_ips: 2,
            spammer_rotation_ms: 90_000,
            n_bootstrap: 3,
            udp_loss: 0.01,
            parity_metric_fixed: false,
            parity_share: None,
            shards: 1,
        }
    }
}

/// Which network/service a node belongs to — the world's label, used by
/// analysis only for validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TruthKind {
    /// Non-Classic Mainnet Ethereum (the "productive" population).
    Mainnet,
    /// Ethereum Classic: same genesis, no DAO fork.
    Classic,
    /// Another eth-subprotocol network (testnets, altcoins, misconfigs).
    OtherEthNetwork {
        /// Network id it advertises.
        network_id: u64,
        /// Whether it (mis)advertises the Mainnet genesis hash.
        mainnet_genesis: bool,
    },
    /// Light client (les/pip).
    Light,
    /// Non-eth DEVp2p service.
    OtherService {
        /// Capability name.
        cap: &'static str,
    },
    /// §5.4 spammer host.
    Spammer,
}

/// Ground-truth record for one simulated host.
#[derive(Debug, Clone)]
pub struct GroundTruthNode {
    /// Simulator host id.
    pub host: HostId,
    /// Address.
    pub addr: HostAddr,
    /// First identity (spammers mint more over time).
    pub initial_id: NodeId,
    /// Service/network label.
    pub kind: TruthKind,
    /// Client family label ("Geth", "Parity", …).
    pub client_family: &'static str,
    /// Country code.
    pub country: &'static str,
    /// AS label.
    pub asn: &'static str,
    /// Publicly reachable?
    pub reachable: bool,
    /// Head height (eth nodes).
    pub head: u64,
    /// Online for the whole run?
    pub always_on: bool,
    /// Is this a bootstrap node?
    pub bootstrap: bool,
}

/// A generated world: simulator + ground truth + the bootstrap set.
pub struct World {
    /// The simulator, fully populated and scheduled.
    pub sim: NetSim,
    /// Ground truth, indexed like the hosts.
    pub nodes: Vec<GroundTruthNode>,
    /// Bootstrap records every node (and the crawler) starts from.
    pub bootstrap: Vec<NodeRecord>,
    /// The config that produced it.
    pub config: WorldConfig,
}

// ---- marginal distributions from the paper ----------------------------

/// Fig 12 country shares.
const COUNTRY_WEIGHTS: [(&str, f64); 16] = [
    ("US", 0.432),
    ("CN", 0.129),
    ("DE", 0.060),
    ("SG", 0.040),
    ("KR", 0.035),
    ("FR", 0.030),
    ("CA", 0.025),
    ("RU", 0.025),
    ("GB", 0.023),
    ("JP", 0.020),
    ("NL", 0.018),
    ("AU", 0.015),
    ("BR", 0.012),
    ("IN", 0.012),
    ("UA", 0.010),
    ("ZA", 0.005),
];

/// Fig 13 AS shares (top 8 cloud ASes ≈ 44.8%, long ISP tail).
const ASN_WEIGHTS: [(&str, f64); 12] = [
    ("Amazon", 0.150),
    ("Alibaba", 0.080),
    ("DigitalOcean", 0.060),
    ("OVH", 0.045),
    ("Hetzner", 0.040),
    ("Google", 0.030),
    ("Comcast", 0.023),
    ("ChinaTelecom", 0.020),
    ("Azure", 0.018),
    ("Linode", 0.015),
    ("Vultr", 0.012),
    ("ISP-tail", 0.507),
];

/// The residential/commercial AS long tail: many small distinct networks,
/// so "top-8 AS share" (§7.2) is meaningful. Names are synthetic.
const ISP_TAIL: [&str; 40] = [
    "Comcast-Res",
    "Verizon",
    "ATT",
    "Charter",
    "Cox",
    "CenturyLink",
    "Frontier",
    "Windstream",
    "DeutscheTelekom",
    "Vodafone",
    "Orange",
    "Telefonica",
    "BT",
    "Sky",
    "Virgin",
    "Telia",
    "ChinaUnicom",
    "ChinaMobile",
    "KT",
    "SKB",
    "NTT",
    "KDDI",
    "Softbank",
    "Telstra",
    "Optus",
    "Rogers",
    "Bell",
    "Telus",
    "Claro",
    "Vivo",
    "Tim",
    "MTS",
    "Beeline",
    "Rostelecom",
    "Turkcell",
    "Etisalat",
    "Airtel",
    "Jio",
    "BSNL",
    "Singtel",
];

/// Table 3 capability mix for the non-eth & light slices, scaled to their
/// share of the DEVp2p population.
const OTHER_SERVICES: [(&str, u32, f64); 9] = [
    ("bzz", 1, 0.0185),
    ("les", 2, 0.0124),
    ("exp", 63, 0.0050),
    ("istanbul", 64, 0.0046),
    ("shh", 2, 0.0045),
    ("dbix", 62, 0.0028),
    ("pip", 1, 0.0027),
    ("mc", 62, 0.0016),
    ("ele", 62, 0.0008),
];

fn weighted_pick<T: Copy>(rng: &mut StdRng, items: &[(T, f64)]) -> T {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0.0..total);
    for (item, w) in items {
        if x < *w {
            return *item;
        }
        x -= w;
    }
    items.last().unwrap().0
}

impl World {
    /// Build a world from the config.
    pub fn build(config: WorldConfig) -> World {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sim_config = SimConfig {
            seed: config.seed.wrapping_mul(0x9e3779b97f4a7c15),
            udp_loss: config.udp_loss,
            jitter_ms: 8,
            nat_window_ms: 120_000,
            shards: config.shards,
            faults: Default::default(),
        };
        let mut sim = NetSim::new(sim_config);
        let mut nodes = Vec::new();

        // --- bootstrap nodes -------------------------------------------
        let mut bootstrap = Vec::new();
        for i in 0..config.n_bootstrap {
            let key = SecretKey::random(&mut rng);
            let addr = HostAddr::new(Ipv4Addr::new(5, 1, 83, 10 + i as u8), 30303);
            let record = NodeRecord::new(
                NodeId::from_secret_key(&key),
                Endpoint::new(addr.ip, addr.port),
            );
            bootstrap.push(record);
        }
        // Bootstrap hosts share one flyweight copy of the (throwaway)
        // record set; it is replaced wholesale after key re-derivation.
        let boot_peers: Rc<[NodeRecord]> = bootstrap.clone().into();
        for (i, record) in bootstrap.iter().enumerate() {
            let key_i = i; // bootstrap i's profile uses its own record set
            let chain = Chain::new(ChainConfig::mainnet(), SNAPSHOT_HEAD);
            let client_id = crate::releases::geth_client_id("v1.8.10");
            let mut profile = NodeProfile::geth(bootstrap_key(&mut rng, key_i), client_id, chain);
            // The record above was generated with a throwaway key; rebuild
            // it so id and key agree.
            profile.key = bootstrap_secret(config.seed, i);
            profile.tx_interval_ms = config.tx_interval_ms;
            let record = NodeRecord::new(profile.node_id(), record.endpoint);
            let addr = HostAddr::new(record.endpoint.ip, record.endpoint.tcp_port);
            let meta = HostMeta {
                country: "US",
                asn: "Amazon",
                region: REGION_OF_COUNTRY("US"),
                reachable: true,
            };
            let peers = boot_peers.clone();
            let host = sim.add_host(addr, meta, Box::new(EthNode::new(profile.clone(), peers)));
            sim.schedule_start(host, 0);
            nodes.push(GroundTruthNode {
                host,
                addr,
                initial_id: record.id,
                kind: TruthKind::Mainnet,
                client_family: "Geth",
                country: "US",
                asn: "Amazon",
                reachable: true,
                head: SNAPSHOT_HEAD,
                always_on: true,
                bootstrap: true,
            });
        }
        // Re-derive the bootstrap records from the final keys.
        let bootstrap: Vec<NodeRecord> = (0..config.n_bootstrap)
            .map(|i| {
                NodeRecord::new(
                    NodeId::from_secret_key(&bootstrap_secret(config.seed, i)),
                    Endpoint::new(Ipv4Addr::new(5, 1, 83, 10 + i as u8), 30303),
                )
            })
            .collect();
        // One shared allocation for the whole population: 50k hosts hold
        // 50k `Rc` pointers to this list, not 50k copies of it.
        let bootstrap_shared: Rc<[NodeRecord]> = bootstrap.clone().into();

        // --- regular population ----------------------------------------
        for i in 0..config.n_nodes {
            let key = SecretKey::random(&mut rng);
            let addr = HostAddr::new(ip_for(i), 30303);
            let country = weighted_pick(&mut rng, &COUNTRY_WEIGHTS);
            let mut asn = weighted_pick(&mut rng, &ASN_WEIGHTS);
            if asn == "ISP-tail" {
                asn = ISP_TAIL[rng.gen_range(0..ISP_TAIL.len())];
            }
            let reachable = !rng.gen_bool(config.unreachable_fraction);
            let (kind, mut profile) = sample_profile(&mut rng, key, &config);
            profile.tx_interval_ms = match profile.service {
                ServiceKind::Eth { .. } => config.tx_interval_ms,
                _ => 0,
            };
            let head = match &profile.service {
                ServiceKind::Eth { chain } => chain.head,
                _ => 0,
            };
            let client_family = family_label(&profile);
            let meta = HostMeta {
                country,
                asn,
                region: REGION_OF_COUNTRY(country),
                reachable,
            };
            let always_on = rng.gen_bool(config.always_on_fraction);
            let node = EthNode::new(profile, bootstrap_shared.clone());
            let host = sim.add_host(addr, meta, Box::new(node));
            schedule_churn(&mut sim, &mut rng, host, always_on, &config);
            nodes.push(GroundTruthNode {
                host,
                addr,
                initial_id: NodeId::from_secret_key(&key),
                kind,
                client_family,
                country,
                asn,
                reachable,
                head,
                always_on,
                bootstrap: false,
            });
        }

        // --- spammers ---------------------------------------------------
        for s in 0..config.spammer_ips {
            let key = SecretKey::random(&mut rng);
            let addr = HostAddr::new(Ipv4Addr::new(149, 129, 129, 190 + s as u8), 30303);
            let chain = Chain::new(ChainConfig::mainnet(), SNAPSHOT_HEAD);
            let profile = NodeProfile::spammer(key, chain, config.spammer_rotation_ms);
            let meta = HostMeta {
                country: "CN",
                asn: "Alibaba",
                region: REGION_OF_COUNTRY("CN"),
                reachable: true,
            };
            let host = sim.add_host(
                addr,
                meta,
                Box::new(EthNode::new(profile, bootstrap_shared.clone())),
            );
            sim.schedule_start(host, 0);
            nodes.push(GroundTruthNode {
                host,
                addr,
                initial_id: NodeId::from_secret_key(&key),
                kind: TruthKind::Spammer,
                client_family: "ethereumjs-devp2p",
                country: "CN",
                asn: "Alibaba",
                reachable: true,
                head: 0,
                always_on: true,
                bootstrap: false,
            });
        }

        World {
            sim,
            nodes,
            bootstrap,
            config,
        }
    }

    /// Mainnet ground-truth slice (excluding spammers), for validation.
    pub fn mainnet_nodes(&self) -> impl Iterator<Item = &GroundTruthNode> {
        self.nodes.iter().filter(|n| n.kind == TruthKind::Mainnet)
    }
}

// Deterministic bootstrap keys so records and profiles agree.
fn bootstrap_secret(seed: u64, i: usize) -> SecretKey {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&seed.to_be_bytes());
    bytes[8] = i as u8 + 1;
    bytes[31] = 0x42;
    SecretKey::from_bytes(&bytes).expect("nonzero < n")
}

fn bootstrap_key(rng: &mut StdRng, _i: usize) -> SecretKey {
    // burn one key draw to keep the RNG stream stable regardless of the
    // bootstrap count fix-up above
    SecretKey::random(rng)
}

fn ip_for(i: usize) -> Ipv4Addr {
    // Unique public-looking IPs: 20.x.y.z spread.
    let i = i as u32;
    Ipv4Addr::new(
        20 + ((i >> 16) & 0x3f) as u8,
        ((i >> 8) & 0xff) as u8,
        (i & 0xff) as u8,
        10,
    )
}

fn family_label(profile: &NodeProfile) -> &'static str {
    match profile.kind {
        crate::clients::ClientKind::Geth => "Geth",
        crate::clients::ClientKind::Parity => "Parity",
        crate::clients::ClientKind::EthereumJs => "ethereumjs-devp2p",
        crate::clients::ClientKind::Other => "Other",
    }
}

/// Sample one node's service/network/client from the paper's marginals.
fn sample_profile(
    rng: &mut StdRng,
    key: SecretKey,
    config: &WorldConfig,
) -> (TruthKind, NodeProfile) {
    // Table 3: ~6% of DEVp2p nodes are non-eth services or light clients.
    let other_total: f64 = OTHER_SERVICES.iter().map(|(_, _, w)| w).sum();
    if rng.gen_bool(other_total) {
        let idx = rng.gen_range(0..OTHER_SERVICES.len());
        let (cap_name, cap_version, _) = OTHER_SERVICES[idx];
        let cap = Capability::new(cap_name, cap_version);
        let client_id = format!("{cap_name}-client/v1.0.0/linux");
        return if cap_name == "les" || cap_name == "pip" {
            (TruthKind::Light, NodeProfile::light(key, client_id, cap))
        } else {
            (
                TruthKind::OtherService { cap: cap_name },
                NodeProfile::other_service(key, client_id, cap),
            )
        };
    }

    // eth nodes: split across networks. Calibrated so that "fewer than
    // half of DEVp2p nodes contribute to the main blockchain" (§6.1).
    let roll: f64 = rng.gen();
    if roll < 0.55 {
        // Non-Classic Mainnet.
        let head = sample_head(rng);
        let chain = Chain::new(ChainConfig::mainnet(), head);
        let profile = sample_mainnet_client(rng, key, chain, config);
        (TruthKind::Mainnet, profile)
    } else if roll < 0.63 {
        // Ethereum Classic: same genesis, no DAO support.
        let chain = Chain::new(ChainConfig::classic(), sample_head(rng));
        let client_id = crate::releases::geth_client_id("v1.8.7");
        (TruthKind::Classic, NodeProfile::geth(key, client_id, chain))
    } else if roll < 0.66 {
        // Misconfigured: random network id advertising the Mainnet genesis.
        let network_id = rng.gen_range(100..100_000);
        let mut chain_config = ChainConfig::alt(network_id, rng.gen());
        chain_config.genesis_hash = ethwire::MAINNET_GENESIS;
        let chain = Chain::new(chain_config, rng.gen_range(0..1_000_000));
        let client_id = crate::releases::geth_client_id("v1.8.3");
        (
            TruthKind::OtherEthNetwork {
                network_id,
                mainnet_genesis: true,
            },
            NodeProfile::geth(key, client_id, chain),
        )
    } else {
        // Testnets and altcoins: a few big networks plus a long tail.
        let (network_id, label_head): (u64, u64) = match rng.gen_range(0..10) {
            0..=2 => (3, 3_200_000),         // Ropsten
            3..=4 => (4, 2_200_000),         // Rinkeby
            5 => (42, 7_000_000),            // Kovan
            6 => (7_762_959, 1_900_000),     // Musicoin
            7 => (3_125_659_152, 2_300_000), // Pirl
            8 => (8, 300_000),               // Ubiq
            _ => (rng.gen_range(1_000..4_000_000), rng.gen_range(1..500_000)),
        };
        let chain_config = ChainConfig::alt(network_id, network_id ^ 0xABCD);
        let chain = Chain::new(chain_config, label_head);
        let client_id = if rng.gen_bool(0.7) {
            crate::releases::geth_client_id("v1.8.4")
        } else {
            crate::releases::parity_client_id("v1.10.3", false)
        };
        (
            TruthKind::OtherEthNetwork {
                network_id,
                mainnet_genesis: false,
            },
            NodeProfile::geth(key, client_id, chain),
        )
    }
}

/// Freshness model for Fig 14: ~60% fresh, a lagging middle, 32.7% stale
/// (including Byzantium-stuck and pre-DAO-stuck nodes).
fn sample_head(rng: &mut StdRng) -> u64 {
    let roll: f64 = rng.gen();
    if roll < 0.60 {
        // fresh: within ~100 blocks of the network head
        SNAPSHOT_HEAD - rng.gen_range(0..100)
    } else if roll < 0.655 {
        // minor lag: hours behind
        SNAPSHOT_HEAD - rng.gen_range(100..20_000)
    } else if roll < 0.68 {
        // stuck at the first post-Byzantium block (§7.3: 141 of 15,454
        // nodes ≈ 0.9%; over-weighted slightly so the knot is visible at
        // hundreds-of-nodes scale)
        BYZANTIUM_BLOCK + 1
    } else if roll < 0.70 {
        // stuck before the DAO fork — can never prove fork support
        rng.gen_range(1_000..DAO_FORK_BLOCK)
    } else {
        // stale: weeks to years behind
        rng.gen_range(DAO_FORK_BLOCK..SNAPSHOT_HEAD - 200_000)
    }
}

/// Client mix among Mainnet nodes (Table 4) with version adoption plans
/// (Table 5 / Fig 10).
fn sample_mainnet_client(
    rng: &mut StdRng,
    key: SecretKey,
    chain: Chain,
    config: &WorldConfig,
) -> NodeProfile {
    // Client mix thresholds. With the default 17% Parity share these are
    // Table 4's numbers (Geth 76.6%, ethereumjs 5.2%, tail 1.2%); an
    // override rescales the non-Parity families proportionally.
    let parity_share = config.parity_share.unwrap_or(0.17).clamp(0.0, 1.0);
    let rest = 1.0 - parity_share;
    let geth_cut = 0.923 * rest;
    let parity_cut = geth_cut + parity_share;
    let js_cut = parity_cut + 0.0627 * rest;
    let roll: f64 = rng.gen();
    if roll < geth_cut {
        // Geth. 3.5% pinned to pre-Byzantium versions; others track with
        // an exponential-ish lag.
        let pinned = if rng.gen_bool(0.035) {
            Some(rng.gen_range(0..3)) // v1.5.9 / v1.6.1 / v1.6.7
        } else if rng.gen_bool(0.10) {
            Some(rng.gen_range(5..7)) // parked on v1.7.2 / v1.7.3
        } else {
            None
        };
        let lag_days = (-(1.0 - rng.gen::<f64>()).ln() * 8.0) as i64;
        let plan = ReleasePlan {
            family: ReleaseFamily::Geth,
            lag_days,
            pinned,
            day_ms: config.day_ms,
            // 18.1% of Geth nodes ran -unstable builds (Table 5).
            unstable_channel: rng.gen_bool(0.18),
        };
        let mut profile = NodeProfile::geth(key, plan.client_id_at(0), chain);
        profile.release_plan = Some(plan);
        profile
    } else if roll < parity_cut {
        // Parity (17% by default): faster, channel-mixed releases.
        let pinned = if rng.gen_bool(0.06) {
            Some(rng.gen_range(0..4))
        } else {
            None
        };
        let lag_days = (-(1.0 - rng.gen::<f64>()).ln() * 12.0) as i64;
        let plan = ReleasePlan {
            family: ReleaseFamily::Parity,
            lag_days,
            pinned,
            day_ms: config.day_ms,
            // Only 56.2% of Parity nodes were on stable builds (Table 5).
            unstable_channel: rng.gen_bool(0.42),
        };
        let mut profile = NodeProfile::parity(key, plan.client_id_at(0), chain);
        profile.release_plan = Some(plan);
        if config.parity_metric_fixed {
            profile.metric = kad::Metric::GethLog2;
        }
        profile
    } else if roll < js_cut {
        // ethereumjs (5.2%) — legitimate instances, not spammers.
        let mut profile = NodeProfile::geth(key, "ethereumjs-devp2p/v2.1.3/browser".into(), chain);
        profile.kind = crate::clients::ClientKind::EthereumJs;
        profile.max_peers = 10;
        profile
    } else {
        // The 31-client tail.
        let names = [
            "cpp-ethereum/v1.3.0",
            "EthereumJ/v1.8.0",
            "Harmony/v2.1",
            "pyethapp/v1.5.0",
        ];
        let name = names[rng.gen_range(0..names.len())];
        let mut profile = NodeProfile::geth(key, format!("{name}/linux"), chain);
        profile.kind = crate::clients::ClientKind::Other;
        profile
    }
}

/// Generate the on/off schedule for one churning host.
fn schedule_churn(
    sim: &mut NetSim,
    rng: &mut StdRng,
    host: HostId,
    always_on: bool,
    config: &WorldConfig,
) {
    // Stagger starts through the first minute.
    let mut t = rng.gen_range(0..60_000u64);
    sim.schedule_start(host, t);
    if always_on {
        return;
    }
    loop {
        let session = exp_sample(rng, config.mean_session_ms);
        t += session;
        if t >= config.duration_ms {
            break;
        }
        sim.schedule_stop(host, t);
        let offline = exp_sample(rng, config.mean_offline_ms);
        t += offline;
        if t >= config.duration_ms {
            break;
        }
        sim.schedule_start(host, t);
    }
}

fn exp_sample(rng: &mut StdRng, mean_ms: u64) -> u64 {
    let u: f64 = rng.gen_range(0.0001..1.0);
    ((-u.ln()) * mean_ms as f64)
        .min(mean_ms as f64 * 6.0)
        .max(1000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> WorldConfig {
        WorldConfig {
            n_nodes: 60,
            duration_ms: 5 * 60_000,
            spammer_ips: 1,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn world_builds_with_expected_counts() {
        let w = World::build(small_config());
        assert_eq!(w.nodes.len(), 60 + 3 + 1); // nodes + bootstrap + spammer
        assert_eq!(w.bootstrap.len(), 3);
        assert_eq!(w.sim.host_count(), 64);
    }

    #[test]
    fn bootstrap_records_match_profiles() {
        let w = World::build(small_config());
        for (i, b) in w.bootstrap.iter().enumerate() {
            let truth = &w.nodes[i];
            assert!(truth.bootstrap);
            assert_eq!(truth.initial_id, b.id);
            assert_eq!(truth.addr.ip, b.endpoint.ip);
        }
    }

    #[test]
    fn composition_roughly_matches_marginals() {
        let mut config = small_config();
        config.n_nodes = 800;
        let w = World::build(config);
        let regular: Vec<_> = w
            .nodes
            .iter()
            .filter(|n| !n.bootstrap && n.kind != TruthKind::Spammer)
            .collect();
        let mainnet = regular
            .iter()
            .filter(|n| n.kind == TruthKind::Mainnet)
            .count();
        let frac = mainnet as f64 / regular.len() as f64;
        assert!((0.42..0.62).contains(&frac), "mainnet fraction {frac}");
        let us = regular.iter().filter(|n| n.country == "US").count() as f64 / regular.len() as f64;
        assert!((0.35..0.52).contains(&us), "US fraction {us}");
        let unreachable =
            regular.iter().filter(|n| !n.reachable).count() as f64 / regular.len() as f64;
        assert!(
            (0.50..0.70).contains(&unreachable),
            "unreachable fraction {unreachable}"
        );
    }

    #[test]
    fn deterministic_across_builds() {
        let a = World::build(small_config());
        let b = World::build(small_config());
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(b.nodes.iter()) {
            assert_eq!(x.initial_id, y.initial_id);
            assert_eq!(x.country, y.country);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn world_snapshot_resume_matches_uninterrupted_run() {
        // Run straight to 2T…
        let mut full = World::build(small_config());
        full.sim.run_until(2 * 60_000);
        let full_snap = full.sim.snapshot().expect("snapshot");

        // …versus run to T, snapshot, restore into a freshly built shell
        // (same config ⇒ same static structure), continue to 2T.
        let mut first = World::build(small_config());
        first.sim.run_until(60_000);
        let snap = first.sim.snapshot().expect("snapshot");
        let mut resumed = World::build(small_config());
        resumed.sim.restore(&snap).expect("restore");
        resumed.sim.run_until(2 * 60_000);

        assert_eq!(resumed.sim.events_processed(), full.sim.events_processed());
        assert_eq!(resumed.sim.udp_counters(), full.sim.udp_counters());
        assert_eq!(
            resumed.sim.snapshot().expect("snapshot"),
            full_snap,
            "resumed world diverged from the uninterrupted run"
        );
    }

    #[test]
    fn world_runs_without_panic_and_produces_traffic() {
        let mut w = World::build(small_config());
        w.sim.run_until(3 * 60_000);
        let (sent, _) = w.sim.udp_counters();
        assert!(
            sent > 100,
            "expected discovery traffic, got {sent} datagrams"
        );
        assert!(w.sim.events_processed() > 1000);
    }
}
