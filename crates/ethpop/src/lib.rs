//! The synthetic DEVp2p ecosystem ("world") the crawler measures.
//!
//! The paper measured the live 2018 network; this crate builds its stand-in
//! (DESIGN.md documents the substitution): a population of behavioral node
//! models running the *real* protocol crates — discv4 discovery, RLPx
//! encryption, DEVp2p sessions, eth status/header exchange — over the
//! `netsim` discrete-event simulator.
//!
//! Populations are sampled from the marginals the paper reports:
//!
//! * client mix (Table 4), version mixes and release schedules (Table 5,
//!   Fig 10),
//! * DEVp2p service diversity — bzz/les/shh/exp/… (Table 3),
//! * networkID / genesis-hash tail (Fig 9),
//! * geography and AS mix (Fig 12/13),
//! * freshness lag including Byzantium-stuck nodes (Fig 14),
//! * churn, NAT'd unreachable nodes, and the abusive node-ID spammers that
//!   §5.4's sanitization pipeline removes.
//!
//! Crucially the crawler never reads this ground truth: it must rediscover
//! everything through the wire, exactly like NodeFinder did.
#![forbid(unsafe_code)]

pub mod clients;
pub mod node;
pub mod releases;
pub mod state;
pub mod wire;
pub mod world;

pub use clients::{ClientKind, NodeProfile, ServiceKind, TxBroadcast};
pub use node::{EthNode, NodeStats};
pub use wire::{PeerConn, WireEvent};
pub use world::{GroundTruthNode, World, WorldConfig};
