//! `EthNode`: a behavioral Ethereum node driving the full protocol stack
//! over the simulator.
//!
//! One implementation covers every population member — Geth-like,
//! Parity-like, light clients, non-Ethereum services, and the §5.4
//! identity-rotating spammers — differentiated entirely by
//! [`NodeProfile`]. The event-handling is deliberately *event-driven with
//! armed timers*: a node at peer capacity with no pending protocol state
//! schedules nothing, so large worlds stay cheap to simulate (the same
//! property the paper exploits: Geth only discovers when it has free peer
//! slots).

use crate::clients::{ClientKind, NodeProfile, ServiceKind};
use crate::state;
use crate::wire::{PeerConn, WireEvent};
use devp2p::{DisconnectReason, Hello, P2P_VERSION};
use discv4::{Config as DiscConfig, Discv4, Event as DiscEvent};
use enode::{Endpoint, NodeId, NodeRecord};
use ethcrypto::secp256k1::SecretKey;
use ethwire::{BlockId, EthMessage, Status};
use netsim::{ConnId, Ctx, Host, HostAddr, SnapError, SnapReader, SnapWriter, TcpEvent};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::mem::size_of;
use std::rc::Rc;

// Timer tokens.
const T_DISC: u64 = 1;
const T_DIAL: u64 = 2;
const T_TX: u64 = 3;
const T_SAMPLE: u64 = 4;
const T_POLL: u64 = 5;
const T_ROTATE: u64 = 6;

/// Geth's `maxActiveDialTasks`.
const MAX_ACTIVE_DIALS: usize = 16;
/// Geth's `lookupInterval` (4s).
const LOOKUP_INTERVAL_MS: u64 = 4_000;
/// Idle back-off ceiling for discovery. A node whose lookups stop
/// producing new candidates slows to this cadence — which is what makes a
/// normal Geth average ~180 discovery attempts/hour (§5.2) instead of the
/// naive 900.
const LOOKUP_BACKOFF_MAX_MS: u64 = 60_000;
/// Dial scheduler cadence.
const DIAL_TICK_MS: u64 = 1_000;
/// Peer-count sampling cadence for instrumented nodes.
const SAMPLE_INTERVAL_MS: u64 = 60_000;
/// discv4 poll cadence while protocol state is pending.
const POLL_TICK_MS: u64 = 600;
/// Minimum pause between rounds of re-dialing known table nodes. Without
/// pacing, a node below its peer cap would hammer unreachable targets
/// every dial tick.
const RETRY_REFILL_MS: u64 = 20_000;

/// Magic prefixing an [`EthNode`] behaviour-state section.
const NODE_SNAP_MAGIC: [u8; 4] = *b"ETHN";
/// Current behaviour-state format version.
const NODE_SNAP_VERSION: u8 = 1;

/// Instrumentation counters — Figures 2, 3, 4 and Table 1 read these.
#[derive(Debug, Clone, Default)]
pub struct NodeStats {
    /// Messages sent, keyed by wire-message label.
    pub sent: BTreeMap<&'static str, u64>,
    /// Messages received, keyed by label.
    pub received: BTreeMap<&'static str, u64>,
    /// DISCONNECT reasons sent.
    pub disconnects_sent: BTreeMap<&'static str, u64>,
    /// DISCONNECT reasons received.
    pub disconnects_received: BTreeMap<&'static str, u64>,
    /// (time ms, active peer count) samples.
    pub peer_samples: Vec<(u64, usize)>,
    /// Every identity this node has used (spammers accumulate many).
    pub identities: Vec<NodeId>,
    /// Discovery lookups started.
    pub lookups: u64,
    /// Outbound dial attempts.
    pub dials: u64,
}

impl NodeStats {
    fn count_sent(&mut self, label: &'static str) {
        *self.sent.entry(label).or_insert(0) += 1;
    }
    fn count_received(&mut self, label: &'static str) {
        *self.received.entry(label).or_insert(0) += 1;
    }
}

/// Label an eth message for the Fig 2/3 tallies.
pub fn eth_label(msg: &EthMessage) -> &'static str {
    match msg {
        EthMessage::Status(_) => "STATUS",
        EthMessage::NewBlockHashes(_) => "NEW_BLOCK_HASHES",
        EthMessage::Transactions(_) => "TRANSACTIONS",
        EthMessage::GetBlockHeaders { .. } => "GET_BLOCK_HEADERS",
        EthMessage::BlockHeaders(_) => "BLOCK_HEADERS",
        EthMessage::GetBlockBodies(_) => "GET_BLOCK_BODIES",
        EthMessage::BlockBodies(_) => "BLOCK_BODIES",
        EthMessage::NewBlock { .. } => "NEW_BLOCK",
        EthMessage::GetNodeData(_) => "GET_NODE_DATA",
        EthMessage::NodeData(_) => "NODE_DATA",
        EthMessage::GetReceipts(_) => "GET_RECEIPTS",
        EthMessage::Receipts(_) => "RECEIPTS",
    }
}

/// Fingerprint of a node ID for the `known` dedup set. Node IDs are
/// secp256k1 public keys, so the leading 8 bytes are effectively uniform:
/// at a million distinct IDs the collision odds are ~2⁻²⁵, and a collision
/// merely suppresses one redial candidate. Storing 8 bytes instead of 64
/// cuts the largest per-host set by 8× at crawl scale.
fn node_fp(id: &NodeId) -> u64 {
    u64::from_be_bytes(id.0[..8].try_into().unwrap())
}

/// A population node.
pub struct EthNode {
    profile: NodeProfile,
    /// Shared flyweight: every node in a world points at the same
    /// bootstrap allocation (the list is immutable after `World::build`).
    bootstrap: Rc<[NodeRecord]>,
    disc: Option<Discv4>,
    conns: BTreeMap<ConnId, PeerConn>,
    /// Count of `conns` entries whose `is_active()` is true, maintained
    /// incrementally by [`EthNode::with_conn_mut`] / [`EthNode::drop_conn`].
    /// `at_capacity` runs on every datagram (via `arm_disc`), and bootstrap
    /// nodes accumulate population-sized `conns` maps — a scan there is the
    /// dominant join-storm cost at 50k hosts.
    active_conns: usize,
    /// Conns that have completed the eth STATUS check (true peers).
    eth_ready: BTreeSet<ConnId>,
    candidates: VecDeque<NodeRecord>,
    known: BTreeSet<u64>,
    dialing: usize,
    /// Armed-timer flags (event-budget discipline).
    disc_armed: bool,
    dial_armed: bool,
    poll_armed: bool,
    /// Consecutive discovery rounds that yielded nothing new.
    dry_lookups: u32,
    /// Earliest time the next table-retry refill may run.
    next_retry_ms: u64,
    /// Record peer-count samples (case-study instrumentation only).
    pub sample_peers: bool,
    /// Counters.
    pub stats: NodeStats,
}

impl EthNode {
    /// Build a node from its profile and bootstrap list. Accepts either an
    /// owned `Vec<NodeRecord>` or a pre-shared `Rc<[NodeRecord]>`; worlds
    /// build the `Rc` once and hand every node the same allocation.
    pub fn new(profile: NodeProfile, bootstrap: impl Into<Rc<[NodeRecord]>>) -> EthNode {
        EthNode {
            profile,
            bootstrap: bootstrap.into(),
            disc: None,
            conns: BTreeMap::new(),
            active_conns: 0,
            eth_ready: BTreeSet::new(),
            candidates: VecDeque::new(),
            known: BTreeSet::new(),
            dialing: 0,
            disc_armed: false,
            dial_armed: false,
            poll_armed: false,
            dry_lookups: 0,
            next_retry_ms: 0,
            sample_peers: false,
            stats: NodeStats::default(),
        }
    }

    /// The node's current identity.
    pub fn node_id(&self) -> NodeId {
        self.profile.node_id()
    }

    /// Its profile.
    pub fn profile(&self) -> &NodeProfile {
        &self.profile
    }

    /// Distinct nodes this node has learned about (discovery coverage —
    /// the eclipse experiment watches this stall).
    pub fn known_count(&self) -> usize {
        self.known.len()
    }

    /// Current routing-table occupancy.
    pub fn table_size(&self) -> usize {
        self.disc.as_ref().map(|d| d.table().len()).unwrap_or(0)
    }

    /// Deterministic estimate of this node's heap footprint in bytes.
    ///
    /// Used by the flyweight regression tests as an RSS proxy: unlike real
    /// RSS it is allocator-independent and replay-stable. Shared (`Rc`)
    /// state is amortized over its reference count, so the estimate sums
    /// to roughly the true total across a whole world. Container entries
    /// are charged `size_of` plus a fixed 16-byte node-overhead constant;
    /// discv4 table internals are charged per entry.
    pub fn approx_heap_bytes(&self) -> usize {
        const NODE_OVERHEAD: usize = 16;
        let shared = |len_bytes: usize, strong: usize| len_bytes / strong.max(1);
        let mut total = size_of::<EthNode>();
        total += shared(
            self.bootstrap.len() * size_of::<NodeRecord>(),
            Rc::strong_count(&self.bootstrap),
        );
        total += shared(
            self.profile.capabilities.len() * size_of::<devp2p::Capability>(),
            Rc::strong_count(&self.profile.capabilities),
        );
        total += self.profile.client_id.len();
        total += self
            .conns
            .len()
            .saturating_mul(size_of::<(ConnId, PeerConn)>() + NODE_OVERHEAD);
        total += self
            .eth_ready
            .len()
            .saturating_mul(size_of::<ConnId>() + NODE_OVERHEAD);
        total += self
            .known
            .len()
            .saturating_mul(size_of::<u64>() + NODE_OVERHEAD);
        total += self.candidates.capacity() * size_of::<NodeRecord>();
        total += self.table_size() * (size_of::<NodeRecord>() + NODE_OVERHEAD);
        total += self.stats.peer_samples.capacity() * size_of::<(u64, usize)>();
        total += self.stats.identities.capacity() * size_of::<NodeId>();
        total += (self.stats.sent.len()
            + self.stats.received.len()
            + self.stats.disconnects_sent.len()
            + self.stats.disconnects_received.len())
            * (size_of::<(&'static str, u64)>() + NODE_OVERHEAD);
        total
    }

    fn endpoint(addr: HostAddr) -> Endpoint {
        Endpoint {
            ip: addr.ip,
            udp_port: addr.port,
            tcp_port: addr.port,
        }
    }

    fn local_hello(&self, addr: HostAddr) -> Hello {
        Hello {
            p2p_version: P2P_VERSION,
            client_id: self.profile.client_id.clone(),
            capabilities: self.profile.capabilities.to_vec(),
            listen_port: addr.port,
            node_id: self.profile.node_id(),
        }
    }

    // hotpath -- `at_capacity` runs per datagram via arm_disc; the count is
    // maintained incrementally, never by scanning `conns`
    fn active_peers(&self) -> usize {
        debug_assert_eq!(
            self.active_conns,
            self.conns.values().filter(|c| c.is_active()).count(),
            "active_conns counter out of sync with conns map"
        );
        self.active_conns
    }

    fn at_capacity(&self) -> bool {
        self.active_peers() >= self.profile.max_peers
    }

    /// Run `f` on the connection's [`PeerConn`], keeping `active_conns` in
    /// sync across any stage transition `f` causes. Every mutable access
    /// to an entry of `conns` must go through here (or `drop_conn`).
    fn with_conn_mut<R>(&mut self, conn: ConnId, f: impl FnOnce(&mut PeerConn) -> R) -> Option<R> {
        let pc = self.conns.get_mut(&conn)?;
        let was_active = pc.is_active();
        let r = f(pc);
        let is_active = pc.is_active();
        match (was_active, is_active) {
            (false, true) => self.active_conns += 1,
            (true, false) => self.active_conns -= 1,
            _ => {}
        }
        Some(r)
    }

    // ---- discovery ----------------------------------------------------

    fn send_disc(&mut self, ctx: &mut Ctx, outgoing: Vec<discv4::Outgoing>) {
        for o in outgoing {
            ctx.send_udp(HostAddr::new(o.to.ip, o.to.udp_port), o.datagram);
        }
        self.arm_poll(ctx);
    }

    fn arm_poll(&mut self, ctx: &mut Ctx) {
        if !self.poll_armed && self.disc.as_ref().map(|d| d.has_pending()).unwrap_or(false) {
            self.poll_armed = true;
            ctx.set_timer(POLL_TICK_MS, T_POLL);
        }
    }

    fn arm_disc(&mut self, ctx: &mut Ctx) {
        if !self.disc_armed && !self.at_capacity() {
            self.disc_armed = true;
            let backoff = LOOKUP_INTERVAL_MS << self.dry_lookups.min(4);
            ctx.set_timer(backoff.min(LOOKUP_BACKOFF_MAX_MS), T_DISC);
        }
    }

    fn arm_dial(&mut self, ctx: &mut Ctx) {
        if self.dial_armed {
            return;
        }
        if !self.candidates.is_empty() {
            self.dial_armed = true;
            ctx.set_timer(DIAL_TICK_MS, T_DIAL);
        } else if !self.at_capacity()
            && self
                .disc
                .as_ref()
                .map(|d| !d.table().is_empty())
                .unwrap_or(false)
        {
            // Only retry work remains: wake at the paced refill time.
            self.dial_armed = true;
            let delay = self
                .next_retry_ms
                .saturating_sub(ctx.now_ms)
                .max(DIAL_TICK_MS);
            ctx.set_timer(delay, T_DIAL);
        }
    }

    fn drain_disc_events(&mut self, ctx: &mut Ctx) {
        let Some(disc) = self.disc.as_mut() else {
            return;
        };
        let events = disc.take_events();
        let own_id = self.profile.node_id();
        for event in events {
            let record = match event {
                DiscEvent::NodeSeen(r) | DiscEvent::NodeVerified(r) => Some(r),
                DiscEvent::LookupDone { .. } => None,
            };
            if let Some(record) = record {
                if record.id != own_id
                    && record.endpoint.tcp_port != 0
                    && self.known.insert(node_fp(&record.id))
                {
                    self.candidates.push_back(record);
                    self.dry_lookups = 0;
                }
            }
        }
        self.arm_dial(ctx);
    }

    // ---- dialing ------------------------------------------------------

    fn dial_some(&mut self, ctx: &mut Ctx) {
        // Fresh discoveries first; once the queue is dry, retry known table
        // residents we aren't connected to (Geth keeps redialing table
        // nodes — without this no client ever fills its peer cap, because
        // first-attempt dials often land on full peers).
        if self.candidates.is_empty() && !self.at_capacity() && ctx.now_ms >= self.next_retry_ms {
            self.next_retry_ms = ctx.now_ms + RETRY_REFILL_MS;
            if let Some(disc) = self.disc.as_ref() {
                let connected: BTreeSet<NodeId> =
                    self.conns.values().filter_map(|c| c.peer_id).collect();
                let retry: Vec<NodeRecord> = disc
                    .table()
                    .entries()
                    .map(|e| e.record)
                    .filter(|r| !connected.contains(&r.id))
                    .take(8)
                    .collect();
                self.candidates.extend(retry);
            }
        }
        while self.dialing < MAX_ACTIVE_DIALS
            && self.active_peers() + self.dialing < self.profile.max_peers
        {
            let Some(candidate) = self.candidates.pop_front() else {
                break;
            };
            if self.conns.values().any(|c| c.peer_id == Some(candidate.id)) {
                continue;
            }
            // Never dial our own address: after an identity rotation our
            // old node ID may come back to us through discovery.
            let local = ctx.local_addr();
            if candidate.endpoint.ip == local.ip && candidate.endpoint.tcp_port == local.port {
                continue;
            }
            let conn = ctx.tcp_connect(HostAddr::new(
                candidate.endpoint.ip,
                candidate.endpoint.tcp_port,
            ));
            let hello = self.local_hello(ctx.local_addr());
            self.conns.insert(
                conn,
                PeerConn::dialing(conn, candidate.id, hello, ctx.now_ms),
            );
            self.dialing += 1;
            self.stats.dials += 1;
        }
    }

    // ---- session policy -----------------------------------------------

    fn count_eth_sent(&mut self, msg: &EthMessage) {
        self.stats.count_sent(eth_label(msg));
    }

    fn send_eth_on(&mut self, ctx: &mut Ctx, conn: ConnId, msg: &EthMessage) {
        if let Some(frames) = self.with_conn_mut(conn, |pc| pc.send_eth(msg)) {
            if !frames.is_empty() {
                self.count_eth_sent(msg);
            }
            for f in frames {
                ctx.tcp_send(conn, f);
            }
        }
    }

    fn disconnect_conn(&mut self, ctx: &mut Ctx, conn: ConnId, reason: DisconnectReason) {
        if let Some(frames) = self.with_conn_mut(conn, |pc| pc.send_disconnect(reason)) {
            if !frames.is_empty() {
                self.stats.count_sent("DISCONNECT");
                *self
                    .stats
                    .disconnects_sent
                    .entry(reason.label())
                    .or_insert(0) += 1;
            }
            for f in frames {
                ctx.tcp_send(conn, f);
            }
            ctx.tcp_close(conn);
        }
        self.drop_conn(ctx, conn);
    }

    fn drop_conn(&mut self, ctx: &mut Ctx, conn: ConnId) {
        if let Some(pc) = self.conns.remove(&conn) {
            if pc.is_active() {
                self.active_conns -= 1;
            }
        }
        self.eth_ready.remove(&conn);
        // A slot may have freed: resume discovery/dialing.
        self.arm_disc(ctx);
        self.arm_dial(ctx);
    }

    fn our_status(&self) -> Option<Status> {
        match &self.profile.service {
            ServiceKind::Eth { chain } => Some(Status {
                protocol_version: 63,
                network_id: chain.config.network_id,
                total_difficulty: chain.total_difficulty(),
                best_hash: chain.best_hash(),
                genesis_hash: chain.config.genesis_hash,
            }),
            _ => None,
        }
    }

    fn handle_wire_event(&mut self, ctx: &mut Ctx, conn: ConnId, event: WireEvent) {
        match event {
            WireEvent::RlpxEstablished { .. } => {
                self.stats.count_sent("HELLO"); // our HELLO was queued
            }
            WireEvent::Hello { hello, shared } => {
                self.stats.count_received("HELLO");
                self.known.insert(node_fp(&hello.node_id));
                // Policy 1: peer cap (counts the new conn itself).
                if self.active_peers() > self.profile.max_peers {
                    self.disconnect_conn(ctx, conn, DisconnectReason::TooManyPeers);
                    return;
                }
                // Policy 2: no shared capability → useless.
                if shared.is_empty() {
                    self.disconnect_conn(ctx, conn, DisconnectReason::UselessPeer);
                    return;
                }
                // Policy 3: eth negotiation → STATUS goes first.
                if shared.iter().any(|c| c.name == "eth") {
                    match self.our_status() {
                        Some(st) => self.send_eth_on(ctx, conn, &EthMessage::Status(st)),
                        None => {
                            // Light/other node that advertised eth-compatible
                            // caps it can't serve: drop as useless.
                            if matches!(self.profile.service, ServiceKind::OtherService) {
                                self.disconnect_conn(ctx, conn, DisconnectReason::UselessPeer);
                            }
                            // Light nodes simply never send STATUS (§5.3).
                        }
                    }
                }
            }
            WireEvent::Eth(msg) => {
                self.stats.count_received(eth_label(&msg));
                self.handle_eth(ctx, conn, msg);
            }
            WireEvent::OtherSubprotocol { .. } => {
                self.stats.count_received("OTHER_SUBPROTOCOL");
            }
            WireEvent::Ping => {
                self.stats.count_received("PING");
                self.stats.count_sent("PONG");
                if let Some(frames) = self.with_conn_mut(conn, |pc| pc.flush_session()) {
                    for f in frames {
                        ctx.tcp_send(conn, f);
                    }
                }
            }
            WireEvent::Pong => self.stats.count_received("PONG"),
            WireEvent::Disconnected(reason) => {
                self.stats.count_received("DISCONNECT");
                *self
                    .stats
                    .disconnects_received
                    .entry(reason.label())
                    .or_insert(0) += 1;
                ctx.tcp_close(conn);
                self.drop_conn(ctx, conn);
            }
            WireEvent::ProtocolError(_) => {
                ctx.tcp_close(conn);
                self.drop_conn(ctx, conn);
            }
        }
    }

    fn handle_eth(&mut self, ctx: &mut Ctx, conn: ConnId, msg: EthMessage) {
        match msg {
            EthMessage::Status(theirs) => {
                let Some(ours) = self.our_status() else {
                    // We don't run eth (light node received a status?) —
                    // tolerate silently.
                    return;
                };
                if ours.compatible(&theirs) {
                    self.eth_ready.insert(conn);
                    return;
                }
                // Chain mismatch: client-specific disconnect behaviour
                // (§3 observation 4 / Table 1).
                let reason = match self.profile.kind {
                    // Parity implements nothing above 0x0b, so mismatches
                    // surface as UselessPeer.
                    ClientKind::Parity => DisconnectReason::UselessPeer,
                    // Geth distinguishes: wrong genesis/network is a
                    // subprotocol-level error.
                    _ => DisconnectReason::SubprotocolError,
                };
                self.disconnect_conn(ctx, conn, reason);
            }
            EthMessage::GetBlockHeaders {
                start,
                max_headers,
                skip,
                reverse,
            } => {
                if let ServiceKind::Eth { chain } = &self.profile.service {
                    let start_num = match start {
                        BlockId::Number(n) => Some(n),
                        // Hash lookups supported for the head only (enough
                        // for sync-start probes).
                        BlockId::Hash(h) if h == chain.best_hash() => Some(chain.head),
                        BlockId::Hash(_) => None,
                    };
                    let headers = match start_num {
                        Some(n) => chain.headers(n, max_headers as usize, skip, reverse),
                        None => Vec::new(),
                    };
                    self.send_eth_on(ctx, conn, &EthMessage::BlockHeaders(headers));
                }
            }
            EthMessage::GetBlockBodies(hashes) => {
                let bodies = vec![vec![0u8; 64]; hashes.len().min(16)];
                self.send_eth_on(ctx, conn, &EthMessage::BlockBodies(bodies));
            }
            EthMessage::GetReceipts(hashes) => {
                let receipts = vec![vec![0u8; 32]; hashes.len().min(16)];
                self.send_eth_on(ctx, conn, &EthMessage::Receipts(receipts));
            }
            EthMessage::GetNodeData(hashes) => {
                let data = vec![vec![0u8; 32]; hashes.len().min(16)];
                self.send_eth_on(ctx, conn, &EthMessage::NodeData(data));
            }
            // Gossip is consumed (counted by the caller) but not re-flooded
            // — echo suppression stands in for real dedup logic.
            EthMessage::Transactions(_)
            | EthMessage::NewBlockHashes(_)
            | EthMessage::NewBlock { .. }
            | EthMessage::BlockHeaders(_)
            | EthMessage::BlockBodies(_)
            | EthMessage::NodeData(_)
            | EthMessage::Receipts(_) => {}
        }
    }

    fn gossip_transactions(&mut self, ctx: &mut Ctx) {
        if self.profile.tx_interval_ms == 0 {
            return;
        }
        let ready: Vec<ConnId> = self
            .eth_ready
            .iter()
            .copied()
            .filter(|c| self.conns.get(c).map(|p| p.is_active()).unwrap_or(false))
            .collect();
        if ready.is_empty() {
            return;
        }
        let fanout = self.profile.tx_fanout(ready.len()).min(ready.len());
        let n_txs = ctx.rng().gen_range(1..=3);
        let txs: Vec<Vec<u8>> = (0..n_txs)
            .map(|_| {
                let mut tx = vec![0u8; 120];
                ctx.rng().fill(&mut tx[..]);
                tx
            })
            .collect();
        let start = ctx.rng().gen_range(0..ready.len());
        let msg = EthMessage::Transactions(txs);
        for i in 0..fanout {
            let conn = ready[(start + i) % ready.len()];
            self.send_eth_on(ctx, conn, &msg);
        }
    }

    fn rotate_identity(&mut self, ctx: &mut Ctx) {
        // Mint a fresh key: the spammer's defining behaviour.
        let new_key = SecretKey::random(ctx.rng());
        self.profile.key = new_key;
        self.stats.identities.push(self.profile.node_id());
        let addr = ctx.local_addr();
        let config = DiscConfig {
            metric: self.profile.metric,
            ..DiscConfig::default()
        };
        let mut disc = Discv4::new(new_key, Self::endpoint(addr), config);
        // Re-announce to bootstraps under the new identity.
        let mut outgoing = Vec::new();
        for b in self.bootstrap.iter() {
            if b.id != self.profile.node_id() {
                outgoing.push(disc.ping(*b, ctx.now_ms));
            }
        }
        self.disc = Some(disc);
        // Old connections die with the old identity.
        let conns: Vec<ConnId> = self.conns.keys().copied().collect();
        for c in conns {
            ctx.tcp_close(c);
            self.drop_conn(ctx, c);
        }
        self.send_disc(ctx, outgoing);
    }

    // ---- checkpoint/restore -------------------------------------------

    /// Serialize every piece of dynamic state a restore cannot rebuild
    /// from the profile. Static structure — the bootstrap flyweight, the
    /// capability list, the chain, the service kind — is deliberately
    /// absent: the world shell reconstructs it, which is what keeps `Rc`
    /// allocations shared after a restore.
    fn encode_state(&self) -> Vec<u8> {
        let mut w = SnapWriter::with_header(NODE_SNAP_MAGIC, NODE_SNAP_VERSION);
        // Mutable profile slices: rotation rewrites the key, release
        // plans rewrite the client id on (re)start.
        w.raw(&self.profile.key.to_bytes());
        w.str(&self.profile.client_id);
        w.bool(self.disc.is_some());
        if let Some(disc) = &self.disc {
            state::w_endpoint(&mut w, &disc.endpoint());
            state::w_discv4(&mut w, &disc.to_state());
        }
        w.usize(self.conns.len());
        for pc in self.conns.values() {
            pc.encode_into(&mut w);
        }
        w.usize(self.eth_ready.len());
        for conn in &self.eth_ready {
            w.usize(*conn);
        }
        w.usize(self.candidates.len());
        for rec in &self.candidates {
            state::w_record(&mut w, rec);
        }
        w.usize(self.known.len());
        for fp in &self.known {
            w.u64(*fp);
        }
        w.usize(self.dialing);
        w.bool(self.disc_armed);
        w.bool(self.dial_armed);
        w.bool(self.poll_armed);
        w.u32(self.dry_lookups);
        w.u64(self.next_retry_ms);
        w.bool(self.sample_peers);
        let label_map = |w: &mut SnapWriter, m: &BTreeMap<&'static str, u64>| {
            w.usize(m.len());
            for (label, v) in m {
                w.str(label);
                w.u64(*v);
            }
        };
        label_map(&mut w, &self.stats.sent);
        label_map(&mut w, &self.stats.received);
        label_map(&mut w, &self.stats.disconnects_sent);
        label_map(&mut w, &self.stats.disconnects_received);
        w.usize(self.stats.peer_samples.len());
        for (t, n) in &self.stats.peer_samples {
            w.u64(*t);
            w.usize(*n);
        }
        w.usize(self.stats.identities.len());
        for id in &self.stats.identities {
            state::w_node_id(&mut w, id);
        }
        w.u64(self.stats.lookups);
        w.u64(self.stats.dials);
        w.finish()
    }

    /// Overwrite this (shell-rebuilt) node's dynamic state from
    /// [`EthNode::encode_state`] output.
    fn apply_state(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::with_header(bytes, NODE_SNAP_MAGIC, NODE_SNAP_VERSION)?;
        let key = SecretKey::from_bytes(&r.array::<32>()?)
            .map_err(|_| SnapError::Corrupt("node identity key does not decode"))?;
        let client_id = r.str()?.to_string();
        let disc = if r.bool()? {
            let endpoint = state::r_endpoint(&mut r)?;
            let disc_state = state::r_discv4(&mut r)?;
            let config = DiscConfig {
                metric: self.profile.metric,
                ..DiscConfig::default()
            };
            Some(Discv4::from_state(key, endpoint, config, disc_state))
        } else {
            None
        };
        let n = r.usize()?;
        let mut conns = BTreeMap::new();
        for _ in 0..n {
            let pc = PeerConn::decode_from(&mut r, &key)?;
            conns.insert(pc.conn, pc);
        }
        let n = r.usize()?;
        let mut eth_ready = BTreeSet::new();
        for _ in 0..n {
            eth_ready.insert(r.usize()?);
        }
        let n = r.usize()?;
        let mut candidates = VecDeque::with_capacity(n.min(1024));
        for _ in 0..n {
            candidates.push_back(state::r_record(&mut r)?);
        }
        let n = r.usize()?;
        let mut known = BTreeSet::new();
        for _ in 0..n {
            known.insert(r.u64()?);
        }
        let dialing = r.usize()?;
        let disc_armed = r.bool()?;
        let dial_armed = r.bool()?;
        let poll_armed = r.bool()?;
        let dry_lookups = r.u32()?;
        let next_retry_ms = r.u64()?;
        let sample_peers = r.bool()?;
        let label_map = |r: &mut SnapReader<'_>| -> Result<BTreeMap<&'static str, u64>, SnapError> {
            let n = r.usize()?;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let label = state::intern_label(r.str()?);
                let v = r.u64()?;
                m.insert(label, v);
            }
            Ok(m)
        };
        let sent = label_map(&mut r)?;
        let received = label_map(&mut r)?;
        let disconnects_sent = label_map(&mut r)?;
        let disconnects_received = label_map(&mut r)?;
        let n = r.usize()?;
        let mut peer_samples = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let t = r.u64()?;
            let c = r.usize()?;
            peer_samples.push((t, c));
        }
        let n = r.usize()?;
        let mut identities = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            identities.push(state::r_node_id(&mut r)?);
        }
        let lookups = r.u64()?;
        let dials = r.u64()?;
        r.finish()?;

        self.profile.key = key;
        self.profile.client_id = client_id;
        self.disc = disc;
        self.active_conns = conns.values().filter(|c| c.is_active()).count();
        self.conns = conns;
        self.eth_ready = eth_ready;
        self.candidates = candidates;
        self.known = known;
        self.dialing = dialing;
        self.disc_armed = disc_armed;
        self.dial_armed = dial_armed;
        self.poll_armed = poll_armed;
        self.dry_lookups = dry_lookups;
        self.next_retry_ms = next_retry_ms;
        self.sample_peers = sample_peers;
        self.stats = NodeStats {
            sent,
            received,
            disconnects_sent,
            disconnects_received,
            peer_samples,
            identities,
            lookups,
            dials,
        };
        Ok(())
    }
}

impl Host for EthNode {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        // Version upgrades land on restart (churn drives Fig 10).
        if let Some(plan) = self.profile.release_plan {
            self.profile.client_id = plan.client_id_at(ctx.now_ms);
        }
        let addr = ctx.local_addr();
        let config = DiscConfig {
            metric: self.profile.metric,
            ..DiscConfig::default()
        };
        let mut disc = Discv4::new(self.profile.key, Self::endpoint(addr), config);
        self.stats.identities.push(self.profile.node_id());
        let mut outgoing = Vec::new();
        for b in self.bootstrap.iter() {
            if b.id != self.profile.node_id() {
                outgoing.push(disc.ping(*b, ctx.now_ms));
            }
        }
        self.disc = Some(disc);
        self.send_disc(ctx, outgoing);
        self.arm_disc(ctx);
        if self.profile.tx_interval_ms > 0 {
            ctx.set_timer(self.profile.tx_interval_ms, T_TX);
        }
        if self.sample_peers {
            ctx.set_timer(SAMPLE_INTERVAL_MS, T_SAMPLE);
        }
        if let Some(rot) = self.profile.identity_rotation_ms {
            ctx.set_timer(rot, T_ROTATE);
        }
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        let Some(disc) = self.disc.as_mut() else {
            return;
        };
        let from_ep = Endpoint {
            ip: from.ip,
            udp_port: from.port,
            tcp_port: from.port,
        };
        let outgoing = disc.on_datagram(from_ep, datagram, ctx.now_ms);
        self.send_disc(ctx, outgoing);
        self.drain_disc_events(ctx);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        match event {
            TcpEvent::Connected { conn, .. } => {
                self.dialing = self.dialing.saturating_sub(1);
                let key = self.profile.key;
                let frames = self
                    .with_conn_mut(conn, |pc| pc.on_tcp_connected(ctx.rng(), &key))
                    .unwrap_or_default();
                for f in frames {
                    ctx.tcp_send(conn, f);
                }
                if let Some(pc) = self.conns.get(&conn) {
                    if pc.is_dead() {
                        ctx.tcp_close(conn);
                        self.drop_conn(ctx, conn);
                    }
                }
            }
            TcpEvent::ConnectFailed { conn } => {
                self.dialing = self.dialing.saturating_sub(1);
                self.drop_conn(ctx, conn);
            }
            TcpEvent::Incoming { conn, .. } => {
                if self.conns.contains_key(&conn) {
                    // Self-connection (we dialed our own address): refuse.
                    ctx.tcp_close(conn);
                    self.drop_conn(ctx, conn);
                    return;
                }
                let hello = self.local_hello(ctx.local_addr());
                self.conns
                    .insert(conn, PeerConn::accepted(conn, hello, ctx.now_ms));
            }
            TcpEvent::Data { conn, bytes } => {
                let key = self.profile.key;
                let Some((events, out)) =
                    self.with_conn_mut(conn, |pc| pc.on_data(ctx.rng(), &key, &bytes))
                else {
                    return;
                };
                for f in out {
                    ctx.tcp_send(conn, f);
                }
                for e in events {
                    self.handle_wire_event(ctx, conn, e);
                }
                if self.conns.get(&conn).map(|p| p.is_dead()).unwrap_or(false) {
                    ctx.tcp_close(conn);
                    self.drop_conn(ctx, conn);
                }
            }
            TcpEvent::Closed { conn } => {
                self.drop_conn(ctx, conn);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        match token {
            T_DISC => {
                self.disc_armed = false;
                if self.at_capacity() {
                    return; // re-armed when a slot frees
                }
                let mut outgoing = Vec::new();
                if let Some(disc) = self.disc.as_mut() {
                    outgoing.extend(disc.poll(ctx.now_ms));
                    if !disc.lookup_in_progress() {
                        let mut target = [0u8; 64];
                        ctx.rng().fill(&mut target[..]);
                        let disc = self.disc.as_mut().unwrap();
                        outgoing.extend(disc.start_lookup(NodeId(target), ctx.now_ms));
                        self.stats.lookups += 1;
                        self.dry_lookups = self.dry_lookups.saturating_add(1);
                    }
                }
                self.send_disc(ctx, outgoing);
                self.drain_disc_events(ctx);
                self.arm_disc(ctx);
            }
            T_DIAL => {
                self.dial_armed = false;
                self.dial_some(ctx);
                self.arm_dial(ctx);
            }
            T_TX => {
                self.gossip_transactions(ctx);
                ctx.set_timer(self.profile.tx_interval_ms, T_TX);
            }
            T_SAMPLE => {
                let peers = self.active_peers();
                self.stats.peer_samples.push((ctx.now_ms, peers));
                ctx.set_timer(SAMPLE_INTERVAL_MS, T_SAMPLE);
            }
            T_POLL => {
                self.poll_armed = false;
                let outgoing = match self.disc.as_mut() {
                    Some(d) => d.poll(ctx.now_ms),
                    None => Vec::new(),
                };
                self.send_disc(ctx, outgoing);
                self.drain_disc_events(ctx);
                self.arm_poll(ctx);
            }
            T_ROTATE => {
                self.rotate_identity(ctx);
                if let Some(rot) = self.profile.identity_rotation_ms {
                    ctx.set_timer(rot, T_ROTATE);
                }
            }
            _ => {}
        }
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.encode_state())
    }

    fn load_state(&mut self, bytes: &[u8]) -> bool {
        self.apply_state(bytes).is_ok()
    }

    fn on_stop(&mut self, _ctx: &mut Ctx) {
        self.conns.clear();
        self.active_conns = 0;
        self.eth_ready.clear();
        self.dialing = 0;
        self.disc = None;
        self.disc_armed = false;
        self.dial_armed = false;
        self.poll_armed = false;
        self.candidates.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clients::NodeProfile;
    use ethwire::{Chain, ChainConfig};

    fn node() -> EthNode {
        let key = SecretKey::from_bytes(&[0x11u8; 32]).unwrap();
        let chain = Chain::new(ChainConfig::mainnet(), 1000);
        EthNode::new(NodeProfile::geth(key, "Geth/test".into(), chain), vec![])
    }

    #[test]
    fn eth_labels_cover_all_messages() {
        let msgs = [
            EthMessage::Status(Status {
                protocol_version: 63,
                network_id: 1,
                total_difficulty: 1,
                best_hash: [0; 32],
                genesis_hash: [0; 32],
            }),
            EthMessage::Transactions(vec![]),
            EthMessage::GetBlockHeaders {
                start: BlockId::Number(0),
                max_headers: 1,
                skip: 0,
                reverse: false,
            },
            EthMessage::BlockHeaders(vec![]),
            EthMessage::NewBlockHashes(vec![]),
            EthMessage::GetBlockBodies(vec![]),
            EthMessage::BlockBodies(vec![]),
            EthMessage::NewBlock {
                block: vec![],
                total_difficulty: 0,
            },
            EthMessage::GetNodeData(vec![]),
            EthMessage::NodeData(vec![]),
            EthMessage::GetReceipts(vec![]),
            EthMessage::Receipts(vec![]),
        ];
        let labels: std::collections::BTreeSet<&str> = msgs.iter().map(eth_label).collect();
        assert_eq!(labels.len(), msgs.len(), "labels must be distinct");
    }

    #[test]
    fn stats_counters_accumulate() {
        let mut stats = NodeStats::default();
        stats.count_sent("TRANSACTIONS");
        stats.count_sent("TRANSACTIONS");
        stats.count_received("HELLO");
        assert_eq!(stats.sent["TRANSACTIONS"], 2);
        assert_eq!(stats.received["HELLO"], 1);
    }

    #[test]
    fn fresh_node_has_no_peers_and_identity() {
        let n = node();
        assert_eq!(n.active_peers(), 0);
        assert!(!n.at_capacity());
        assert_eq!(n.node_id(), n.profile().node_id());
    }

    #[test]
    fn our_status_reflects_chain() {
        let n = node();
        let st = n.our_status().expect("eth node has a status");
        assert_eq!(st.network_id, 1);
        assert_eq!(st.genesis_hash, ethwire::MAINNET_GENESIS);
        let chain = Chain::new(ChainConfig::mainnet(), 1000);
        assert_eq!(st.best_hash, chain.best_hash());
        assert_eq!(st.total_difficulty, chain.total_difficulty());
    }

    #[test]
    fn light_and_other_nodes_have_no_status() {
        let key = SecretKey::from_bytes(&[0x22u8; 32]).unwrap();
        let light = EthNode::new(
            NodeProfile::light(key, "les".into(), devp2p::Capability::new("les", 2)),
            vec![],
        );
        assert!(light.our_status().is_none());
    }
}
