//! Flyweight-host equivalence: sharing immutable state (`Rc` bootstrap
//! lists and capability lists) across a population must be invisible to
//! behavior — the same world run against deep, unshared copies emits the
//! identical trace — and must actually shrink the per-host footprint the
//! `approx_heap_bytes` proxy measures.

use enode::{Endpoint, NodeId, NodeRecord};
use ethcrypto::secp256k1::SecretKey;
use ethpop::{EthNode, NodeProfile, World, WorldConfig};
use ethwire::{Chain, ChainConfig};
use netsim::{HostAddr, HostMeta, NetSim, Region, SimConfig};
use std::net::Ipv4Addr;
use std::rc::Rc;

const SIM_MS: u64 = 2 * 60_000;

fn meta() -> HostMeta {
    HostMeta {
        country: "US",
        asn: "Test",
        region: Region::NorthAmerica,
        reachable: true,
    }
}

fn profiles() -> Vec<NodeProfile> {
    let chain = Chain::new(ChainConfig::mainnet(), 100);
    (0..6u8)
        .map(|i| {
            let key = SecretKey::from_bytes(&[i + 1; 32]).unwrap();
            if i % 2 == 0 {
                NodeProfile::geth(key, "Geth/v1.8.11".into(), chain.clone())
            } else {
                NodeProfile::parity(key, "Parity/v1.10.6".into(), chain.clone())
            }
        })
        .collect()
}

/// Per-node tallies from a mesh run: (known peers, dials, messages sent).
type NodeTally = (usize, u64, u64);

/// Build and run a small mesh where every node bootstraps off node 0.
/// `shared` hands all nodes one `Rc` bootstrap list and the profiles
/// as-is; the control re-allocates everything per node via
/// `NodeProfile::unshared()` and per-node `Vec`s.
fn run_mesh(shared: bool) -> (u64, (u64, u64), Vec<NodeTally>) {
    let mut sim = NetSim::new(SimConfig {
        seed: 99,
        udp_loss: 0.1,
        jitter_ms: 8,
        ..SimConfig::default()
    });
    let profiles = profiles();
    let boot_record = NodeRecord::new(
        NodeId::from_secret_key(&profiles[0].key),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
    );
    let boot_shared: Rc<[NodeRecord]> = vec![boot_record].into();
    let mut hosts = Vec::new();
    for (i, profile) in profiles.into_iter().enumerate() {
        let addr = HostAddr::new(Ipv4Addr::new(10, 0, 0, i as u8 + 1), 30303);
        let node = if shared {
            EthNode::new(profile, boot_shared.clone())
        } else {
            EthNode::new(profile.unshared(), vec![boot_record])
        };
        let host = sim.add_host(addr, meta(), Box::new(node));
        sim.schedule_start(host, 0);
        hosts.push(host);
    }
    sim.run_until(SIM_MS);
    let events = sim.events_processed();
    let udp = sim.udp_counters();
    let per_node: Vec<NodeTally> = hosts
        .into_iter()
        .map(|h| {
            let node = sim
                .remove_host_behaviour(h)
                .unwrap()
                .into_any()
                .downcast::<EthNode>()
                .unwrap();
            (
                node.known_count(),
                node.stats.dials,
                node.stats.sent.values().sum::<u64>(),
            )
        })
        .collect();
    (events, udp, per_node)
}

/// Shared flyweight state must emit exactly the actions the unshared
/// deep-copy world emits: same event totals, same UDP traffic, same
/// per-node discovery/dial/send tallies.
#[test]
fn shared_and_unshared_state_behave_identically() {
    let shared = run_mesh(true);
    let unshared = run_mesh(false);
    assert!(shared.0 > 500, "mesh too quiet: {} events", shared.0);
    assert_eq!(shared, unshared);
    assert!(
        shared.2.iter().all(|(known, _, _)| *known > 0),
        "every node should have discovered peers: {:?}",
        shared.2
    );
}

/// Sharing must show up in the heap proxy: a node holding an `Rc` clone of
/// a 50-record bootstrap list is charged a fraction of what an unshared
/// copy costs.
#[test]
fn sharing_shrinks_the_heap_proxy() {
    let chain = Chain::new(ChainConfig::mainnet(), 100);
    let records: Vec<NodeRecord> = (0..50u8)
        .map(|i| {
            let key = SecretKey::from_bytes(&[i + 1; 32]).unwrap();
            NodeRecord::new(
                NodeId::from_secret_key(&key),
                Endpoint::new(Ipv4Addr::new(10, 0, 0, i + 1), 30303),
            )
        })
        .collect();
    let profile = |i: u8| {
        NodeProfile::geth(
            SecretKey::from_bytes(&[i; 32]).unwrap(),
            "Geth/v1.8.11".into(),
            chain.clone(),
        )
    };
    let boot: Rc<[NodeRecord]> = records.clone().into();
    let fleet: Vec<EthNode> = (1..=8)
        .map(|i| EthNode::new(profile(i), boot.clone()))
        .collect();
    let lone = EthNode::new(profile(9), records);
    let shared_bytes = fleet[0].approx_heap_bytes();
    let lone_bytes = lone.approx_heap_bytes();
    assert!(
        shared_bytes * 2 < lone_bytes,
        "sharing should at least halve the proxy: shared {shared_bytes}, unshared {lone_bytes}"
    );
}

/// The 5k-tier budget regression: mean per-host footprint at build time
/// must stay far below the ~210 KB/host the pre-flyweight engine spent.
/// The 2 KB budget pins both the flyweight sharing (one bootstrap
/// allocation for the whole world) and the compact `known` fingerprint
/// set.
#[test]
fn five_k_world_mean_footprint_stays_under_budget() {
    let config = WorldConfig {
        seed: 7,
        n_nodes: 5_000,
        duration_ms: 60_000,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    let hosts: Vec<_> = world.nodes.iter().map(|n| n.host).collect();
    let mut total = 0usize;
    let mut counted = 0usize;
    for h in hosts {
        if let Some(b) = world.sim.remove_host_behaviour(h) {
            if let Ok(node) = b.into_any().downcast::<EthNode>() {
                total += node.approx_heap_bytes();
                counted += 1;
            }
        }
    }
    assert!(
        counted >= 5_000,
        "expected the full population, got {counted}"
    );
    let mean = total / counted;
    assert!(
        mean < 2_048,
        "mean per-host proxy {mean} B exceeds the 2 KiB flyweight budget"
    );
}
