//! The adversarial `Host` behaviours.
//!
//! Each behaviour announces via [`Announcer`] so crawlers discover it,
//! then misbehaves on the TCP side in one specific way. Counters are
//! public so scenario tests can assert the adversary was actually
//! exercised (a robustness test that never hits the fault path proves
//! nothing).

use crate::disc::Announcer;
use bytes::BytesMut;
use devp2p::{Capability, Hello, P2P_VERSION};
use discv4::{Packet, MAX_NEIGHBORS_PER_PACKET};
use enode::{Endpoint, NodeId, NodeRecord};
use ethcrypto::keccak256;
use ethcrypto::secp256k1::SecretKey;
use ethpop::{PeerConn, WireEvent};
use ethwire::{EthMessage, Status};
use netsim::{ConnId, Ctx, Host, HostAddr, TcpEvent};
use rlpx::{expected_len, FrameCodec, Handshake, Role};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Buffer a stream until one complete prefixed RLPx handshake message is
/// available. Returns the framed message, leaving any remainder buffered.
fn take_handshake_msg(buf: &mut BytesMut) -> Option<Vec<u8>> {
    if buf.len() < 2 {
        return None;
    }
    let need = expected_len(&[buf[0], buf[1]]);
    if buf.len() < need {
        return None;
    }
    Some(buf.split_to(need).to_vec())
}

// ---------------------------------------------------------------------
// Slow loris
// ---------------------------------------------------------------------

/// ACKs the RLPx `auth`, then stalls forever.
///
/// The crawler authenticates the peer (RlpxEstablished fires) but never
/// receives a HELLO; only a per-stage timeout reaps the probe. This is
/// the paper's dominant failure mode: dialed, crypto fine, no DEVp2p.
pub struct SlowLoris {
    key: SecretKey,
    disc: Announcer,
    bufs: BTreeMap<ConnId, BytesMut>,
    /// Auth messages answered with a valid ack.
    pub auths_acked: u64,
}

impl SlowLoris {
    /// Build with an identity and bootstrap endpoints to announce to.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> SlowLoris {
        SlowLoris {
            key,
            disc: Announcer::new(key, bootstrap),
            bufs: BTreeMap::new(),
            auths_acked: 0,
        }
    }

    /// The adversary's identity.
    pub fn node_id(&self) -> NodeId {
        self.disc.node_id()
    }
}

impl Host for SlowLoris {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.disc.on_start(ctx);
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        self.disc.on_udp(ctx, from, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        match event {
            TcpEvent::Incoming { conn, .. } => {
                self.bufs.insert(conn, BytesMut::new());
            }
            TcpEvent::Data { conn, bytes } => {
                let Some(buf) = self.bufs.get_mut(&conn) else {
                    return;
                };
                buf.extend_from_slice(&bytes);
                if let Some(msg) = take_handshake_msg(buf) {
                    let mut hs = Handshake::new(Role::Recipient, self.key, ctx.rng());
                    if let Ok(ack) = hs.read_auth(ctx.rng(), &msg) {
                        ctx.tcp_send(conn, ack);
                        self.auths_acked += 1;
                    }
                    // ... and then nothing, ever. The socket stays open.
                }
            }
            TcpEvent::Closed { conn } => {
                self.bufs.remove(&conn);
            }
            TcpEvent::Connected { .. } | TcpEvent::ConnectFailed { .. } => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn on_stop(&mut self, _ctx: &mut Ctx) {
        self.bufs.clear();
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ---------------------------------------------------------------------
// Garbage HELLO
// ---------------------------------------------------------------------

/// Completes the RLPx handshake, then sends a correctly framed but
/// undecodable HELLO.
///
/// The frame layer accepts it (MAC and ciphertext are valid), so the
/// error surfaces inside `devp2p::session` — the crawler must classify
/// this as a protocol error, not a crypto failure.
pub struct GarbageHello {
    key: SecretKey,
    disc: Announcer,
    bufs: BTreeMap<ConnId, BytesMut>,
    /// Garbage HELLO frames sent.
    pub garbage_sent: u64,
}

impl GarbageHello {
    /// Build with an identity and bootstrap endpoints to announce to.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> GarbageHello {
        GarbageHello {
            key,
            disc: Announcer::new(key, bootstrap),
            bufs: BTreeMap::new(),
            garbage_sent: 0,
        }
    }

    /// The adversary's identity.
    pub fn node_id(&self) -> NodeId {
        self.disc.node_id()
    }
}

impl Host for GarbageHello {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.disc.on_start(ctx);
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        self.disc.on_udp(ctx, from, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        match event {
            TcpEvent::Incoming { conn, .. } => {
                self.bufs.insert(conn, BytesMut::new());
            }
            TcpEvent::Data { conn, bytes } => {
                let Some(buf) = self.bufs.get_mut(&conn) else {
                    return;
                };
                buf.extend_from_slice(&bytes);
                if let Some(msg) = take_handshake_msg(buf) {
                    let mut hs = Handshake::new(Role::Recipient, self.key, ctx.rng());
                    let Ok(ack) = hs.read_auth(ctx.rng(), &msg) else {
                        ctx.tcp_close(conn);
                        return;
                    };
                    ctx.tcp_send(conn, ack);
                    if let Ok(secrets) = hs.secrets() {
                        let mut codec = FrameCodec::new(secrets);
                        // msg id 0x00 (HELLO) followed by a payload that is
                        // not a valid HELLO RLP list.
                        let mut frame = rlp::encode(&0u64);
                        frame.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
                        ctx.tcp_send(conn, codec.write_frame(&frame));
                        self.garbage_sent += 1;
                    }
                }
            }
            TcpEvent::Closed { conn } => {
                self.bufs.remove(&conn);
            }
            TcpEvent::Connected { .. } | TcpEvent::ConnectFailed { .. } => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn on_stop(&mut self, _ctx: &mut Ctx) {
        self.bufs.clear();
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ---------------------------------------------------------------------
// Wrong genesis
// ---------------------------------------------------------------------

/// A fully protocol-conformant peer on the wrong chain.
///
/// Handshake and HELLO succeed, but its eth STATUS carries a bogus
/// genesis hash — the paper's "other Ethereum network" population
/// (§5.1), which NodeFinder must count as responsive-but-incompatible
/// rather than Mainnet.
pub struct WrongGenesis {
    key: SecretKey,
    disc: Announcer,
    conns: BTreeMap<ConnId, PeerConn>,
    /// The genesis hash to claim.
    pub genesis: [u8; 32],
    /// STATUS messages sent.
    pub statuses_sent: u64,
}

impl WrongGenesis {
    /// Build with an identity and bootstrap endpoints to announce to.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> WrongGenesis {
        WrongGenesis {
            key,
            disc: Announcer::new(key, bootstrap),
            conns: BTreeMap::new(),
            genesis: [0xEE; 32],
            statuses_sent: 0,
        }
    }

    /// The adversary's identity.
    pub fn node_id(&self) -> NodeId {
        self.disc.node_id()
    }

    fn local_hello(&self, addr: HostAddr) -> Hello {
        Hello {
            p2p_version: P2P_VERSION,
            client_id: "Geth/v1.8.2-othernet/linux-amd64/go1.9".into(),
            capabilities: vec![Capability::eth63()],
            listen_port: addr.port,
            node_id: self.node_id(),
        }
    }

    fn status(&self) -> Status {
        Status {
            protocol_version: 63,
            network_id: 1,
            total_difficulty: 17,
            best_hash: self.genesis,
            genesis_hash: self.genesis,
        }
    }
}

impl Host for WrongGenesis {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.disc.on_start(ctx);
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        self.disc.on_udp(ctx, from, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        match event {
            TcpEvent::Incoming { conn, .. } => {
                let hello = self.local_hello(ctx.local_addr());
                self.conns
                    .insert(conn, PeerConn::accepted(conn, hello, ctx.now_ms));
            }
            TcpEvent::Data { conn, bytes } => {
                let key = self.key;
                let Some(pc) = self.conns.get_mut(&conn) else {
                    return;
                };
                let (events, out) = pc.on_data(ctx.rng(), &key, &bytes);
                for f in out {
                    ctx.tcp_send(conn, f);
                }
                for e in events {
                    match e {
                        WireEvent::Hello { shared, .. }
                            if shared.iter().any(|c| c.name == "eth") =>
                        {
                            let st = self.status();
                            if let Some(pc) = self.conns.get_mut(&conn) {
                                let frames = pc.send_eth(&EthMessage::Status(st));
                                if !frames.is_empty() {
                                    self.statuses_sent += 1;
                                }
                                for f in frames {
                                    ctx.tcp_send(conn, f);
                                }
                            }
                        }
                        WireEvent::Disconnected(_) | WireEvent::ProtocolError(_) => {
                            ctx.tcp_close(conn);
                            self.conns.remove(&conn);
                            return;
                        }
                        _ => {}
                    }
                }
                if self.conns.get(&conn).map(|p| p.is_dead()).unwrap_or(false) {
                    ctx.tcp_close(conn);
                    self.conns.remove(&conn);
                }
            }
            TcpEvent::Closed { conn } => {
                self.conns.remove(&conn);
            }
            TcpEvent::Connected { .. } | TcpEvent::ConnectFailed { .. } => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn on_stop(&mut self, _ctx: &mut Ctx) {
        self.conns.clear();
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ---------------------------------------------------------------------
// Discv4 tarpit
// ---------------------------------------------------------------------

/// Answers FINDNODE with floods of fake neighbours.
///
/// Every record points at a TEST-NET address that either doesn't exist
/// or refuses connections, so the crawler's dial queue fills with
/// discovered-but-unconnectable endpoints — the discovery-layer
/// pollution behind the paper's huge discovered-vs-responsive gap
/// (Figs. 6–7). The crawler must keep servicing honest peers while its
/// backoff/penalty machinery absorbs the junk.
pub struct Tarpit {
    disc: Announcer,
    /// Fake records per FINDNODE (split into 12-per-packet NEIGHBORS).
    pub fakes_per_query: usize,
    /// Total fake records announced.
    pub fakes_sent: u64,
    /// FINDNODE queries served.
    pub queries_served: u64,
    counter: u64,
}

impl Tarpit {
    /// Build with an identity and bootstrap endpoints to announce to.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> Tarpit {
        Tarpit {
            disc: Announcer::new(key, bootstrap),
            fakes_per_query: 48,
            fakes_sent: 0,
            queries_served: 0,
            counter: 0,
        }
    }

    /// The adversary's identity.
    pub fn node_id(&self) -> NodeId {
        self.disc.node_id()
    }

    /// Deterministic fake record #n: a hash-derived identity on a
    /// TEST-NET-2 (RFC 5737) address.
    fn fake_record(&mut self) -> NodeRecord {
        self.counter += 1;
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(b"tarpit!!");
        seed[8..].copy_from_slice(&self.counter.to_be_bytes());
        let a = keccak256(&seed);
        let b = keccak256(&a);
        let mut id = [0u8; 64];
        id[..32].copy_from_slice(&a);
        id[32..].copy_from_slice(&b);
        let ip = Ipv4Addr::new(198, 51, 100, (self.counter % 250) as u8 + 1);
        NodeRecord::new(NodeId(id), Endpoint::new(ip, 30303))
    }
}

impl Host for Tarpit {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.disc.on_start(ctx);
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        let Some((_, packet)) = self.disc.on_udp(ctx, from, datagram) else {
            return;
        };
        if let Packet::FindNode { .. } = packet {
            self.queries_served += 1;
            let mut remaining = self.fakes_per_query;
            while remaining > 0 {
                let n = remaining.min(MAX_NEIGHBORS_PER_PACKET);
                let nodes: Vec<NodeRecord> = (0..n).map(|_| self.fake_record()).collect();
                self.fakes_sent += nodes.len() as u64;
                let neighbors = Packet::Neighbors {
                    nodes,
                    expiration: Announcer::fresh_expiration(ctx.now_ms),
                };
                self.disc.send(ctx, from, &neighbors);
                remaining -= n;
            }
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        // The tarpit itself never talks DEVp2p: drop incoming dials.
        if let TcpEvent::Incoming { conn, .. } = event {
            ctx.tcp_close(conn);
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

// ---------------------------------------------------------------------
// Reset after N bytes
// ---------------------------------------------------------------------

/// Accepts TCP, then abortively closes once N bytes have arrived.
///
/// With the default threshold the close lands mid-auth, so the crawler
/// observes an established-then-reset connection with no authenticated
/// identity — the remote-reset failure class.
pub struct ResetAfterN {
    disc: Announcer,
    /// Bytes tolerated before the reset.
    pub threshold: usize,
    received: BTreeMap<ConnId, usize>,
    /// Connections reset.
    pub resets: u64,
}

impl ResetAfterN {
    /// Build with an identity and bootstrap endpoints to announce to.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> ResetAfterN {
        ResetAfterN {
            disc: Announcer::new(key, bootstrap),
            threshold: 100,
            received: BTreeMap::new(),
            resets: 0,
        }
    }

    /// The adversary's identity.
    pub fn node_id(&self) -> NodeId {
        self.disc.node_id()
    }
}

impl Host for ResetAfterN {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.disc.on_start(ctx);
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        self.disc.on_udp(ctx, from, datagram);
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        match event {
            TcpEvent::Incoming { conn, .. } => {
                self.received.insert(conn, 0);
            }
            TcpEvent::Data { conn, bytes } => {
                let Some(total) = self.received.get_mut(&conn) else {
                    return;
                };
                *total += bytes.len();
                if *total >= self.threshold {
                    ctx.tcp_close(conn);
                    self.received.remove(&conn);
                    self.resets += 1;
                }
            }
            TcpEvent::Closed { conn } => {
                self.received.remove(&conn);
            }
            TcpEvent::Connected { .. } | TcpEvent::ConnectFailed { .. } => {}
        }
    }

    fn on_timer(&mut self, _ctx: &mut Ctx, _token: u64) {}

    fn on_stop(&mut self, _ctx: &mut Ctx) {
        self.received.clear();
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(b: u8) -> SecretKey {
        SecretKey::from_bytes(&[b; 32]).expect("valid key bytes")
    }

    #[test]
    fn tarpit_fakes_are_deterministic_and_distinct() {
        let mut t1 = Tarpit::new(key(1), vec![]);
        let mut t2 = Tarpit::new(key(1), vec![]);
        let a: Vec<NodeRecord> = (0..20).map(|_| t1.fake_record()).collect();
        let b: Vec<NodeRecord> = (0..20).map(|_| t2.fake_record()).collect();
        assert_eq!(a, b);
        let ids: std::collections::BTreeSet<NodeId> = a.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), 20, "fake identities must be distinct");
        for r in &a {
            assert_eq!(r.endpoint.ip.octets()[..3], [198, 51, 100]);
        }
    }

    #[test]
    fn slow_loris_acks_a_real_auth() {
        // Drive the handshake message framing directly: an initiator's
        // auth must elicit exactly one valid ack and nothing more.
        let mut rng = StdRng::seed_from_u64(42);
        let loris_key = key(2);
        let dialer_key = key(3);
        let mut hs = Handshake::new(Role::Initiator, dialer_key, &mut rng);
        let auth = hs
            .write_auth(&mut rng, &NodeId::from_secret_key(&loris_key))
            .expect("auth encodes");

        let mut buf = BytesMut::new();
        buf.extend_from_slice(&auth);
        let msg = take_handshake_msg(&mut buf).expect("complete auth frames");
        let mut recipient = Handshake::new(Role::Recipient, loris_key, &mut rng);
        let ack = recipient.read_auth(&mut rng, &msg).expect("auth accepted");
        hs.read_ack(&ack).expect("ack accepted");
        assert!(buf.is_empty());
    }

    #[test]
    fn handshake_framing_waits_for_full_message() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0x01]);
        assert!(take_handshake_msg(&mut buf).is_none());
        buf.extend_from_slice(&[0x00]); // length prefix 0x0100 = 256
        assert!(take_handshake_msg(&mut buf).is_none());
        buf.extend_from_slice(&vec![0u8; 256]);
        let msg = take_handshake_msg(&mut buf).expect("complete");
        assert_eq!(msg.len(), 258);
        assert!(buf.is_empty());
    }

    #[test]
    fn wrong_genesis_status_is_incompatible_with_mainnet() {
        let w = WrongGenesis::new(key(4), vec![]);
        let st = w.status();
        let chain = ethwire::Chain::new(ethwire::ChainConfig::mainnet(), 100);
        let mainnet = Status {
            protocol_version: 63,
            network_id: chain.config.network_id,
            total_difficulty: chain.total_difficulty(),
            best_hash: chain.best_hash(),
            genesis_hash: chain.config.genesis_hash,
        };
        assert!(!mainnet.compatible(&st));
    }
}
