//! Byzantine peers for the deterministic simulator.
//!
//! The paper's NodeFinder ran against the live Ethereum network, where the
//! overwhelming majority of discovered endpoints never complete a
//! handshake, stall mid-session, or speak the wrong protocol (§4.2). This
//! crate reproduces those populations as [`netsim::Host`] implementations
//! so the crawler's degradation behaviour is testable offline:
//!
//! * [`SlowLoris`] — answers the RLPx `auth` with a valid `ack`, then
//!   stalls forever (the crawler's HELLO stage must time out);
//! * [`GarbageHello`] — completes the RLPx handshake, then sends a framed
//!   garbage HELLO (exercises `devp2p::session` error paths);
//! * [`WrongGenesis`] — full honest handshake + HELLO, but its eth STATUS
//!   carries a bogus genesis hash (the paper's "other Ethereum network"
//!   population, §5.1);
//! * [`Tarpit`] — answers discv4 FINDNODE with floods of fake neighbours
//!   (discovery-layer pollution: thousands of dialable-but-dead records);
//! * [`ResetAfterN`] — accepts TCP, then closes abortively once N bytes
//!   have arrived (mid-handshake connection resets).
//!
//! Every behaviour announces itself via [`disc::Announcer`], a minimal
//! discv4 responder that bonds with bootstrap nodes so crawlers actually
//! find the adversary. All randomness comes from `Ctx::rng`; nothing here
//! reads a wall clock, so adversarial worlds stay byte-reproducible.
#![forbid(unsafe_code)]

pub mod disc;
pub mod hosts;

pub use disc::Announcer;
pub use hosts::{GarbageHello, ResetAfterN, SlowLoris, Tarpit, WrongGenesis};
