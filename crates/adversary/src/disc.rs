//! A minimal discv4 responder for adversarial hosts.
//!
//! Adversaries must be *discoverable* — the crawler only dials endpoints
//! that surface through the discovery overlay — but they don't need a full
//! routing table. [`Announcer`] pings its bootstrap list on start (so
//! honest tables learn the adversary's record) and answers every incoming
//! PING with a correctly-linked PONG (so the crawler's endpoint proof
//! succeeds and the dial proceeds). Everything else is handed back to the
//! owning host for behaviour-specific handling.

use discv4::{decode_packet, encode_packet, Packet};
use enode::{Endpoint, NodeId};
use ethcrypto::secp256k1::SecretKey;
use netsim::{Ctx, HostAddr};

/// Expiration slack on outgoing packets, in seconds (mirrors Geth's 20s).
const EXPIRATION_SLACK_S: u64 = 20;

/// Minimal discv4 presence: announce to bootstraps, answer PINGs.
pub struct Announcer {
    key: SecretKey,
    bootstrap: Vec<Endpoint>,
    /// PINGs answered.
    pub pings_received: u64,
    /// PONGs sent (== pings received unless encoding fails).
    pub pongs_sent: u64,
}

impl Announcer {
    /// Build an announcer that will ping `bootstrap` on start.
    pub fn new(key: SecretKey, bootstrap: Vec<Endpoint>) -> Announcer {
        Announcer {
            key,
            bootstrap,
            pings_received: 0,
            pongs_sent: 0,
        }
    }

    /// The adversary's node identity.
    pub fn node_id(&self) -> NodeId {
        NodeId::from_secret_key(&self.key)
    }

    fn endpoint(addr: HostAddr) -> Endpoint {
        Endpoint {
            ip: addr.ip,
            udp_port: addr.port,
            tcp_port: addr.port,
        }
    }

    fn expiration(now_ms: u64) -> u64 {
        now_ms / 1000 + EXPIRATION_SLACK_S
    }

    /// Announce to every bootstrap endpoint (call from `Host::on_start`).
    pub fn on_start(&mut self, ctx: &mut Ctx) {
        let from = Self::endpoint(ctx.local_addr());
        let targets = self.bootstrap.clone();
        for to in targets {
            let ping = Packet::Ping {
                version: 4,
                from,
                to,
                expiration: Self::expiration(ctx.now_ms),
            };
            let (datagram, _) = encode_packet(&self.key, &ping);
            ctx.send_udp(HostAddr::new(to.ip, to.udp_port), datagram);
        }
    }

    /// Handle a datagram: PINGs are answered in place; every successfully
    /// decoded packet is returned for behaviour-specific handling.
    pub fn on_udp(
        &mut self,
        ctx: &mut Ctx,
        from: HostAddr,
        datagram: &[u8],
    ) -> Option<(NodeId, Packet)> {
        let (sender, packet, hash) = decode_packet(datagram).ok()?;
        if let Packet::Ping { from: from_ep, .. } = &packet {
            self.pings_received += 1;
            let to = Endpoint {
                ip: from.ip,
                udp_port: from.port,
                tcp_port: from_ep.tcp_port,
            };
            let pong = Packet::Pong {
                to,
                ping_hash: hash,
                expiration: Self::expiration(ctx.now_ms),
            };
            let (reply, _) = encode_packet(&self.key, &pong);
            ctx.send_udp(from, reply);
            self.pongs_sent += 1;
        }
        Some((sender, packet))
    }

    /// Sign and send a packet to `to` (used by tarpit floods).
    pub fn send(&self, ctx: &mut Ctx, to: HostAddr, packet: &Packet) {
        let (datagram, _) = encode_packet(&self.key, packet);
        ctx.send_udp(to, datagram);
    }

    /// The expiration a freshly sent packet should carry.
    pub fn fresh_expiration(now_ms: u64) -> u64 {
        Self::expiration(now_ms)
    }
}
