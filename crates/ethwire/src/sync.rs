//! Blockchain synchronization drivers: **full sync** and the eth/63
//! **fast sync** the paper describes in §2.3.
//!
//! Full sync downloads headers + bodies and performs *blockchain state
//! validation* (sequentially executing every transaction) for the whole
//! chain. Fast sync picks a **pivot** close to the head, performs cheap
//! *block header validation* plus receipt retrieval up to the pivot,
//! downloads the state database at the pivot via GET_NODE_DATA, and only
//! fully validates from the pivot onward — "improving syncing times by
//! approximately an order of magnitude" [54].
//!
//! The driver is sans-IO like the rest of the stack: it emits
//! [`EthMessage`] requests and consumes responses. Validation cost is
//! modeled in abstract *work units* so the full-vs-fast comparison is
//! measurable without executing a real EVM (DESIGN.md's substitution
//! rule), with the unit ratios taken from the paper's narrative: state
//! validation ≫ receipt checking > header checking.

use crate::chain::BlockHeader;
use crate::messages::{BlockId, EthMessage};

/// Work units charged per block for each validation flavour. The absolute
/// numbers are arbitrary; the *ratios* encode "significantly more
/// computation and time" (§2.3).
pub mod work {
    /// Block header validation (parent hash, number, timestamp, difficulty,
    /// gas limit, PoW check).
    pub const HEADER_CHECK: u64 = 1;
    /// Receipt-based fast validation (gas consumption, logs, status).
    pub const RECEIPT_CHECK: u64 = 2;
    /// Full state validation: execute every transaction, update the state
    /// trie.
    pub const STATE_VALIDATION: u64 = 40;
    /// Downloading one state-trie chunk at the pivot.
    pub const STATE_CHUNK: u64 = 4;
}

/// Sync strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Validate everything from genesis.
    Full,
    /// Header-validate to a pivot, download state there, full-validate the
    /// tail (eth/63).
    Fast,
}

/// Where the driver is in its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPhase {
    /// Downloading the header chain.
    Headers,
    /// Downloading block bodies.
    Bodies,
    /// (Fast only) downloading receipts up to the pivot.
    Receipts,
    /// (Fast only) downloading the pivot state via GET_NODE_DATA.
    StateDownload,
    /// Fully validating the post-pivot tail (fast) or everything (full).
    Validation,
    /// Synced.
    Done,
}

/// Cumulative effort bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncStats {
    /// Headers fetched.
    pub headers: u64,
    /// Bodies fetched.
    pub bodies: u64,
    /// Receipt sets fetched.
    pub receipts: u64,
    /// State chunks fetched.
    pub state_chunks: u64,
    /// Request messages emitted.
    pub requests: u64,
    /// Total validation + download work units spent.
    pub work_units: u64,
}

/// A synchronization run toward `target_head`.
#[derive(Debug)]
pub struct SyncDriver {
    mode: SyncMode,
    target_head: u64,
    pivot: u64,
    batch: u64,
    phase: SyncPhase,
    cursor: u64,
    state_chunks_left: u64,
    stats: SyncStats,
}

impl SyncDriver {
    /// Start a sync toward `target_head`. `batch` is the per-request item
    /// count (Geth uses 192 for headers); fast sync puts the pivot
    /// `pivot_distance` blocks before the head (Geth: 64).
    pub fn new(mode: SyncMode, target_head: u64, batch: u64, pivot_distance: u64) -> SyncDriver {
        let pivot = match mode {
            SyncMode::Full => 0,
            SyncMode::Fast => target_head.saturating_sub(pivot_distance),
        };
        // State size grows with chain height; model it coarsely as one
        // chunk per 10k blocks plus a base.
        let state_chunks_left = match mode {
            SyncMode::Full => 0,
            SyncMode::Fast => 16 + pivot / 10_000,
        };
        SyncDriver {
            mode,
            target_head,
            pivot,
            batch: batch.max(1),
            phase: SyncPhase::Headers,
            cursor: 0,
            state_chunks_left,
            stats: SyncStats::default(),
        }
    }

    /// Current phase.
    pub fn phase(&self) -> SyncPhase {
        self.phase
    }

    /// Whether the sync completed.
    pub fn is_done(&self) -> bool {
        self.phase == SyncPhase::Done
    }

    /// Effort so far.
    pub fn stats(&self) -> SyncStats {
        self.stats
    }

    /// The pivot block (0 for full sync).
    pub fn pivot(&self) -> u64 {
        self.pivot
    }

    /// Produce the next request to send, if any. One outstanding request
    /// at a time keeps the model simple; concurrency is the transport's
    /// business.
    pub fn next_request(&mut self) -> Option<EthMessage> {
        let req = match self.phase {
            SyncPhase::Headers => Some(EthMessage::GetBlockHeaders {
                start: BlockId::Number(self.cursor),
                max_headers: self.batch.min(self.target_head - self.cursor + 1),
                skip: 0,
                reverse: false,
            }),
            SyncPhase::Bodies => {
                let n = self.batch.min(self.target_head - self.cursor + 1) as usize;
                Some(EthMessage::GetBlockBodies(vec![[0u8; 32]; n]))
            }
            SyncPhase::Receipts => {
                let n = self.batch.min(self.pivot.saturating_sub(self.cursor) + 1) as usize;
                Some(EthMessage::GetReceipts(vec![[0u8; 32]; n.max(1)]))
            }
            SyncPhase::StateDownload => {
                let n = self.batch.min(self.state_chunks_left) as usize;
                Some(EthMessage::GetNodeData(vec![[0u8; 32]; n.max(1)]))
            }
            SyncPhase::Validation | SyncPhase::Done => None,
        };
        if req.is_some() {
            self.stats.requests += 1;
        }
        req
    }

    /// Consume a response; advances phases and charges work units.
    pub fn on_response(&mut self, msg: &EthMessage) {
        match (self.phase, msg) {
            (SyncPhase::Headers, EthMessage::BlockHeaders(headers)) => {
                self.stats.headers += headers.len() as u64;
                // Header validation happens as headers arrive, under both
                // modes (§2.3 block header validation).
                self.stats.work_units += headers.len() as u64 * work::HEADER_CHECK;
                self.cursor += headers.len() as u64;
                if self.cursor > self.target_head || headers.is_empty() {
                    self.cursor = 0;
                    self.phase = SyncPhase::Bodies;
                }
            }
            (SyncPhase::Bodies, EthMessage::BlockBodies(bodies)) => {
                self.stats.bodies += bodies.len() as u64;
                self.cursor += bodies.len() as u64;
                if self.cursor > self.target_head || bodies.is_empty() {
                    self.cursor = 0;
                    self.phase = match self.mode {
                        SyncMode::Full => SyncPhase::Validation,
                        SyncMode::Fast => SyncPhase::Receipts,
                    };
                }
            }
            (SyncPhase::Receipts, EthMessage::Receipts(receipts)) => {
                self.stats.receipts += receipts.len() as u64;
                self.stats.work_units += receipts.len() as u64 * work::RECEIPT_CHECK;
                self.cursor += receipts.len() as u64;
                if self.cursor >= self.pivot || receipts.is_empty() {
                    self.phase = SyncPhase::StateDownload;
                }
            }
            (SyncPhase::StateDownload, EthMessage::NodeData(chunks)) => {
                let got = (chunks.len() as u64).min(self.state_chunks_left);
                self.stats.state_chunks += got;
                self.stats.work_units += got * work::STATE_CHUNK;
                self.state_chunks_left -= got;
                if self.state_chunks_left == 0 {
                    self.phase = SyncPhase::Validation;
                }
            }
            _ => {}
        }
        if self.phase == SyncPhase::Validation {
            // Validation is local; charge it all at once and finish.
            let full_range = match self.mode {
                SyncMode::Full => self.target_head + 1,
                SyncMode::Fast => self.target_head - self.pivot + 1,
            };
            self.stats.work_units += full_range * work::STATE_VALIDATION;
            self.phase = SyncPhase::Done;
        }
    }

    /// Convenience: run the whole sync against a header-serving closure,
    /// returning the final stats. `serve` answers each request like a
    /// well-behaved peer.
    pub fn run_to_completion<F>(&mut self, mut serve: F) -> SyncStats
    where
        F: FnMut(&EthMessage) -> EthMessage,
    {
        let mut guard = 0;
        while !self.is_done() {
            guard += 1;
            assert!(guard < 1_000_000, "sync did not converge");
            match self.next_request() {
                Some(req) => {
                    let resp = serve(&req);
                    self.on_response(&resp);
                }
                None => break,
            }
        }
        self.stats
    }
}

/// A well-behaved serving peer for [`SyncDriver::run_to_completion`],
/// backed by a [`crate::chain::Chain`].
pub fn serve_from_chain(chain: &crate::chain::Chain, req: &EthMessage) -> EthMessage {
    match req {
        EthMessage::GetBlockHeaders {
            start,
            max_headers,
            skip,
            reverse,
        } => {
            let start_num = match start {
                BlockId::Number(n) => *n,
                BlockId::Hash(_) => chain.head,
            };
            EthMessage::BlockHeaders(chain.headers(
                start_num,
                *max_headers as usize,
                *skip,
                *reverse,
            ))
        }
        EthMessage::GetBlockBodies(hashes) => {
            EthMessage::BlockBodies(vec![vec![0u8; 128]; hashes.len()])
        }
        EthMessage::GetReceipts(hashes) => EthMessage::Receipts(vec![vec![0u8; 64]; hashes.len()]),
        EthMessage::GetNodeData(hashes) => EthMessage::NodeData(vec![vec![0u8; 256]; hashes.len()]),
        other => EthMessage::BlockHeaders(Vec::new()).clone_if_needed(other),
    }
}

impl EthMessage {
    // Tiny helper so serve_from_chain stays total without panicking on
    // unexpected requests.
    fn clone_if_needed(self, _other: &EthMessage) -> EthMessage {
        self
    }
}

/// Extract an ordered header list for external verification, mirroring the
/// initial-download flow (§2.3): headers must be contiguous.
pub fn headers_contiguous(headers: &[BlockHeader]) -> bool {
    headers.windows(2).all(|w| w[1].number == w[0].number + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, ChainConfig};

    fn run(mode: SyncMode, head: u64) -> SyncStats {
        let chain = Chain::new(ChainConfig::mainnet(), head);
        let mut driver = SyncDriver::new(mode, head, 192, 64);
        driver.run_to_completion(|req| serve_from_chain(&chain, req))
    }

    #[test]
    fn full_sync_completes_and_counts() {
        let stats = run(SyncMode::Full, 5_000);
        assert_eq!(stats.headers, 5_001);
        assert_eq!(stats.bodies, 5_001);
        assert_eq!(stats.receipts, 0);
        assert_eq!(stats.state_chunks, 0);
        // all blocks fully validated
        assert!(stats.work_units >= 5_001 * work::STATE_VALIDATION);
    }

    #[test]
    fn fast_sync_completes_with_pivot() {
        let head = 5_000;
        let chain = Chain::new(ChainConfig::mainnet(), head);
        let mut driver = SyncDriver::new(SyncMode::Fast, head, 192, 64);
        assert_eq!(driver.pivot(), head - 64);
        let stats = driver.run_to_completion(|req| serve_from_chain(&chain, req));
        assert!(driver.is_done());
        assert_eq!(stats.headers, head + 1);
        assert!(stats.receipts > 0, "fast sync fetches receipts");
        assert!(stats.state_chunks > 0, "fast sync downloads pivot state");
    }

    #[test]
    fn fast_sync_is_order_of_magnitude_cheaper() {
        // The §2.3 claim: fast sync improves syncing (validation work) by
        // roughly an order of magnitude on a long chain.
        let head = 200_000;
        let full = run(SyncMode::Full, head);
        let fast = run(SyncMode::Fast, head);
        let ratio = full.work_units as f64 / fast.work_units as f64;
        assert!(
            ratio > 8.0,
            "expected ≈10x, got {ratio:.1} (full {} vs fast {})",
            full.work_units,
            fast.work_units
        );
    }

    #[test]
    fn phases_progress_in_order() {
        let head = 1_000;
        let chain = Chain::new(ChainConfig::mainnet(), head);
        let mut driver = SyncDriver::new(SyncMode::Fast, head, 100, 64);
        let mut seen = vec![driver.phase()];
        while !driver.is_done() {
            let req = driver.next_request().expect("request while not done");
            let resp = serve_from_chain(&chain, &req);
            driver.on_response(&resp);
            if seen.last() != Some(&driver.phase()) {
                seen.push(driver.phase());
            }
        }
        assert_eq!(
            seen,
            vec![
                SyncPhase::Headers,
                SyncPhase::Bodies,
                SyncPhase::Receipts,
                SyncPhase::StateDownload,
                SyncPhase::Done
            ]
        );
    }

    #[test]
    fn contiguity_check() {
        let chain = Chain::new(ChainConfig::mainnet(), 100);
        let hs = chain.headers(5, 10, 0, false);
        assert!(headers_contiguous(&hs));
        let gappy = chain.headers(5, 10, 1, false);
        assert!(!headers_contiguous(&gappy));
    }

    #[test]
    fn empty_response_terminates_headers_phase() {
        let mut driver = SyncDriver::new(SyncMode::Full, 1_000, 100, 0);
        let _ = driver.next_request();
        driver.on_response(&EthMessage::BlockHeaders(Vec::new()));
        assert_eq!(driver.phase(), SyncPhase::Bodies);
    }
}
