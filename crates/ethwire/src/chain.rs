//! A sparse, deterministic blockchain model.
//!
//! Simulated nodes need to answer STATUS and GET_BLOCK_HEADERS queries for
//! arbitrary heights without materializing millions of headers. `Chain`
//! synthesizes any header on demand from `(chain_seed, height)`; headers
//! are self-consistent (each one's `parent_hash` equals the hash of the
//! synthesized parent) and two chains with the same seed agree bit-for-bit,
//! so independently-simulated nodes of one network serve identical data.

use ethcrypto::keccak256;
use rlp::{Rlp, RlpStream};

/// A block header carrying the fields the measurement pipeline actually
/// inspects (§2.3): parent link, height, difficulty, timestamp, miner, gas
/// limit, and the free-form `extra_data` used for DAO-fork detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockHeader {
    /// Hash of the parent block.
    pub parent_hash: [u8; 32],
    /// Block height.
    pub number: u64,
    /// Unix timestamp.
    pub timestamp: u64,
    /// Block difficulty.
    pub difficulty: u64,
    /// Gas limit.
    pub gas_limit: u64,
    /// Miner (coinbase) address, 20 bytes.
    pub miner: [u8; 20],
    /// Extra data — pro-fork blocks carry [`crate::DAO_FORK_EXTRA`] at the
    /// fork height.
    pub extra_data: Vec<u8>,
}

impl BlockHeader {
    /// The header's hash: keccak-256 of its RLP encoding.
    pub fn hash(&self) -> [u8; 32] {
        keccak256(&rlp::encode(self))
    }
}

impl rlp::Encodable for BlockHeader {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.begin_list(7);
        s.append(&self.parent_hash);
        s.append(&self.number);
        s.append(&self.timestamp);
        s.append(&self.difficulty);
        s.append(&self.gas_limit);
        s.append(&self.miner);
        s.append(&self.extra_data.as_slice());
    }
}

impl rlp::Decodable for BlockHeader {
    fn rlp_decode(r: &Rlp<'_>) -> Result<Self, rlp::RlpError> {
        // conformance: strict -- header layout is consensus-fixed at 7 fields; a count mismatch means corruption, not EIP-8 version skew
        if r.item_count()? != 7 {
            return Err(rlp::RlpError::Custom("header needs 7 fields"));
        }
        Ok(BlockHeader {
            parent_hash: r.at(0)?.as_array()?,
            number: r.at(1)?.as_val()?,
            timestamp: r.at(2)?.as_val()?,
            difficulty: r.at(3)?.as_val()?,
            gas_limit: r.at(4)?.as_val()?,
            miner: r.at(5)?.as_array()?,
            extra_data: r.at(6)?.as_val()?,
        })
    }
}

impl rlp::EncodableListElem for BlockHeader {}
impl rlp::DecodableListElem for BlockHeader {}

/// Static description of a blockchain a node can follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainConfig {
    /// Network ID carried in STATUS.
    pub network_id: u64,
    /// The genesis hash *advertised* in STATUS. Decoupled from the
    /// synthesized header chain (see module docs).
    pub genesis_hash: [u8; 32],
    /// Seed making this chain's synthesized headers unique. Chains that
    /// must agree (all Mainnet nodes) share a seed.
    pub chain_seed: u64,
    /// Whether this chain adopted the DAO fork (Mainnet yes, Classic no).
    pub dao_fork_support: bool,
}

impl ChainConfig {
    /// The mainstream Ethereum chain.
    pub fn mainnet() -> ChainConfig {
        ChainConfig {
            network_id: crate::MAINNET_NETWORK_ID,
            genesis_hash: crate::MAINNET_GENESIS,
            chain_seed: 0x006d_6169_6e6e_6574, // "mainnet"
            dao_fork_support: true,
        }
    }

    /// Ethereum Classic: same genesis, same network id, no DAO fork.
    pub fn classic() -> ChainConfig {
        ChainConfig {
            network_id: crate::MAINNET_NETWORK_ID,
            genesis_hash: crate::MAINNET_GENESIS,
            chain_seed: 0x0063_6c61_7373_6963, // "classic"
            dao_fork_support: false,
        }
    }

    /// An altcoin or private network with its own genesis.
    pub fn alt(network_id: u64, seed: u64) -> ChainConfig {
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&network_id.to_be_bytes());
        material[8..].copy_from_slice(&seed.to_be_bytes());
        ChainConfig {
            network_id,
            genesis_hash: keccak256(&material),
            chain_seed: seed,
            dao_fork_support: false,
        }
    }
}

/// A node's view of a blockchain: config plus a head height.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// Chain parameters.
    pub config: ChainConfig,
    /// The height this node is synced to (stale nodes lag the network
    /// head — Fig 14 measures exactly this).
    pub head: u64,
}

impl Chain {
    /// A chain view at the given head.
    pub fn new(config: ChainConfig, head: u64) -> Chain {
        Chain { config, head }
    }

    /// Synthesize the header at `number`.
    ///
    /// All fields derive deterministically from `(chain_seed, number)`, so
    /// every node of a network serves bit-identical headers for a height
    /// regardless of when or how it is asked. The `parent_hash` field is a
    /// stable pseudo-link (a pure function of the parent's coordinates, not
    /// the keccak of the parent's full RLP) — true transitive linkage would
    /// make random-height synthesis O(height). Nothing in the measurement
    /// pipeline validates linkage; NodeFinder inspects only `extra_data`
    /// at the DAO height and the head hash.
    pub fn header(&self, number: u64) -> BlockHeader {
        self.make_header(number, self.pseudo_link(number))
    }

    // The stable pseudo parent-hash for the block at `number`.
    fn pseudo_link(&self, number: u64) -> [u8; 32] {
        if number == 0 {
            return [0u8; 32];
        }
        let mut material = [0u8; 16];
        material[..8].copy_from_slice(&self.config.chain_seed.to_be_bytes());
        material[8..].copy_from_slice(&(number - 1).to_be_bytes());
        keccak256(&material)
    }

    fn make_header(&self, number: u64, parent_hash: [u8; 32]) -> BlockHeader {
        let mut miner = [0u8; 20];
        let m = keccak256(&number.to_be_bytes());
        miner.copy_from_slice(&m[..20]);
        let extra_data = if number == crate::DAO_FORK_BLOCK && self.config.dao_fork_support {
            crate::DAO_FORK_EXTRA.to_vec()
        } else {
            Vec::new()
        };
        BlockHeader {
            parent_hash,
            number,
            timestamp: 1_438_269_988 + number * 14, // ~14s block time from genesis era
            difficulty: 131_072 + number * 1_000,
            gas_limit: 8_000_000,
            miner,
            extra_data,
        }
    }

    /// Hash of the head block — the STATUS `bestHash`.
    pub fn best_hash(&self) -> [u8; 32] {
        self.header(self.head).hash()
    }

    /// Cumulative difficulty at the head (sum of the linear-difficulty
    /// schedule in closed form).
    pub fn total_difficulty(&self) -> u128 {
        let n = self.head as u128;
        131_072 * (n + 1) + 1_000 * n * (n + 1) / 2
    }

    /// Serve a GET_BLOCK_HEADERS request: up to `max` headers starting at
    /// `start`, stepping `skip+1`, optionally descending. Heights beyond
    /// the head are not served.
    pub fn headers(&self, start: u64, max: usize, skip: u64, reverse: bool) -> Vec<BlockHeader> {
        let step = skip + 1;
        let mut out = Vec::with_capacity(max.min(1024));
        let mut n = start;
        for _ in 0..max.min(1024) {
            if n > self.head {
                break;
            }
            out.push(self.header(n));
            if reverse {
                match n.checked_sub(step) {
                    Some(next) => n = next,
                    None => break,
                }
            } else {
                n += step;
            }
        }
        out
    }

    /// NodeFinder's DAO check: does this chain's fork-height block carry
    /// the pro-fork marker?
    pub fn supports_dao_fork(&self) -> bool {
        self.head >= crate::DAO_FORK_BLOCK
            && self.header(crate::DAO_FORK_BLOCK).extra_data == crate::DAO_FORK_EXTRA
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_rlp_roundtrip() {
        let chain = Chain::new(ChainConfig::mainnet(), 100);
        let h = chain.header(42);
        let bytes = rlp::encode(&h);
        assert_eq!(rlp::decode::<BlockHeader>(&bytes).unwrap(), h);
    }

    #[test]
    fn headers_deterministic_across_nodes() {
        let a = Chain::new(ChainConfig::mainnet(), 5_000_000);
        let b = Chain::new(ChainConfig::mainnet(), 4_000_000); // different head
        assert_eq!(a.header(1_000_000), b.header(1_000_000));
        assert_eq!(a.header(0), b.header(0));
    }

    #[test]
    fn different_chains_differ() {
        let main = Chain::new(ChainConfig::mainnet(), 100);
        let classic = Chain::new(ChainConfig::classic(), 100);
        assert_ne!(main.header(50).hash(), classic.header(50).hash());
        // but both advertise the same genesis hash!
        assert_eq!(main.config.genesis_hash, classic.config.genesis_hash);
    }

    #[test]
    fn dao_fork_detection() {
        let main = Chain::new(ChainConfig::mainnet(), crate::DAO_FORK_BLOCK + 10);
        let classic = Chain::new(ChainConfig::classic(), crate::DAO_FORK_BLOCK + 10);
        assert!(main.supports_dao_fork());
        assert!(!classic.supports_dao_fork());
        assert_eq!(
            main.header(crate::DAO_FORK_BLOCK).extra_data,
            crate::DAO_FORK_EXTRA
        );
        assert!(classic.header(crate::DAO_FORK_BLOCK).extra_data.is_empty());
    }

    #[test]
    fn pre_fork_node_cannot_prove_fork() {
        let young = Chain::new(ChainConfig::mainnet(), 1_000);
        assert!(!young.supports_dao_fork());
    }

    #[test]
    fn headers_request_forward() {
        let chain = Chain::new(ChainConfig::mainnet(), 1000);
        let hs = chain.headers(10, 5, 0, false);
        assert_eq!(hs.len(), 5);
        assert_eq!(hs[0].number, 10);
        assert_eq!(hs[4].number, 14);
        // the same heights served again (e.g. to another peer) are identical
        let hs2 = chain.headers(12, 3, 0, false);
        assert_eq!(hs2[0], hs[2]);
        // pseudo-links are stable and distinct per height
        assert_ne!(hs[0].parent_hash, hs[1].parent_hash);
        assert_eq!(chain.header(11).parent_hash, hs[1].parent_hash);
    }

    #[test]
    fn headers_request_with_skip_and_reverse() {
        let chain = Chain::new(ChainConfig::mainnet(), 1000);
        let hs = chain.headers(100, 3, 9, false);
        assert_eq!(
            hs.iter().map(|h| h.number).collect::<Vec<_>>(),
            vec![100, 110, 120]
        );
        let hs = chain.headers(100, 3, 9, true);
        assert_eq!(
            hs.iter().map(|h| h.number).collect::<Vec<_>>(),
            vec![100, 90, 80]
        );
        // reverse past zero stops cleanly
        let hs = chain.headers(5, 10, 9, true);
        assert_eq!(hs.iter().map(|h| h.number).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn headers_beyond_head_not_served() {
        let chain = Chain::new(ChainConfig::mainnet(), 10);
        let hs = chain.headers(8, 10, 0, false);
        assert_eq!(hs.len(), 3); // 8, 9, 10
    }

    #[test]
    fn total_difficulty_monotonic() {
        let c1 = Chain::new(ChainConfig::mainnet(), 100);
        let c2 = Chain::new(ChainConfig::mainnet(), 101);
        assert!(c2.total_difficulty() > c1.total_difficulty());
    }

    #[test]
    fn best_hash_tracks_head() {
        let c1 = Chain::new(ChainConfig::mainnet(), 100);
        let c2 = Chain::new(ChainConfig::mainnet(), 101);
        assert_ne!(c1.best_hash(), c2.best_hash());
        assert_eq!(c1.best_hash(), c1.header(100).hash());
    }

    #[test]
    fn alt_chains_have_distinct_genesis() {
        let a = ChainConfig::alt(2018, 1);
        let b = ChainConfig::alt(2018, 2);
        let c = ChainConfig::alt(99, 1);
        assert_ne!(a.genesis_hash, b.genesis_hash);
        assert_ne!(a.genesis_hash, c.genesis_hash);
        assert_ne!(a.genesis_hash, crate::MAINNET_GENESIS);
    }
}
