//! The Ethereum subprotocol (`eth/62` and `eth/63`) and a lightweight
//! blockchain model.
//!
//! After the DEVp2p HELLO exchange, `eth` peers swap STATUS messages
//! carrying protocol version, network ID, total difficulty, best hash, and
//! genesis hash (§2.3). Nodes on different networks or genesis hashes
//! disconnect — except that Ethereum Mainnet and Ethereum Classic **share**
//! a genesis hash, so telling them apart requires fetching the DAO fork
//! block (1,920,000) and inspecting its `extra_data`, which is exactly what
//! NodeFinder does before hanging up.
//!
//! The [`chain::Chain`] model is sparse: headers are synthesized
//! deterministically on demand rather than stored, which lets a simulated
//! node answer GET_BLOCK_HEADERS for any height without 5.5M headers of
//! state. Every node of a network serves bit-identical headers for a
//! height (parent-hash fields are stable pseudo-links, not transitive
//! hashes — see `chain::Chain::header`), and the *advertised* genesis hash
//! is decoupled so the model can advertise the real Mainnet constant.
#![forbid(unsafe_code)]
// Unit tests may panic on impossible states; production code may not.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chain;
pub mod messages;
pub mod sync;

pub use chain::{BlockHeader, Chain, ChainConfig};
pub use messages::{BlockId, EthMessage, EthMessageError, Status};
pub use sync::{SyncDriver, SyncMode, SyncPhase, SyncStats};

/// The real Ethereum Mainnet genesis hash (`d4e567…cb8fa3`), advertised by
/// both Mainnet and Classic nodes.
pub const MAINNET_GENESIS: [u8; 32] = [
    0xd4, 0xe5, 0x67, 0x40, 0xf8, 0x76, 0xae, 0xf8, 0xc0, 0x10, 0xb8, 0x6a, 0x40, 0xd5, 0xf5, 0x67,
    0x45, 0xa1, 0x18, 0xd0, 0x90, 0x6a, 0x34, 0xe6, 0x9a, 0xec, 0x8c, 0x0d, 0xb1, 0xcb, 0x8f, 0xa3,
];

/// Mainnet network ID.
pub const MAINNET_NETWORK_ID: u64 = 1;

/// Height of the DAO hard fork (July 20th, 2016).
pub const DAO_FORK_BLOCK: u64 = 1_920_000;

/// `extra_data` marker carried by pro-fork blocks at the DAO fork height.
pub const DAO_FORK_EXTRA: &[u8] = b"dao-hard-fork";

/// Height of the Byzantium hard fork; §7.3 finds 141 nodes stuck at
/// 4,370,001 — the first post-fork block.
pub const BYZANTIUM_BLOCK: u64 = 4_370_000;

/// Approximate Mainnet head height during the paper's snapshot window
/// (April 23rd, 2018).
pub const SNAPSHOT_HEAD: u64 = 5_460_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_constant_formats_correctly() {
        let hex: String = MAINNET_GENESIS.iter().map(|b| format!("{b:02x}")).collect();
        assert!(hex.starts_with("d4e56740"));
        assert!(hex.ends_with("b1cb8fa3"));
    }
}
