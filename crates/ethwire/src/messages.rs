//! Ethereum subprotocol messages (eth/62 plus the eth/63 fast-sync set).
//!
//! Message IDs are relative to the capability's DEVp2p window.

use crate::chain::BlockHeader;
use rlp::{Rlp, RlpStream};

/// STATUS payload (§2.3): the first message after the DEVp2p handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Status {
    /// eth protocol version (62 or 63).
    pub protocol_version: u32,
    /// Network ID (1 = Mainnet; 4,076 distinct values were observed).
    pub network_id: u64,
    /// Total difficulty of the node's best chain.
    pub total_difficulty: u128,
    /// Hash of the node's best (most recent) block.
    pub best_hash: [u8; 32],
    /// Hash of the chain's genesis block.
    pub genesis_hash: [u8; 32],
}

/// Identifies the start block of a GET_BLOCK_HEADERS request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockId {
    /// By hash.
    Hash([u8; 32]),
    /// By height.
    Number(u64),
}

/// The eth subprotocol message set.
#[derive(Debug, Clone, PartialEq)]
pub enum EthMessage {
    /// `0x00` — chain state announcement.
    Status(Status),
    /// `0x01` — hashes of newly mined blocks.
    NewBlockHashes(Vec<([u8; 32], u64)>),
    /// `0x02` — transaction gossip; transactions are opaque blobs in this
    /// model (only their count and size matter to the measurements).
    Transactions(Vec<Vec<u8>>),
    /// `0x03` — request headers.
    GetBlockHeaders {
        /// Start block.
        start: BlockId,
        /// Maximum headers wanted.
        max_headers: u64,
        /// Step between headers minus one.
        skip: u64,
        /// Walk toward genesis instead of the head.
        reverse: bool,
    },
    /// `0x04` — headers response.
    BlockHeaders(Vec<BlockHeader>),
    /// `0x05` — request block bodies by hash.
    GetBlockBodies(Vec<[u8; 32]>),
    /// `0x06` — bodies response (opaque in this model).
    BlockBodies(Vec<Vec<u8>>),
    /// `0x07` — full new-block announcement (opaque body + TD).
    NewBlock {
        /// RLP-opaque block blob.
        block: Vec<u8>,
        /// Total difficulty including this block.
        total_difficulty: u128,
    },
    /// `0x0d` (eth/63) — fast-sync state retrieval.
    GetNodeData(Vec<[u8; 32]>),
    /// `0x0e` (eth/63).
    NodeData(Vec<Vec<u8>>),
    /// `0x0f` (eth/63) — fast-sync receipt retrieval.
    GetReceipts(Vec<[u8; 32]>),
    /// `0x10` (eth/63).
    Receipts(Vec<Vec<u8>>),
}

/// eth message codec failures.
#[derive(Debug, Clone, PartialEq)]
pub enum EthMessageError {
    /// RLP failure.
    Rlp(rlp::RlpError),
    /// Unknown relative message id.
    UnknownId(u64),
    /// Structurally invalid payload.
    Malformed(&'static str),
}

impl std::fmt::Display for EthMessageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EthMessageError::Rlp(e) => write!(f, "eth rlp error: {e}"),
            EthMessageError::UnknownId(id) => write!(f, "unknown eth message id {id:#x}"),
            EthMessageError::Malformed(m) => write!(f, "malformed eth message: {m}"),
        }
    }
}

impl std::error::Error for EthMessageError {}

fn rlp_err(e: rlp::RlpError) -> EthMessageError {
    EthMessageError::Rlp(e)
}

impl EthMessage {
    /// Relative message id within the eth capability window.
    pub fn msg_id(&self) -> u64 {
        match self {
            EthMessage::Status(_) => 0x00,
            EthMessage::NewBlockHashes(_) => 0x01,
            EthMessage::Transactions(_) => 0x02,
            EthMessage::GetBlockHeaders { .. } => 0x03,
            EthMessage::BlockHeaders(_) => 0x04,
            EthMessage::GetBlockBodies(_) => 0x05,
            EthMessage::BlockBodies(_) => 0x06,
            EthMessage::NewBlock { .. } => 0x07,
            EthMessage::GetNodeData(_) => 0x0d,
            EthMessage::NodeData(_) => 0x0e,
            EthMessage::GetReceipts(_) => 0x0f,
            EthMessage::Receipts(_) => 0x10,
        }
    }

    /// Encode the payload.
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            EthMessage::Status(st) => {
                let mut s = RlpStream::new_list(5);
                s.append(&st.protocol_version);
                s.append(&st.network_id);
                s.append(&st.total_difficulty);
                s.append(&st.best_hash);
                s.append(&st.genesis_hash);
                s.out()
            }
            EthMessage::NewBlockHashes(entries) => {
                let mut s = RlpStream::new_list(entries.len());
                for (hash, number) in entries {
                    s.begin_list(2);
                    s.append(hash);
                    s.append(number);
                }
                s.out()
            }
            EthMessage::Transactions(txs)
            | EthMessage::BlockBodies(txs)
            | EthMessage::NodeData(txs)
            | EthMessage::Receipts(txs) => {
                let mut s = RlpStream::new_list(txs.len());
                for tx in txs {
                    s.append(&tx.as_slice());
                }
                s.out()
            }
            EthMessage::GetBlockHeaders {
                start,
                max_headers,
                skip,
                reverse,
            } => {
                let mut s = RlpStream::new_list(4);
                match start {
                    BlockId::Hash(h) => s.append(h),
                    BlockId::Number(n) => s.append(n),
                };
                s.append(max_headers);
                s.append(skip);
                s.append(reverse);
                s.out()
            }
            EthMessage::BlockHeaders(headers) => {
                let mut s = RlpStream::new_list(headers.len());
                for h in headers {
                    s.append(h);
                }
                s.out()
            }
            EthMessage::GetBlockBodies(hashes)
            | EthMessage::GetNodeData(hashes)
            | EthMessage::GetReceipts(hashes) => {
                let mut s = RlpStream::new_list(hashes.len());
                for h in hashes {
                    s.append(h);
                }
                s.out()
            }
            EthMessage::NewBlock {
                block,
                total_difficulty,
            } => {
                let mut s = RlpStream::new_list(2);
                s.append(&block.as_slice());
                s.append(total_difficulty);
                s.out()
            }
        }
    }

    /// Decode from a relative id and payload.
    pub fn decode(msg_id: u64, payload: &[u8]) -> Result<EthMessage, EthMessageError> {
        let r = Rlp::new(payload);
        match msg_id {
            0x00 => {
                // Lenient-decode policy (EIP-8 style): >= 5 fields, extras
                // tolerated and counted. See DESIGN.md § Wire conformance.
                let count = r.item_count().map_err(rlp_err)?;
                if count < 5 {
                    return Err(EthMessageError::Malformed("status needs 5 fields"));
                }
                if count > 5 {
                    obs::counter_add("wire.extra.status", 1);
                }
                Ok(EthMessage::Status(Status {
                    protocol_version: r.at(0).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    network_id: r.at(1).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    total_difficulty: r.at(2).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    best_hash: r.at(3).and_then(|i| i.as_array()).map_err(rlp_err)?,
                    genesis_hash: r.at(4).and_then(|i| i.as_array()).map_err(rlp_err)?,
                }))
            }
            0x01 => {
                let mut entries = Vec::new();
                for item in r.iter() {
                    let hash = item.at(0).and_then(|i| i.as_array()).map_err(rlp_err)?;
                    let number = item.at(1).and_then(|i| i.as_val()).map_err(rlp_err)?;
                    entries.push((hash, number));
                }
                Ok(EthMessage::NewBlockHashes(entries))
            }
            0x02 => Ok(EthMessage::Transactions(decode_blob_list(&r)?)),
            0x03 => {
                let count = r.item_count().map_err(rlp_err)?;
                if count < 4 {
                    return Err(EthMessageError::Malformed("getblockheaders needs 4 fields"));
                }
                if count > 4 {
                    obs::counter_add("wire.extra.get_block_headers", 1);
                }
                let origin = r.at(0).map_err(rlp_err)?;
                let data = origin.data().map_err(rlp_err)?;
                let start = if data.len() == 32 {
                    BlockId::Hash(origin.as_array().map_err(rlp_err)?)
                } else {
                    BlockId::Number(origin.as_u64().map_err(rlp_err)?)
                };
                Ok(EthMessage::GetBlockHeaders {
                    start,
                    max_headers: r.at(1).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    skip: r.at(2).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    reverse: r.at(3).and_then(|i| i.as_val()).map_err(rlp_err)?,
                })
            }
            0x04 => Ok(EthMessage::BlockHeaders(r.as_list().map_err(rlp_err)?)),
            0x05 => Ok(EthMessage::GetBlockBodies(decode_hash_list(&r)?)),
            0x06 => Ok(EthMessage::BlockBodies(decode_blob_list(&r)?)),
            0x07 => {
                let count = r.item_count().map_err(rlp_err)?;
                if count < 2 {
                    return Err(EthMessageError::Malformed("newblock needs 2 fields"));
                }
                if count > 2 {
                    obs::counter_add("wire.extra.new_block", 1);
                }
                Ok(EthMessage::NewBlock {
                    block: r.at(0).and_then(|i| i.as_val()).map_err(rlp_err)?,
                    total_difficulty: r.at(1).and_then(|i| i.as_val()).map_err(rlp_err)?,
                })
            }
            0x0d => Ok(EthMessage::GetNodeData(decode_hash_list(&r)?)),
            0x0e => Ok(EthMessage::NodeData(decode_blob_list(&r)?)),
            0x0f => Ok(EthMessage::GetReceipts(decode_hash_list(&r)?)),
            0x10 => Ok(EthMessage::Receipts(decode_blob_list(&r)?)),
            other => Err(EthMessageError::UnknownId(other)),
        }
    }
}

fn decode_blob_list(r: &Rlp<'_>) -> Result<Vec<Vec<u8>>, EthMessageError> {
    let mut out = Vec::new();
    let count = r.item_count().map_err(rlp_err)?;
    out.reserve(count);
    for item in r.iter() {
        out.push(item.data().map_err(rlp_err)?.to_vec());
    }
    Ok(out)
}

fn decode_hash_list(r: &Rlp<'_>) -> Result<Vec<[u8; 32]>, EthMessageError> {
    let mut out = Vec::new();
    let count = r.item_count().map_err(rlp_err)?;
    out.reserve(count);
    for item in r.iter() {
        out.push(item.as_array().map_err(rlp_err)?);
    }
    Ok(out)
}

impl Status {
    /// Whether two STATUS messages describe peers that can stay connected:
    /// same protocol version family, same network, same genesis. The DAO
    /// fork check happens *after* this (it needs a header fetch).
    pub fn compatible(&self, other: &Status) -> bool {
        self.protocol_version == other.protocol_version
            && self.network_id == other.network_id
            && self.genesis_hash == other.genesis_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{Chain, ChainConfig};

    fn status() -> Status {
        Status {
            protocol_version: 63,
            network_id: 1,
            total_difficulty: 3_400_000_000_000_000_000_000u128,
            best_hash: [0xaa; 32],
            genesis_hash: crate::MAINNET_GENESIS,
        }
    }

    fn roundtrip(m: EthMessage) {
        let id = m.msg_id();
        let payload = m.encode_payload();
        assert_eq!(EthMessage::decode(id, &payload).unwrap(), m);
    }

    #[test]
    fn status_roundtrip() {
        roundtrip(EthMessage::Status(status()));
    }

    #[test]
    fn status_with_huge_td_roundtrip() {
        let mut st = status();
        st.total_difficulty = u128::MAX;
        roundtrip(EthMessage::Status(st));
    }

    #[test]
    fn new_block_hashes_roundtrip() {
        roundtrip(EthMessage::NewBlockHashes(vec![
            ([1u8; 32], 100),
            ([2u8; 32], 101),
        ]));
        roundtrip(EthMessage::NewBlockHashes(vec![]));
    }

    #[test]
    fn transactions_roundtrip() {
        roundtrip(EthMessage::Transactions(vec![
            vec![1, 2, 3],
            vec![],
            vec![0xff; 200],
        ]));
    }

    #[test]
    fn get_block_headers_by_number_roundtrip() {
        roundtrip(EthMessage::GetBlockHeaders {
            start: BlockId::Number(1_920_000),
            max_headers: 1,
            skip: 0,
            reverse: false,
        });
    }

    #[test]
    fn get_block_headers_by_hash_roundtrip() {
        roundtrip(EthMessage::GetBlockHeaders {
            start: BlockId::Hash([7u8; 32]),
            max_headers: 192,
            skip: 7,
            reverse: true,
        });
    }

    #[test]
    fn block_headers_roundtrip() {
        let chain = Chain::new(ChainConfig::mainnet(), 100);
        roundtrip(EthMessage::BlockHeaders(chain.headers(10, 5, 0, false)));
    }

    #[test]
    fn fast_sync_messages_roundtrip() {
        roundtrip(EthMessage::GetNodeData(vec![[1u8; 32], [2u8; 32]]));
        roundtrip(EthMessage::NodeData(vec![vec![1], vec![2, 3]]));
        roundtrip(EthMessage::GetReceipts(vec![[3u8; 32]]));
        roundtrip(EthMessage::Receipts(vec![vec![9; 50]]));
    }

    #[test]
    fn new_block_roundtrip() {
        roundtrip(EthMessage::NewBlock {
            block: vec![0xde, 0xad],
            total_difficulty: 12345,
        });
    }

    #[test]
    fn unknown_id_rejected() {
        assert_eq!(
            EthMessage::decode(0x08, &[0xc0]),
            Err(EthMessageError::UnknownId(8))
        );
        assert_eq!(
            EthMessage::decode(0x11, &[0xc0]),
            Err(EthMessageError::UnknownId(0x11))
        );
    }

    #[test]
    fn compatibility_rules() {
        let a = status();
        let mut b = status();
        assert!(a.compatible(&b));
        b.network_id = 2;
        assert!(!a.compatible(&b));
        b = status();
        b.genesis_hash = [0u8; 32];
        assert!(!a.compatible(&b));
        b = status();
        b.protocol_version = 62;
        assert!(!a.compatible(&b));
        // TD and best hash may differ freely
        b = status();
        b.total_difficulty = 1;
        b.best_hash = [9u8; 32];
        assert!(a.compatible(&b));
    }

    #[test]
    fn malformed_status_rejected() {
        let mut s = RlpStream::new_list(2);
        s.append(&63u32).append(&1u64);
        assert!(matches!(
            EthMessage::decode(0x00, &s.out()),
            Err(EthMessageError::Malformed(_))
        ));
    }
}
