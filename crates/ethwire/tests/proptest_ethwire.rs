//! Property tests for the eth subprotocol codec and the chain model.

// Tests assert on impossible-failure paths freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use ethwire::{BlockId, Chain, ChainConfig, EthMessage, Status};
use proptest::prelude::*;

fn arb_hash() -> impl Strategy<Value = [u8; 32]> {
    proptest::array::uniform32(any::<u8>())
}

fn arb_status() -> impl Strategy<Value = Status> {
    (
        any::<u64>(),
        any::<u128>(),
        arb_hash(),
        arb_hash(),
        prop_oneof![Just(62u32), Just(63u32)],
    )
        .prop_map(
            |(network_id, total_difficulty, best_hash, genesis_hash, protocol_version)| Status {
                protocol_version,
                network_id,
                total_difficulty,
                best_hash,
                genesis_hash,
            },
        )
}

proptest! {
    #[test]
    fn status_roundtrip(st in arb_status()) {
        let msg = EthMessage::Status(st);
        let payload = msg.encode_payload();
        prop_assert_eq!(EthMessage::decode(0x00, &payload).unwrap(), msg);
    }

    #[test]
    fn get_headers_roundtrip(by_hash in any::<bool>(), h in arb_hash(), n in any::<u64>(),
                             max in any::<u64>(), skip in any::<u64>(), reverse in any::<bool>()) {
        let start = if by_hash { BlockId::Hash(h) } else { BlockId::Number(n) };
        let msg = EthMessage::GetBlockHeaders { start, max_headers: max, skip, reverse };
        let payload = msg.encode_payload();
        let back = EthMessage::decode(0x03, &payload).unwrap();
        // Number(n) where n happens to encode to 32 bytes cannot exist for
        // u64, so the BlockId discrimination is unambiguous.
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn tx_and_hash_lists_roundtrip(blobs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..12),
                                   hashes in proptest::collection::vec(arb_hash(), 0..12)) {
        let m = EthMessage::Transactions(blobs);
        prop_assert_eq!(EthMessage::decode(0x02, &m.encode_payload()).unwrap(), m);
        let m = EthMessage::GetBlockBodies(hashes);
        prop_assert_eq!(EthMessage::decode(0x05, &m.encode_payload()).unwrap(), m);
    }

    #[test]
    fn decode_never_panics(id in 0u64..0x11, payload in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = EthMessage::decode(id, &payload);
    }

    /// Chain determinism: any two views of the same network serve identical
    /// headers; total difficulty is strictly monotone in head height.
    #[test]
    fn chain_model_properties(head_a in 1u64..1_000_000, head_b in 1u64..1_000_000, q in 0u64..1_000_000) {
        let a = Chain::new(ChainConfig::mainnet(), head_a);
        let b = Chain::new(ChainConfig::mainnet(), head_b);
        let h = q.min(head_a).min(head_b);
        prop_assert_eq!(a.header(h), b.header(h));
        if head_a != head_b {
            prop_assert_ne!(a.best_hash(), b.best_hash());
            prop_assert_ne!(a.total_difficulty(), b.total_difficulty());
            prop_assert_eq!(a.total_difficulty() > b.total_difficulty(), head_a > head_b);
        }
    }

    /// The served header window respects bounds and stepping.
    #[test]
    fn headers_window(head in 10u64..100_000, start in 0u64..100_000,
                      max in 1usize..64, skip in 0u64..10, reverse in any::<bool>()) {
        let chain = Chain::new(ChainConfig::mainnet(), head);
        let hs = chain.headers(start, max, skip, reverse);
        prop_assert!(hs.len() <= max);
        for h in &hs {
            prop_assert!(h.number <= head);
        }
        for w in hs.windows(2) {
            if reverse {
                prop_assert_eq!(w[0].number - w[1].number, skip + 1);
            } else {
                prop_assert_eq!(w[1].number - w[0].number, skip + 1);
            }
        }
    }
}
