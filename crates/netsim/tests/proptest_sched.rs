//! Property test: the timer wheel is observationally equivalent to the
//! `BinaryHeap<Reverse<(at, seq)>>` scheduler it replaced.
//!
//! The engine's determinism guarantee ("same seed ⇒ byte-identical run")
//! rests entirely on the scheduler yielding events in exactly ascending
//! `(at, seq)` order, including under the awkward shapes a live sim
//! produces: bursts of same-`at` events, pushes interleaved between pops
//! at the current time (zero-delay timers), far-future events that sit in
//! the wheel's overflow tree, and `run_until` slices that stop between
//! events. This test drives both schedulers through arbitrary
//! interleavings of those shapes and requires identical pop streams.

use netsim::sched::TimerWheel;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The reference implementation: exactly what the engine used before.
#[derive(Default)]
struct HeapSched {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
}

impl HeapSched {
    fn push(&mut self, at: u64, seq: u64, item: u32) {
        self.heap.push(Reverse((at, seq, item)));
    }

    fn pop_at_most(&mut self, until: u64) -> Option<(u64, u64, u32)> {
        match self.heap.peek() {
            Some(Reverse((at, _, _))) if *at <= until => {
                let Reverse(e) = self.heap.pop().unwrap();
                Some(e)
            }
            _ => None,
        }
    }
}

/// One step of the driver script.
#[derive(Debug, Clone)]
enum Op {
    /// Push an event `delay` ms after the current virtual time.
    Push { delay: u64 },
    /// Drain everything up to `current + span`, advancing time.
    Drain { span: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored prop_oneof! picks uniformly, so weights are expressed
    // by repeating entries.
    prop_oneof![
        // Near-future pushes dominate, like real sim traffic. Delay 0
        // exercises the "push at the time being drained" path.
        (0u64..50).prop_map(|delay| Op::Push { delay }),
        (0u64..50).prop_map(|delay| Op::Push { delay }),
        (0u64..50).prop_map(|delay| Op::Push { delay }),
        // L0-window-crossing and L1-crossing delays.
        (900u64..3_000).prop_map(|delay| Op::Push { delay }),
        (900u64..600_000).prop_map(|delay| Op::Push { delay }),
        // Far-future: beyond the wheel's L1 horizon (2^19 ms), these
        // exercise the overflow BTree and its drain-on-epoch-roll.
        (500_000u64..2_000_000).prop_map(|delay| Op::Push { delay }),
        (0u64..2_000).prop_map(|span| Op::Drain { span }),
        (0u64..2_000).prop_map(|span| Op::Drain { span }),
        (100_000u64..1_500_000).prop_map(|span| Op::Drain { span }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_reference_heap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut wheel = TimerWheel::new();
        let mut heap = HeapSched::default();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut item = 0u32;

        for op in &ops {
            match *op {
                Op::Push { delay } => {
                    wheel.push(now + delay, seq, item);
                    heap.push(now + delay, seq, item);
                    seq += 1;
                    item = item.wrapping_add(1);
                }
                Op::Drain { span } => {
                    let until = now + span;
                    loop {
                        let a = wheel.pop_at_most(until);
                        let b = heap.pop_at_most(until);
                        prop_assert_eq!(a, b, "divergence draining to {}", until);
                        let Some((at, s, _)) = a else { break };
                        now = at;
                        // Like the engine: dispatching may push same-time
                        // follow-ups, which must interleave identically.
                        if s % 5 == 0 {
                            wheel.push(now, seq, item);
                            heap.push(now, seq, item);
                            seq += 1;
                            item = item.wrapping_add(1);
                        }
                    }
                    now = until;
                    prop_assert_eq!(wheel.len(), heap.heap.len());
                }
            }
        }

        // Final total drain: both must empty in the same order.
        loop {
            let a = wheel.pop_at_most(u64::MAX / 2);
            let b = heap.pop_at_most(u64::MAX / 2);
            prop_assert_eq!(a, b, "divergence in final drain");
            if a.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }

    #[test]
    fn same_at_bursts_pop_in_seq_order(
        at in 0u64..5_000,
        burst in 2usize..40,
        interleave_far in any::<bool>(),
    ) {
        let mut wheel = TimerWheel::new();
        for seq in 0..burst as u64 {
            wheel.push(at, seq, seq as u32);
            if interleave_far && seq % 3 == 0 {
                // Far-future noise must not perturb the burst's order.
                wheel.push(at + 1_000_000, 10_000 + seq, 0);
            }
        }
        let mut prev = None;
        for _ in 0..burst {
            let (got_at, got_seq, _) = wheel.pop_at_most(at).expect("burst event missing");
            prop_assert_eq!(got_at, at);
            prop_assert!(prev.is_none_or(|p| got_seq > p), "seq order violated");
            prev = Some(got_seq);
        }
        prop_assert_eq!(wheel.pop_at_most(at), None);
    }
}
