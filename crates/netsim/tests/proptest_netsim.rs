//! Property tests for the simulator: determinism, lifecycle safety, and
//! delivery sanity under arbitrary host/churn configurations.

use netsim::{Ctx, Host, HostAddr, HostMeta, NetSim, Region, SimConfig, TcpEvent};
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A host that chatters: pings a target over UDP on start and echoes.
struct Chatter {
    target: Option<HostAddr>,
    received: Arc<AtomicU64>,
}

impl Host for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if let Some(t) = self.target {
            ctx.send_udp(t, vec![1, 2, 3]);
            ctx.set_timer(5_000, 1);
        }
    }
    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        self.received.fetch_add(1, Ordering::Relaxed);
        if datagram.len() < 16 {
            let mut echo = datagram.to_vec();
            echo.push(0);
            ctx.send_udp(from, echo);
        }
    }
    fn on_tcp(&mut self, _: &mut Ctx, _: TcpEvent) {}
    fn on_timer(&mut self, ctx: &mut Ctx, _: u64) {
        if let Some(t) = self.target {
            ctx.send_udp(t, vec![9]);
            ctx.set_timer(5_000, 1);
        }
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

fn build(seed: u64, n: u8, loss: f64, churn: &[(u8, u64, u64)]) -> (u64, u64, u64) {
    let mut sim = NetSim::new(SimConfig {
        seed,
        udp_loss: loss,
        jitter_ms: 5,
        ..SimConfig::default()
    });
    let received = Arc::new(AtomicU64::new(0));
    let mut hosts = Vec::new();
    for i in 0..n {
        let target = if i == 0 {
            None
        } else {
            Some(HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303))
        };
        let meta = HostMeta {
            country: "US",
            asn: "T",
            region: Region::NorthAmerica,
            reachable: i % 3 != 2, // a third are NATed
        };
        let h = sim.add_host(
            HostAddr::new(Ipv4Addr::new(10, 0, 0, i + 1), 30303),
            meta,
            Box::new(Chatter {
                target,
                received: received.clone(),
            }),
        );
        sim.schedule_start(h, (i as u64) * 100);
        hosts.push(h);
    }
    for (idx, stop, start) in churn {
        let h = hosts[*idx as usize % hosts.len()];
        sim.schedule_stop(h, *stop % 60_000);
        sim.schedule_start(h, (*stop % 60_000) + (*start % 30_000) + 1);
    }
    sim.run_until(90_000);
    let (sent, dropped) = sim.udp_counters();
    (
        sim.events_processed(),
        sent.max(dropped),
        received.load(Ordering::Relaxed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Identical configurations produce identical event/traffic counts; no
    /// panic under arbitrary churn schedules and loss rates.
    #[test]
    fn deterministic_under_churn(seed in any::<u64>(), n in 2u8..12, loss in 0.0f64..0.5,
                                 churn in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 0..6)) {
        let a = build(seed, n, loss, &churn);
        let b = build(seed, n, loss, &churn);
        prop_assert_eq!(a, b);
    }

    /// With zero loss and no churn, every datagram sent to live reachable
    /// hosts is eventually delivered or accounted as dropped (NAT), and
    /// deliveries are nonzero.
    #[test]
    fn conservation(seed in any::<u64>(), n in 3u8..10) {
        let mut sim = NetSim::new(SimConfig { seed, udp_loss: 0.0, jitter_ms: 0, ..SimConfig::default() });
        let received = Arc::new(AtomicU64::new(0));
        let hub = sim.add_host(
            HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
            HostMeta { country: "US", asn: "T", region: Region::NorthAmerica, reachable: true },
            Box::new(Chatter { target: None, received: received.clone() }),
        );
        sim.schedule_start(hub, 0);
        for i in 1..n {
            let h = sim.add_host(
                HostAddr::new(Ipv4Addr::new(10, 0, 0, i + 1), 30303),
                HostMeta { country: "US", asn: "T", region: Region::NorthAmerica, reachable: true },
                Box::new(Chatter {
                    target: Some(HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303)),
                    received: received.clone(),
                }),
            );
            sim.schedule_start(h, 0);
        }
        sim.run_until(30_000);
        let (sent, dropped) = sim.udp_counters();
        prop_assert!(received.load(Ordering::Relaxed) > 0);
        prop_assert_eq!(dropped, 0, "no loss, no NAT drops expected");
        prop_assert!(sent >= (n as u64 - 1));
    }
}
