//! Property tests for the sharded scheduler: for *arbitrary* host→shard
//! assignments, region (latency-matrix) placements, and scripted event
//! interleavings, the sharded dispatch order must equal the single-wheel
//! reference order — including same-instant bursts that land exactly on
//! barrier-epoch boundaries (timers at multiples of the 10 ms lookahead).

use netsim::{Ctx, Host, HostAddr, HostMeta, NetSim, Region, SimConfig, TcpEvent};
use proptest::prelude::*;
use rand::Rng;
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

type Log = Rc<RefCell<Vec<String>>>;

/// A scripted host that logs every event it observes (with timestamps and
/// an RNG draw, so stream divergence is also caught) and generates a mix
/// of traffic: UDP fan-out bursts from timers, request/reply pairs, and a
/// TCP connect/send/close exchange.
struct ScriptHost {
    peers: Vec<HostAddr>,
    timers: Vec<u64>,
    log: Log,
}

impl ScriptHost {
    fn logit(&self, line: String) {
        self.log.borrow_mut().push(line);
    }
}

impl Host for ScriptHost {
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }

    fn on_start(&mut self, ctx: &mut Ctx) {
        let id = ctx.host_id();
        self.logit(format!("{} start h{}", ctx.now_ms, id));
        for (i, t) in self.timers.iter().enumerate() {
            ctx.set_timer(*t, i as u64);
        }
        if let Some(first) = self.peers.first().copied() {
            let conn = ctx.tcp_connect(first);
            self.logit(format!("{} dial h{} conn={}", ctx.now_ms, id, conn));
        }
    }

    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
        let id = ctx.host_id();
        let draw: u32 = ctx.rng().gen_range(0..1_000);
        self.logit(format!(
            "{} udp h{} from {} len={} draw={}",
            ctx.now_ms,
            id,
            from.ip,
            datagram.len(),
            draw
        ));
        // Reply to 3-byte requests with a 4-byte pong (no further reply,
        // so traffic terminates).
        if datagram.len() == 3 {
            ctx.send_udp(from, vec![0u8; 4]);
        }
    }

    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
        let id = ctx.host_id();
        match event {
            TcpEvent::Connected { conn, .. } => {
                self.logit(format!("{} connected h{} conn={}", ctx.now_ms, id, conn));
                ctx.tcp_send(conn, vec![9u8; 16]);
            }
            TcpEvent::ConnectFailed { conn } => {
                self.logit(format!("{} connfail h{} conn={}", ctx.now_ms, id, conn));
            }
            TcpEvent::Incoming { conn, peer } => {
                self.logit(format!(
                    "{} incoming h{} conn={} from {}",
                    ctx.now_ms, id, conn, peer.ip
                ));
            }
            TcpEvent::Data { conn, bytes } => {
                self.logit(format!(
                    "{} data h{} conn={} len={}",
                    ctx.now_ms,
                    id,
                    conn,
                    bytes.len()
                ));
                ctx.tcp_close(conn);
            }
            TcpEvent::Closed { conn } => {
                self.logit(format!("{} closed h{} conn={}", ctx.now_ms, id, conn));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
        let id = ctx.host_id();
        let draw: u32 = ctx.rng().gen_range(0..1_000);
        self.logit(format!(
            "{} timer h{} tok={} draw={}",
            ctx.now_ms, id, token, draw
        ));
        // Same-instant fan-out burst: every peer gets a request datagram
        // stamped with the same send time.
        for p in &self.peers {
            ctx.send_udp(*p, vec![7u8; 3]);
        }
    }
}

/// Per-host script: (raw shard pick, region index, extra timer delays).
type HostScript = (usize, usize, Vec<u64>);

/// Run the scripted world and return the dispatch log. `assign` applies
/// the arbitrary shard assignment; the reference run leaves every host on
/// the single wheel.
fn run_world(seed: u64, hosts: &[HostScript], shards: usize, assign: bool) -> Vec<String> {
    let config = SimConfig {
        seed,
        udp_loss: 0.1,
        jitter_ms: 6,
        shards,
        ..SimConfig::default()
    };
    let mut sim = NetSim::new(config);
    let log: Log = Rc::new(RefCell::new(Vec::new()));
    let addrs: Vec<HostAddr> = (0..hosts.len())
        .map(|i| HostAddr::new(Ipv4Addr::new(10, 0, 0, i as u8 + 1), 30303))
        .collect();
    for (i, (shard_raw, region_idx, extra)) in hosts.iter().enumerate() {
        let peers: Vec<HostAddr> = addrs
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, a)| *a)
            .collect();
        let meta = HostMeta {
            country: "US",
            asn: "Test",
            region: Region::ALL[*region_idx % Region::ALL.len()],
            reachable: true,
        };
        // Fixed timers on the 10 ms lookahead grid (barrier boundaries)
        // plus the arbitrary ones.
        let mut timers = vec![10, 20];
        timers.extend(extra.iter().map(|t| 1 + t % 400));
        let host = sim.add_host(
            addrs[i],
            meta,
            Box::new(ScriptHost {
                peers,
                timers,
                log: Rc::clone(&log),
            }),
        );
        if assign {
            sim.set_host_shard(host, shard_raw % shards);
        }
        // Paired start times: hosts i and i+1 come up at the same instant,
        // exercising same-`at` external-event ordering.
        sim.schedule_start(host, (i as u64 / 2) * 6);
    }
    sim.run_until(1_500);
    let lines = log.borrow().clone();
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary shard assignments replay the single-wheel reference
    /// exactly, event for event, draw for draw.
    #[test]
    fn sharded_dispatch_equals_single_wheel_reference(
        seed in any::<u64>(),
        shards in 1usize..=4,
        hosts in proptest::collection::vec(
            (0usize..4, 0usize..6, proptest::collection::vec(0u64..400, 0..=3)),
            2..=6,
        ),
    ) {
        let reference = run_world(seed, &hosts, 1, false);
        let sharded = run_world(seed, &hosts, shards, true);
        prop_assert!(!reference.is_empty(), "script produced no events");
        prop_assert_eq!(reference, sharded);
    }
}
