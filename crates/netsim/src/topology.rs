//! Geographic and network metadata for simulated hosts.
//!
//! The paper's Figures 12–13 break the Mainnet population down by country
//! and autonomous system. The simulator attaches a [`HostMeta`] to every
//! host; the world generator samples these from the paper's reported
//! marginals, and the latency model derives RTTs from coarse regions.

/// Coarse latency regions. RTTs between regions come from a small matrix
/// approximating 2018 inter-continental latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Region {
    /// North America.
    NorthAmerica = 0,
    /// Europe.
    Europe = 1,
    /// East Asia.
    EastAsia = 2,
    /// Southeast Asia / Oceania.
    SouthAsia = 3,
    /// South America.
    SouthAmerica = 4,
    /// Africa / Middle East.
    Africa = 5,
}

impl Region {
    /// All regions.
    pub const ALL: [Region; 6] = [
        Region::NorthAmerica,
        Region::Europe,
        Region::EastAsia,
        Region::SouthAsia,
        Region::SouthAmerica,
        Region::Africa,
    ];
}

/// One-way base latency in milliseconds between regions (half the typical
/// RTT). Indexed `[from][to]`, symmetric.
const LATENCY_MATRIX_MS: [[u32; 6]; 6] = [
    //  NA   EU   EA   SA   SAm  AF
    [15, 45, 75, 95, 65, 85],    // NA
    [45, 10, 90, 70, 95, 55],    // EU
    [75, 90, 20, 45, 130, 110],  // EA
    [95, 70, 45, 25, 140, 80],   // SA
    [65, 95, 130, 140, 20, 120], // SAm
    [85, 55, 110, 80, 120, 30],  // AF
];

/// One-way latency between two regions, in ms, before jitter.
pub fn latency_between(a: Region, b: Region) -> u32 {
    LATENCY_MATRIX_MS[a as usize][b as usize]
}

/// The minimum one-way link latency over every region pair (including
/// intra-region links). This is the sharded engine's conservative
/// lookahead: any event one host schedules on another is at least this
/// far in the future, so a barrier epoch of this width can dispatch
/// without ever seeing a cross-shard push land behind a shard's cursor.
pub fn min_link_latency_ms() -> u32 {
    let mut min = u32::MAX;
    let mut a = 0;
    while a < LATENCY_MATRIX_MS.len() {
        let mut b = 0;
        while b < LATENCY_MATRIX_MS[a].len() {
            if LATENCY_MATRIX_MS[a][b] < min {
                min = LATENCY_MATRIX_MS[a][b];
            }
            b += 1;
        }
        a += 1;
    }
    min
}

/// Countries that appear in the paper's Figure 12, with their region.
/// (Code, label, region.)
pub const COUNTRIES: [(&str, Region); 16] = [
    ("US", Region::NorthAmerica),
    ("CN", Region::EastAsia),
    ("DE", Region::Europe),
    ("SG", Region::SouthAsia),
    ("KR", Region::EastAsia),
    ("FR", Region::Europe),
    ("CA", Region::NorthAmerica),
    ("RU", Region::Europe),
    ("GB", Region::Europe),
    ("JP", Region::EastAsia),
    ("NL", Region::Europe),
    ("AU", Region::SouthAsia),
    ("BR", Region::SouthAmerica),
    ("IN", Region::SouthAsia),
    ("UA", Region::Europe),
    ("ZA", Region::Africa),
];

/// Look up the region for a country code (defaults to Europe for codes not
/// in the table — the long tail).
pub const REGION_OF_COUNTRY: fn(&str) -> Region = |code| {
    COUNTRIES
        .iter()
        .find(|(c, _)| *c == code)
        .map(|(_, r)| *r)
        .unwrap_or(Region::Europe)
};

/// Static metadata attached to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostMeta {
    /// ISO-ish country code.
    pub country: &'static str,
    /// Autonomous-system label (e.g. `"Amazon"`, `"Comcast"`).
    pub asn: &'static str,
    /// Latency region (usually derived from the country).
    pub region: Region,
    /// Publicly reachable? Unreachable (NATed) hosts only receive
    /// solicited traffic and cannot accept TCP connections.
    pub reachable: bool,
}

impl HostMeta {
    /// A reachable US cloud host — the modal node in Fig 12/13.
    pub fn default_cloud() -> HostMeta {
        HostMeta {
            country: "US",
            asn: "Amazon",
            region: Region::NorthAmerica,
            reachable: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(latency_between(a, b), latency_between(b, a));
            }
        }
    }

    #[test]
    fn intra_region_is_fastest() {
        for a in Region::ALL {
            for b in Region::ALL {
                if a != b {
                    assert!(latency_between(a, a) < latency_between(a, b));
                }
            }
        }
    }

    #[test]
    fn min_link_latency_is_the_matrix_minimum() {
        let mut min = u32::MAX;
        for a in Region::ALL {
            for b in Region::ALL {
                min = min.min(latency_between(a, b));
            }
        }
        assert_eq!(min_link_latency_ms(), min);
        // The sharding lookahead proof in DESIGN.md assumes a strictly
        // positive floor; a zero-latency link would break conservative
        // synchronization.
        assert!(min_link_latency_ms() >= 1);
    }

    #[test]
    fn country_lookup() {
        assert_eq!(REGION_OF_COUNTRY("US"), Region::NorthAmerica);
        assert_eq!(REGION_OF_COUNTRY("CN"), Region::EastAsia);
        assert_eq!(REGION_OF_COUNTRY("XX"), Region::Europe);
    }
}
