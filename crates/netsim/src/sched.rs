//! Hierarchical timer wheel — the engine's event scheduler.
//!
//! The simulator's previous scheduler was a `BinaryHeap<Reverse<Scheduled>>`:
//! every push and pop paid an `O(log n)` sift over a comparison on
//! `(at, seq)`. Discrete-event workloads are overwhelmingly *near-future*
//! (RTT-scale deliveries and second-scale timers), which is exactly the
//! shape a hashed hierarchical timer wheel turns into `O(1)` pushes and
//! amortized-`O(1)` pops:
//!
//! * **L0** — 1024 slots of 1 ms each. An event whose `at` falls inside the
//!   current 1024 ms window indexes a slot directly with `at & 1023`.
//!   Because a slot within one window corresponds to exactly one `at`,
//!   FIFO order within a slot *is* `seq` order (sequence numbers are
//!   assigned in push order).
//! * **L1** — 512 slots of 1024 ms each, covering the next ~8.7 minutes.
//!   A slot holds events for exactly one future L0 window; when the
//!   wheel's cursor enters that window the slot is cascaded into L0.
//! * **Overflow** — everything farther out sits in a `BTreeMap` keyed by
//!   `(at, seq)` and is drained into the wheels when the cursor crosses
//!   into its L1 window.
//!
//! ## Ordering contract
//!
//! [`TimerWheel::pop_at_most`] always yields the *minimum pending*
//! `(at, seq)` key. `seq` keys need not arrive in push order (the sharded
//! engine assigns per-origin keys, so a later push may carry a smaller
//! key): an L0 slot keeps its entries sorted by binary-search insertion,
//! an L1 slot is cascaded exactly once — on cursor entry, *before* any
//! direct push can target that window — and the overflow drain walks its
//! `BTreeMap` in `(at, seq)` order. When every key is pushed in ascending
//! order this degenerates to the classic FIFO wheel and pops are
//! byte-identical to the binary heap the wheel replaced (the property
//! test in `tests/` drives both against each other).
//!
//! ## Past pushes
//!
//! The wheel cannot represent times behind its cursor. The engine never
//! schedules into the past (every event is pushed at `now + delay`), so
//! [`TimerWheel::push`] clamps `at` up to the cursor and debug-asserts —
//! a clamp firing outside tests indicates a world-builder bug.

use std::collections::{BTreeMap, VecDeque};

/// log2 of the L0 span: 1024 slots × 1 ms.
const L0_BITS: u32 = 10;
/// log2 of the L1 slot count: 512 slots × 1024 ms.
const L1_BITS: u32 = 9;
const L0_SLOTS: usize = 1 << L0_BITS;
const L1_SLOTS: usize = 1 << L1_BITS;
const L0_MASK: u64 = (L0_SLOTS as u64) - 1;
const L1_MASK: u64 = (L1_SLOTS as u64) - 1;

/// Min-scheduler over `(at, seq)` keys (ms-granularity sim time plus a
/// strictly increasing sequence number for same-time ties).
pub struct TimerWheel<T> {
    /// All stored events have `at >= cursor`.
    cursor: u64,
    len: usize,
    /// L0 slot: `(seq, item)` kept in ascending-seq order (sorted
    /// insertion); all entries share the same `at`. Drained deques keep
    /// their capacity.
    l0: Vec<VecDeque<(u64, T)>>,
    l0_occ: [u64; L0_SLOTS / 64],
    /// L1 slot: `(at, seq, item)` for one future L0 window, in push order.
    l1: Vec<Vec<(u64, u64, T)>>,
    l1_occ: [u64; L1_SLOTS / 64],
    overflow: BTreeMap<(u64, u64), T>,
    /// Free list of drained L1 slot buffers. A cascade drains a slot's
    /// vector; instead of dropping the buffer (and paying a fresh
    /// allocation the next time any slot in that window fills), the empty
    /// buffer parks here and the next L1 push into a capacity-less slot
    /// adopts it. Steady-state cascading therefore allocates nothing.
    l1_spare: Vec<Vec<(u64, u64, T)>>,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimerWheel")
            .field("cursor", &self.cursor)
            .field("len", &self.len)
            .field("overflow_len", &self.overflow.len())
            .finish()
    }
}

impl<T> TimerWheel<T> {
    /// Empty wheel with its cursor at time 0.
    pub fn new() -> Self {
        TimerWheel {
            cursor: 0,
            len: 0,
            l0: (0..L0_SLOTS).map(|_| VecDeque::new()).collect(),
            l0_occ: [0; L0_SLOTS / 64],
            l1: (0..L1_SLOTS).map(|_| Vec::new()).collect(),
            l1_occ: [0; L1_SLOTS / 64],
            overflow: BTreeMap::new(),
            l1_spare: Vec::new(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `item` at `(at, seq)`. `seq` values must be distinct but
    /// may arrive in any order (the engine derives them from per-origin
    /// counters). `at` values behind the cursor are clamped up to it.
    // hotpath -- one call per scheduled event
    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        debug_assert!(at >= self.cursor, "push into the past: {at} < cursor");
        let at = at.max(self.cursor);
        self.len += 1;
        self.place(at, seq, item);
    }

    /// Route an event with `at >= cursor` into the right layer.
    // hotpath -- layer routing for every push and every cascade
    fn place(&mut self, at: u64, seq: u64, item: T) {
        if at >> L0_BITS == self.cursor >> L0_BITS {
            let slot = (at & L0_MASK) as usize;
            let q = &mut self.l0[slot];
            // Ascending pushes append; a smaller key (another origin's
            // counter) binary-searches its slot position.
            if q.back().is_none_or(|(s, _)| *s < seq) {
                q.push_back((seq, item));
            } else {
                let pos = q.partition_point(|(s, _)| *s < seq);
                q.insert(pos, (seq, item));
            }
            self.l0_occ[slot / 64] |= 1 << (slot % 64);
        } else if at >> (L0_BITS + L1_BITS) == self.cursor >> (L0_BITS + L1_BITS) {
            let slot = ((at >> L0_BITS) & L1_MASK) as usize;
            if self.l1[slot].capacity() == 0 {
                if let Some(buf) = self.l1_spare.pop() {
                    self.l1[slot] = buf;
                }
            }
            self.l1[slot].push((at, seq, item));
            self.l1_occ[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.insert((at, seq), item);
        }
    }

    /// First occupied L0 slot index at or after `from`, if any.
    // hotpath -- bitmap scan on every pop
    fn l0_next_occupied(&self, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut bits = self.l0_occ[word] & (u64::MAX << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == self.l0_occ.len() {
                return None;
            }
            bits = self.l0_occ[word];
        }
    }

    /// Pop the earliest event if its time is `<= until`. Yields ascending
    /// `(at, seq)` across calls; pushes made between pops (the engine
    /// pushes while dispatching, including at the current time) slot into
    /// that order exactly as the binary heap did.
    // hotpath -- one call per event the engine dispatches
    pub fn pop_at_most(&mut self, until: u64) -> Option<(u64, u64, T)> {
        if self.len == 0 || self.cursor > until {
            return None;
        }
        loop {
            if let Some(slot) = self.l0_next_occupied((self.cursor & L0_MASK) as usize) {
                let at = (self.cursor & !L0_MASK) | slot as u64;
                if at > until {
                    // Nothing in [cursor, until]; `until` sits in this
                    // same window (cursor <= until < at), so the jump
                    // crosses no cascade boundary.
                    self.cursor = until;
                    return None;
                }
                let q = &mut self.l0[slot];
                let (seq, item) = q.pop_front().expect("occupancy bit set on empty slot");
                if q.is_empty() {
                    self.l0_occ[slot / 64] &= !(1 << (slot % 64));
                }
                self.len -= 1;
                // Do not advance past `at`: dispatching this event may
                // push more work at the same time (zero-delay timers),
                // which must land back in this slot behind higher seqs.
                self.cursor = at;
                return Some((at, seq, item));
            }
            // Current L0 window exhausted.
            let window_end = self.cursor | L0_MASK;
            if until <= window_end {
                self.cursor = until;
                return None;
            }
            self.advance_window(window_end + 1);
        }
    }

    /// Key of the earliest event if its time is `<= until`, without
    /// removing it. Advances the cursor (and cascades) exactly like
    /// [`TimerWheel::pop_at_most`], so the sharded engine can bound a
    /// shard's cursor to the current barrier epoch while scanning heads.
    // hotpath -- head refresh for the cross-shard merge loop
    pub fn peek_at_most(&mut self, until: u64) -> Option<(u64, u64)> {
        if self.len == 0 || self.cursor > until {
            return None;
        }
        loop {
            if let Some(slot) = self.l0_next_occupied((self.cursor & L0_MASK) as usize) {
                let at = (self.cursor & !L0_MASK) | slot as u64;
                if at > until {
                    self.cursor = until;
                    return None;
                }
                self.cursor = at;
                let (seq, _) = self.l0[slot]
                    .front()
                    .expect("occupancy bit set on empty slot");
                return Some((at, *seq));
            }
            let window_end = self.cursor | L0_MASK;
            if until <= window_end {
                self.cursor = until;
                return None;
            }
            self.advance_window(window_end + 1);
        }
    }

    /// Visit every pending event as `(at, seq, &item)` without disturbing
    /// the wheel — snapshot support. The visit order is a deterministic
    /// function of the wheel's layout (L0 slots ascending, then L1 slots
    /// ascending in push order, then overflow in key order), **not** time
    /// order: a restore re-pushes the events into a fresh wheel, which
    /// re-establishes `(at, seq)` pop order regardless of visit order.
    pub fn for_each_pending<F: FnMut(u64, u64, &T)>(&self, mut f: F) {
        // Every occupied L0 slot belongs to the cursor's window (stale
        // slots can't survive: pops drain ascending and window advance
        // only happens once the window is empty), so the slot index
        // recovers the full `at`.
        let window_base = self.cursor & !L0_MASK;
        for slot in 0..L0_SLOTS {
            if self.l0_occ[slot / 64] & (1 << (slot % 64)) == 0 {
                continue;
            }
            let at = window_base | slot as u64;
            for (seq, item) in &self.l0[slot] {
                f(at, *seq, item);
            }
        }
        for slot in 0..L1_SLOTS {
            if self.l1_occ[slot / 64] & (1 << (slot % 64)) == 0 {
                continue;
            }
            for (at, seq, item) in &self.l1[slot] {
                f(*at, *seq, item);
            }
        }
        for ((at, seq), item) in &self.overflow {
            f(*at, *seq, item);
        }
    }

    /// Time of the earliest pending event, touching neither the cursor nor
    /// the layers — a pure read. The barrier scheduler uses this to pick
    /// the next epoch start without committing any shard's cursor past a
    /// time other shards may still push to.
    pub fn min_pending_at(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        // The layers hold strictly increasing time ranges: L0 covers the
        // cursor's window, L1 the rest of its epoch, overflow everything
        // beyond — so the first non-empty layer owns the minimum.
        if let Some(slot) = self.l0_next_occupied((self.cursor & L0_MASK) as usize) {
            return Some((self.cursor & !L0_MASK) | slot as u64);
        }
        let l1_from = (((self.cursor >> L0_BITS) & L1_MASK) as usize + 1).min(L1_SLOTS);
        let mut word = l1_from / 64;
        let mut bits = if word < self.l1_occ.len() {
            self.l1_occ[word] & (u64::MAX.checked_shl((l1_from % 64) as u32).unwrap_or(0))
        } else {
            0
        };
        loop {
            if bits != 0 {
                let slot = word * 64 + bits.trailing_zeros() as usize;
                let at = self.l1[slot]
                    .iter()
                    .map(|(at, _, _)| *at)
                    .min()
                    .expect("occupancy bit set on empty L1 slot");
                return Some(at);
            }
            word += 1;
            if word >= self.l1_occ.len() {
                break;
            }
            bits = self.l1_occ[word];
        }
        self.overflow.keys().next().map(|(at, _)| *at)
    }

    /// Move the cursor to `window_start` (the first ms of the next L0
    /// window), pulling newly in-range overflow events and cascading the
    /// window's L1 slot into L0.
    // hotpath -- wheel cascade; runs on every L0 window rollover
    fn advance_window(&mut self, window_start: u64) {
        let old = self.cursor;
        self.cursor = window_start;
        if window_start >> (L0_BITS + L1_BITS) != old >> (L0_BITS + L1_BITS) {
            // New L1 epoch: route the overflow events that now fit the
            // wheels. BTreeMap iteration gives (at, seq) order, so
            // same-`at` runs arrive in ascending seq.
            let bound = ((window_start >> (L0_BITS + L1_BITS)) + 1) << (L0_BITS + L1_BITS);
            let rest = self.overflow.split_off(&(bound, 0));
            let in_range = std::mem::replace(&mut self.overflow, rest);
            for ((at, seq), item) in in_range {
                self.place(at, seq, item);
            }
        }
        let slot = ((window_start >> L0_BITS) & L1_MASK) as usize;
        if self.l1_occ[slot / 64] & (1 << (slot % 64)) != 0 {
            self.l1_occ[slot / 64] &= !(1 << (slot % 64));
            // Cascading only places into L0 (every event in this slot
            // belongs to the window just entered), so the slot's buffer can
            // be drained in place and recycled through the free list.
            let mut pending = std::mem::take(&mut self.l1[slot]);
            for (at, seq, item) in pending.drain(..) {
                debug_assert_eq!(at >> L0_BITS, window_start >> L0_BITS);
                self.place(at, seq, item);
            }
            self.l1_spare.push(pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_all(w: &mut TimerWheel<u32>, until: u64) -> Vec<(u64, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop_at_most(until) {
            out.push(e);
        }
        out
    }

    #[test]
    fn for_each_pending_rebuild_preserves_pop_order() {
        // Spread events across all three layers, advance the cursor
        // mid-window, then prove enumerate + re-push into a fresh wheel
        // pops the identical sequence the original would have.
        let mut w = TimerWheel::new();
        let ats = [3u64, 3, 700, 1_500, 5_000, 600_000, 2_000_000];
        for (i, &at) in ats.iter().enumerate() {
            w.push(at, i as u64 + 1, i as u32);
        }
        // Pop the two earliest so the cursor sits mid-window with
        // partially drained slots.
        assert_eq!(w.pop_at_most(10).map(|e| e.0), Some(3));
        assert_eq!(w.pop_at_most(10).map(|e| e.0), Some(3));

        let mut rebuilt = TimerWheel::new();
        let mut n = 0usize;
        w.for_each_pending(|at, seq, item| {
            rebuilt.push(at, seq, *item);
            n += 1;
        });
        assert_eq!(n, w.len());
        assert_eq!(rebuilt.len(), w.len());
        assert_eq!(
            drain_all(&mut rebuilt, u64::MAX),
            drain_all(&mut w, u64::MAX)
        );
    }

    #[test]
    fn pops_in_at_seq_order() {
        let mut w = TimerWheel::new();
        w.push(30, 0, 1);
        w.push(10, 1, 2);
        w.push(20, 2, 3);
        w.push(10, 3, 4); // same time as seq 1: ties break by seq
        assert_eq!(w.len(), 4);
        assert_eq!(
            drain_all(&mut w, 100),
            vec![(10, 1, 2), (10, 3, 4), (20, 2, 3), (30, 0, 1)]
        );
        assert!(w.is_empty());
    }

    #[test]
    fn until_bound_is_inclusive_and_resumable() {
        let mut w = TimerWheel::new();
        w.push(5, 0, 10);
        w.push(7, 1, 11);
        w.push(9, 2, 12);
        assert_eq!(drain_all(&mut w, 7), vec![(5, 0, 10), (7, 1, 11)]);
        assert_eq!(w.len(), 1);
        assert_eq!(drain_all(&mut w, 8), vec![]);
        assert_eq!(drain_all(&mut w, 9), vec![(9, 2, 12)]);
    }

    #[test]
    fn same_time_pushes_between_pops_keep_seq_order() {
        // A zero-delay timer: dispatching the event at t pushes another
        // event at t, which must pop next.
        let mut w = TimerWheel::new();
        w.push(50, 0, 1);
        w.push(50, 1, 2);
        assert_eq!(w.pop_at_most(1_000), Some((50, 0, 1)));
        w.push(50, 2, 3);
        assert_eq!(w.pop_at_most(1_000), Some((50, 1, 2)));
        assert_eq!(w.pop_at_most(1_000), Some((50, 2, 3)));
        assert_eq!(w.pop_at_most(1_000), None);
    }

    #[test]
    fn crosses_l0_windows_and_cascades_l1() {
        let mut w = TimerWheel::new();
        // Spread events across several L0 windows inside one L1 epoch.
        let times = [3u64, 1_024, 1_030, 5_000, 250_000, 250_001];
        for (i, &t) in times.iter().enumerate() {
            w.push(t, i as u64, i as u32);
        }
        let got = drain_all(&mut w, 300_000);
        let ats: Vec<u64> = got.iter().map(|e| e.0).collect();
        assert_eq!(ats, vec![3, 1_024, 1_030, 5_000, 250_000, 250_001]);
    }

    #[test]
    fn far_future_overflow_drains_in_order() {
        let mut w = TimerWheel::new();
        // Beyond the L1 horizon (2^19 ms ≈ 524 s): these live in overflow.
        w.push(2_000_000, 0, 1);
        w.push(600_000, 1, 2);
        w.push(2_000_000, 2, 3);
        w.push(5, 3, 4);
        let got = drain_all(&mut w, 3_000_000);
        assert_eq!(
            got,
            vec![
                (5, 3, 4),
                (600_000, 1, 2),
                (2_000_000, 0, 1),
                (2_000_000, 2, 3)
            ]
        );
    }

    #[test]
    fn pop_is_none_when_head_is_beyond_until() {
        let mut w = TimerWheel::new();
        w.push(10_000, 0, 1);
        assert_eq!(w.pop_at_most(9_999), None);
        assert_eq!(w.len(), 1);
        // Pushing nearer work after a bounded pop still works.
        w.push(9_999, 1, 2);
        assert_eq!(w.pop_at_most(10_000), Some((9_999, 1, 2)));
        assert_eq!(w.pop_at_most(10_000), Some((10_000, 0, 1)));
    }

    #[test]
    fn empty_wheel_pops_none_at_any_bound() {
        let mut w: TimerWheel<u32> = TimerWheel::new();
        assert_eq!(w.pop_at_most(0), None);
        assert_eq!(w.pop_at_most(u64::MAX / 2), None);
        assert!(w.is_empty());
    }

    #[test]
    fn out_of_order_keys_in_one_slot_pop_sorted() {
        // Per-origin keys: a later push may carry a smaller key for the
        // same `at`; the slot must keep ascending-key order.
        let mut w = TimerWheel::new();
        w.push(40, 500, 1);
        w.push(40, 7, 2);
        w.push(40, 900, 3);
        w.push(40, 100, 4);
        assert_eq!(
            drain_all(&mut w, 100),
            vec![(40, 7, 2), (40, 100, 4), (40, 500, 1), (40, 900, 3)]
        );
    }

    #[test]
    fn smaller_key_pushed_after_pop_at_same_time_pops_next() {
        // Popping (50, 10) then receiving (50, 3) from a different origin
        // must yield the new event before (50, 20).
        let mut w = TimerWheel::new();
        w.push(50, 10, 1);
        w.push(50, 20, 2);
        assert_eq!(w.pop_at_most(1_000), Some((50, 10, 1)));
        w.push(50, 3, 3);
        assert_eq!(w.pop_at_most(1_000), Some((50, 3, 3)));
        assert_eq!(w.pop_at_most(1_000), Some((50, 20, 2)));
    }

    #[test]
    fn peek_does_not_consume_and_respects_bound() {
        let mut w = TimerWheel::new();
        w.push(30, 0, 1);
        w.push(2_500, 1, 2);
        assert_eq!(w.peek_at_most(20), None);
        assert_eq!(w.peek_at_most(100), Some((30, 0)));
        assert_eq!(w.peek_at_most(100), Some((30, 0))); // still there
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop_at_most(100), Some((30, 0, 1)));
        // The next head sits in a later L0 window: peeking cascades to it.
        assert_eq!(w.peek_at_most(10_000), Some((2_500, 1)));
        assert_eq!(w.pop_at_most(10_000), Some((2_500, 1, 2)));
        assert!(w.is_empty());
        assert_eq!(w.peek_at_most(20_000), None);
    }

    #[test]
    fn min_pending_at_reads_all_layers_without_moving_the_cursor() {
        let mut w = TimerWheel::new();
        assert_eq!(w.min_pending_at(), None);
        // Overflow only.
        w.push(2_000_000, 0, 1);
        assert_eq!(w.min_pending_at(), Some(2_000_000));
        // L1 beats overflow.
        w.push(5_000, 1, 2);
        assert_eq!(w.min_pending_at(), Some(5_000));
        // L0 beats both.
        w.push(17, 2, 3);
        assert_eq!(w.min_pending_at(), Some(17));
        // The read is pure: a later push at an earlier time still lands
        // ahead of the reported minimum (the cursor did not advance).
        w.push(4, 3, 4);
        assert_eq!(w.min_pending_at(), Some(4));
        assert_eq!(w.pop_at_most(10_000), Some((4, 3, 4)));
        assert_eq!(w.pop_at_most(10_000), Some((17, 2, 3)));
        assert_eq!(w.min_pending_at(), Some(5_000));
        assert_eq!(w.pop_at_most(10_000), Some((5_000, 1, 2)));
        assert_eq!(w.min_pending_at(), Some(2_000_000));
    }

    /// Pre-arena pin: with L1 buffers recycled through the free list, an
    /// interleaved push/pop workload spanning many cascades must dispatch
    /// in exactly the `(at, seq)` order of a reference binary heap — the
    /// scheduler the wheel originally replaced.
    #[test]
    fn cascade_recycling_reproduces_reference_heap_order() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut wheel = TimerWheel::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) % m
        };
        let mut now = 0u64;
        let mut seq = 0u64;
        for round in 0..2_000u32 {
            // A burst of pushes at mixed horizons: same-window, L1-range,
            // and overflow-range targets, so cascades recycle constantly.
            for _ in 0..3 {
                let horizon = match next(10) {
                    0..=5 => next(900),             // L0 window
                    6..=8 => 1_000 + next(500_000), // L1 range
                    _ => 600_000 + next(2_000_000), // overflow
                };
                let at = now + horizon;
                wheel.push(at, seq, round);
                heap.push(Reverse((at, seq, round)));
                seq += 1;
            }
            now += next(3_000);
            loop {
                let got = wheel.pop_at_most(now);
                let want = match heap.peek() {
                    Some(Reverse((at, _, _))) if *at <= now => heap.pop().map(|Reverse(e)| e),
                    _ => None,
                };
                assert_eq!(got, want, "divergence at round {round} now {now}");
                if got.is_none() {
                    break;
                }
            }
        }
        // Drain the tails against each other too.
        while let Some(Reverse(want)) = heap.pop() {
            assert_eq!(wheel.pop_at_most(u64::MAX / 2), Some(want));
        }
        assert!(wheel.is_empty());
    }

    #[test]
    fn drained_l1_buffers_are_recycled_not_dropped() {
        let mut w = TimerWheel::new();
        // Fill one L1 slot, cascade it, and check the buffer parked in the
        // free list with its capacity intact.
        for i in 0..32u64 {
            w.push(5_000, i, i as u32);
        }
        assert!(w.l1_spare.is_empty());
        while w.pop_at_most(10_000).is_some() {}
        assert_eq!(w.l1_spare.len(), 1);
        let cap = w.l1_spare[0].capacity();
        assert!(cap >= 32, "recycled buffer lost its capacity");
        // The next L1 push adopts the spare buffer instead of allocating.
        w.push(20_000, 99, 7);
        assert!(w.l1_spare.is_empty());
        let slot = ((20_000u64 >> L0_BITS) & L1_MASK) as usize;
        assert!(w.l1[slot].capacity() >= 32);
    }

    #[test]
    fn window_boundary_times_route_correctly() {
        let mut w = TimerWheel::new();
        // Exactly at the L0 window edge (1023/1024) and the L1 horizon
        // edge (2^19 - 1 / 2^19).
        for (i, t) in [1_023u64, 1_024, (1 << 19) - 1, 1 << 19].iter().enumerate() {
            w.push(*t, i as u64, i as u32);
        }
        let ats: Vec<u64> = drain_all(&mut w, 1 << 20).iter().map(|e| e.0).collect();
        assert_eq!(ats, vec![1_023, 1_024, (1 << 19) - 1, 1 << 19]);
    }
}
