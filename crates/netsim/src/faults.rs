//! Deterministic fault injection: per-link fault windows and scenario
//! descriptions.
//!
//! The paper's crawler ran on the live Internet, where links lose bursts
//! of packets, stall, reset connections mid-stream, and deliver garbage.
//! This module reproduces those conditions inside the simulator so the
//! robustness suite (`tests/robustness.rs`) can prove the crawler
//! degrades gracefully — without giving up determinism: every fault
//! decision draws from the engine's single seeded RNG in event order.
//!
//! A [`FaultWindow`] applies one [`Fault`] to one [`LinkSelector`] during
//! `[from_ms, until_ms)`. Windows are installed via
//! [`SimConfig::faults`](crate::SimConfig) up front or
//! [`NetSim::add_fault`](crate::NetSim::add_fault) after construction
//! (worlds build their own `SimConfig`, so post-construction injection is
//! the common path). A [`Scenario`] bundles fault windows with churn
//! bursts and NAT flaps into one reusable, deterministic description.

use crate::engine::{HostAddr, HostId, NetSim};
use crate::payload::Payload;
use rand::rngs::StdRng;
use rand::Rng;

/// Which link(s) a fault window applies to. Selection is symmetric: a
/// pair matches traffic in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every link in the simulation.
    Any,
    /// Every link with this endpoint on either side.
    Host(HostAddr),
    /// The single link between these two endpoints (either direction).
    Pair(HostAddr, HostAddr),
}

impl LinkSelector {
    /// Does traffic between `a` and `b` (either direction) match?
    pub fn matches(&self, a: HostAddr, b: HostAddr) -> bool {
        match *self {
            LinkSelector::Any => true,
            LinkSelector::Host(h) => a == h || b == h,
            LinkSelector::Pair(x, y) => (a == x && b == y) || (a == y && b == x),
        }
    }
}

/// One injectable network pathology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Additional UDP loss probability on the link (burst loss).
    UdpLoss(f64),
    /// Extra one-way latency, ms, on every matching packet/segment.
    LatencySpike(u64),
    /// Total loss: UDP vanishes, TCP connects fail, established-stream
    /// segments are silently dropped (the connection stalls).
    Blackhole,
    /// Established TCP connections carrying a matching segment are reset:
    /// both ends see `Closed` instead of the data.
    TcpReset,
    /// TCP segments longer than the limit are truncated to it — the
    /// stream desynchronizes and the receiver reads garbage.
    TcpTruncate(usize),
    /// One byte of each matching TCP segment (position drawn from the
    /// engine RNG) is flipped.
    TcpCorrupt,
}

/// A [`Fault`] on a [`LinkSelector`] during `[from_ms, until_ms)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Which links.
    pub link: LinkSelector,
    /// Window start (inclusive), ms.
    pub from_ms: u64,
    /// Window end (exclusive), ms.
    pub until_ms: u64,
    /// What goes wrong.
    pub fault: Fault,
}

impl FaultWindow {
    /// Is this window live for traffic between `a` and `b` at `now`?
    pub fn active(&self, now: u64, a: HostAddr, b: HostAddr) -> bool {
        now >= self.from_ms && now < self.until_ms && self.link.matches(a, b)
    }
}

/// What the engine should do with a UDP datagram after fault evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UdpFate {
    /// Deliver, delayed by this many extra ms.
    Deliver {
        /// Additional one-way latency.
        extra_ms: u64,
    },
    /// Silently dropped.
    Drop,
}

/// What the engine should do with a TCP segment after fault evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TcpFate {
    /// Deliver (possibly mutated in place), delayed by extra ms.
    Deliver {
        /// Additional one-way latency.
        extra_ms: u64,
    },
    /// Segment silently lost; the stream stalls.
    Drop,
    /// Connection reset: both sides get `Closed`.
    Reset,
}

/// An ordered set of fault windows. Overlapping windows compose: drops
/// and resets short-circuit, latency spikes accumulate, mutations apply
/// in insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    windows: Vec<FaultWindow>,
}

impl FaultSchedule {
    /// Install a fault window.
    pub fn push(&mut self, window: FaultWindow) {
        self.windows.push(window);
    }

    /// No windows installed?
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Number of installed windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// The installed windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Evaluate the fate of a UDP datagram on link `a`↔`b` at `now`.
    pub(crate) fn udp_fate(&self, now: u64, a: HostAddr, b: HostAddr, rng: &mut StdRng) -> UdpFate {
        let mut extra_ms = 0u64;
        for (i, w) in self.windows.iter().enumerate() {
            if !w.active(now, a, b) {
                continue;
            }
            // `is_enabled` guard: skip the label format! when no recorder
            // is installed (the counter itself would no-op anyway).
            if obs::is_enabled() {
                obs::counter_add(&format!("netsim.fault.window_{i}.hits"), 1);
            }
            match w.fault {
                Fault::Blackhole => return UdpFate::Drop,
                Fault::UdpLoss(p) => {
                    if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                        return UdpFate::Drop;
                    }
                }
                Fault::LatencySpike(ms) => extra_ms += ms,
                Fault::TcpReset | Fault::TcpTruncate(_) | Fault::TcpCorrupt => {}
            }
        }
        UdpFate::Deliver { extra_ms }
    }

    /// Would a TCP connect (SYN) between `a` and `b` at `now` be
    /// blackholed?
    pub(crate) fn tcp_connect_blocked(&self, now: u64, a: HostAddr, b: HostAddr) -> bool {
        self.windows
            .iter()
            .any(|w| w.active(now, a, b) && w.fault == Fault::Blackhole)
    }

    /// Evaluate the fate of a TCP segment on link `a`↔`b` at `now`,
    /// mutating `bytes` for truncation/corruption faults. Truncation
    /// only narrows the payload window (no copy); corruption copies on
    /// write if the buffer is shared.
    pub(crate) fn tcp_fate(
        &self,
        now: u64,
        a: HostAddr,
        b: HostAddr,
        bytes: &mut Payload,
        rng: &mut StdRng,
    ) -> TcpFate {
        let mut extra_ms = 0u64;
        for (i, w) in self.windows.iter().enumerate() {
            if !w.active(now, a, b) {
                continue;
            }
            if obs::is_enabled() {
                obs::counter_add(&format!("netsim.fault.window_{i}.hits"), 1);
            }
            match w.fault {
                Fault::Blackhole => return TcpFate::Drop,
                Fault::TcpReset => return TcpFate::Reset,
                Fault::TcpTruncate(limit) => bytes.truncate(limit),
                Fault::TcpCorrupt => {
                    if !bytes.is_empty() {
                        let i = rng.gen_range(0..bytes.len());
                        bytes.make_mut()[i] ^= 0xA5;
                    }
                }
                Fault::LatencySpike(ms) => extra_ms += ms,
                Fault::UdpLoss(_) => {}
            }
        }
        TcpFate::Deliver { extra_ms }
    }
}

/// A churn burst: the listed hosts go down together at `at_ms` and come
/// back `down_ms` later (the correlated-outage pattern live crawls see
/// when a cloud AS hiccups).
#[derive(Debug, Clone)]
pub struct ChurnBurst {
    /// Hosts to take down.
    pub hosts: Vec<HostId>,
    /// When the burst hits, ms.
    pub at_ms: u64,
    /// Outage duration, ms.
    pub down_ms: u64,
}

/// A NAT flap: a host's public reachability toggles off and back on
/// `flaps` times, `period_ms` apart, starting at `from_ms`.
#[derive(Debug, Clone, Copy)]
pub struct NatFlap {
    /// The flapping host.
    pub host: HostId,
    /// First transition, ms.
    pub from_ms: u64,
    /// Time between transitions, ms.
    pub period_ms: u64,
    /// Number of unreachable→reachable cycles.
    pub flaps: u32,
}

/// A small deterministic description of one degraded-network experiment:
/// fault windows plus lifecycle disturbances, applied to a simulator in
/// one call.
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Link faults.
    pub faults: Vec<FaultWindow>,
    /// Correlated outages.
    pub churn_bursts: Vec<ChurnBurst>,
    /// Reachability flaps.
    pub nat_flaps: Vec<NatFlap>,
}

impl Scenario {
    /// Install every fault window and schedule every churn burst and NAT
    /// flap on the simulator.
    pub fn apply(&self, sim: &mut NetSim) {
        for w in &self.faults {
            sim.add_fault(*w);
        }
        for burst in &self.churn_bursts {
            sim.churn_burst(&burst.hosts, burst.at_ms, burst.down_ms);
        }
        for flap in &self.nat_flaps {
            sim.nat_flap(flap.host, flap.from_ms, flap.period_ms, flap.flaps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn addr(last: u8) -> HostAddr {
        HostAddr::new(Ipv4Addr::new(10, 0, 0, last), 30303)
    }

    #[test]
    fn selector_matching_is_symmetric() {
        let (a, b, c) = (addr(1), addr(2), addr(3));
        assert!(LinkSelector::Any.matches(a, b));
        assert!(LinkSelector::Host(a).matches(a, b));
        assert!(LinkSelector::Host(a).matches(b, a));
        assert!(!LinkSelector::Host(c).matches(a, b));
        assert!(LinkSelector::Pair(a, b).matches(b, a));
        assert!(!LinkSelector::Pair(a, c).matches(a, b));
    }

    #[test]
    fn window_respects_time_bounds() {
        let w = FaultWindow {
            link: LinkSelector::Any,
            from_ms: 100,
            until_ms: 200,
            fault: Fault::Blackhole,
        };
        assert!(!w.active(99, addr(1), addr(2)));
        assert!(w.active(100, addr(1), addr(2)));
        assert!(w.active(199, addr(1), addr(2)));
        assert!(!w.active(200, addr(1), addr(2)));
    }

    #[test]
    fn blackhole_drops_udp_and_blocks_connects() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sched = FaultSchedule::default();
        sched.push(FaultWindow {
            link: LinkSelector::Pair(addr(1), addr(2)),
            from_ms: 0,
            until_ms: 1_000,
            fault: Fault::Blackhole,
        });
        assert_eq!(
            sched.udp_fate(10, addr(1), addr(2), &mut rng),
            UdpFate::Drop
        );
        assert!(sched.tcp_connect_blocked(10, addr(2), addr(1)));
        // Unrelated link untouched.
        assert_eq!(
            sched.udp_fate(10, addr(1), addr(3), &mut rng),
            UdpFate::Deliver { extra_ms: 0 }
        );
        assert!(!sched.tcp_connect_blocked(10, addr(1), addr(3)));
    }

    #[test]
    fn latency_spikes_accumulate() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sched = FaultSchedule::default();
        for ms in [40, 60] {
            sched.push(FaultWindow {
                link: LinkSelector::Any,
                from_ms: 0,
                until_ms: 1_000,
                fault: Fault::LatencySpike(ms),
            });
        }
        assert_eq!(
            sched.udp_fate(10, addr(1), addr(2), &mut rng),
            UdpFate::Deliver { extra_ms: 100 }
        );
        let mut bytes = Payload::from(vec![1, 2, 3]);
        assert_eq!(
            sched.tcp_fate(10, addr(1), addr(2), &mut bytes, &mut rng),
            TcpFate::Deliver { extra_ms: 100 }
        );
    }

    #[test]
    fn truncate_and_corrupt_mutate_segments() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sched = FaultSchedule::default();
        sched.push(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 0,
            until_ms: 1_000,
            fault: Fault::TcpTruncate(4),
        });
        let mut bytes = Payload::from(vec![9u8; 10]);
        assert_eq!(
            sched.tcp_fate(5, addr(1), addr(2), &mut bytes, &mut rng),
            TcpFate::Deliver { extra_ms: 0 }
        );
        assert_eq!(bytes.len(), 4);

        let mut sched = FaultSchedule::default();
        sched.push(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 0,
            until_ms: 1_000,
            fault: Fault::TcpCorrupt,
        });
        let clean = Payload::from(vec![9u8; 10]);
        // Shared with `clean`: corruption must copy-on-write, leaving the
        // sender's view intact.
        let mut bytes = clean.clone();
        sched.tcp_fate(5, addr(1), addr(2), &mut bytes, &mut rng);
        assert_eq!(bytes.len(), 10);
        assert_ne!(bytes, clean, "exactly one byte must differ");
        assert_eq!(&*clean, &[9u8; 10], "the shared original is untouched");
    }

    #[test]
    fn reset_short_circuits() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sched = FaultSchedule::default();
        sched.push(FaultWindow {
            link: LinkSelector::Host(addr(2)),
            from_ms: 0,
            until_ms: 1_000,
            fault: Fault::TcpReset,
        });
        let mut bytes = Payload::from(vec![1u8; 8]);
        assert_eq!(
            sched.tcp_fate(5, addr(1), addr(2), &mut bytes, &mut rng),
            TcpFate::Reset
        );
        // UDP is unaffected by TCP-only faults.
        assert_eq!(
            sched.udp_fate(5, addr(1), addr(2), &mut rng),
            UdpFate::Deliver { extra_ms: 0 }
        );
    }

    #[test]
    fn burst_loss_is_probabilistic_but_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sched = FaultSchedule::default();
            sched.push(FaultWindow {
                link: LinkSelector::Any,
                from_ms: 0,
                until_ms: 1_000,
                fault: Fault::UdpLoss(0.5),
            });
            (0..64)
                .map(|i| sched.udp_fate(i, addr(1), addr(2), &mut rng) == UdpFate::Drop)
                .collect()
        };
        assert_eq!(run(3), run(3));
        let drops = run(3).iter().filter(|d| **d).count();
        assert!(drops > 10 && drops < 54, "loss should be partial: {drops}");
    }
}
