//! The snapshot byte codec: a tiny, versioned, deterministic
//! little-endian writer/reader pair shared by every layer that
//! checkpoints state (the engine itself, host behaviours, the
//! observability registry, and the crawler pipeline).
//!
//! ## Format
//!
//! A snapshot section is `magic(4) ‖ version(1) ‖ fields…`. Every field
//! is fixed-width little-endian (no varints: a snapshot's byte image
//! must be a pure function of the state it captures, and fixed widths
//! keep the mapping trivially auditable). Variable-length data is
//! length-prefixed with a `u64`. Layers nest by embedding a child
//! section as a byte string — each layer owns its own magic and version
//! byte, so formats can evolve independently.
//!
//! ## Contract
//!
//! * Writing is infallible; reading validates everything (magic,
//!   version, lengths, enum tags) and fails with a [`SnapError`] instead
//!   of panicking — a snapshot is external input by the time it is read.
//! * [`SnapReader::finish`] asserts full consumption so trailing garbage
//!   (a truncated write, a version skew that moved a field) is caught at
//!   restore time, not as silent state corruption later.

use std::fmt;

/// Magic prefixing every engine-level world snapshot.
pub const SNAP_MAGIC: [u8; 4] = *b"PSNP";

/// Current engine snapshot format version.
pub const SNAP_VERSION: u8 = 1;

/// Why a snapshot could not be read (or taken).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The leading magic bytes did not match.
    BadMagic {
        /// What the section expected.
        expected: [u8; 4],
        /// What the buffer held.
        found: [u8; 4],
    },
    /// The version byte is not one this build can read.
    BadVersion {
        /// The version this build writes.
        expected: u8,
        /// The version found in the buffer.
        found: u8,
    },
    /// The buffer ended before the field at this byte offset.
    Truncated {
        /// Byte offset of the incomplete read.
        at: usize,
    },
    /// A structurally invalid value (bad enum tag, impossible length,
    /// cross-field inconsistency).
    Corrupt(&'static str),
    /// The state in question cannot be checkpointed (e.g. a host
    /// behaviour without `save_state` support).
    Unsupported(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic { expected, found } => write!(
                f,
                "bad snapshot magic: expected {expected:?}, found {found:?}"
            ),
            SnapError::BadVersion { expected, found } => write!(
                f,
                "unsupported snapshot version {found} (this build reads {expected})"
            ),
            SnapError::Truncated { at } => write!(f, "snapshot truncated at byte {at}"),
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::Unsupported(what) => write!(f, "state not checkpointable: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian section writer. Infallible: every method
/// just grows the internal buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty writer (for a headerless embedded blob).
    pub fn new() -> SnapWriter {
        SnapWriter { buf: Vec::new() }
    }

    /// Writer primed with a `magic ‖ version` section header.
    pub fn with_header(magic: [u8; 4], version: u8) -> SnapWriter {
        let mut w = SnapWriter::new();
        w.buf.extend_from_slice(&magic);
        w.buf.push(version);
        w
    }

    /// Append a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (snapshots are word-size independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Append an `f64` by its IEEE-754 bit pattern (byte-exact round
    /// trip, NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Append a fixed-width array with no length prefix (the reader
    /// knows the width from the schema).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Take the finished section.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor-based section reader; every method validates bounds and tags.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Reader over a headerless embedded blob.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Reader that first validates a `magic ‖ version` section header.
    pub fn with_header(
        buf: &'a [u8],
        magic: [u8; 4],
        version: u8,
    ) -> Result<SnapReader<'a>, SnapError> {
        let mut r = SnapReader::new(buf);
        let found = r.array::<4>()?;
        if found != magic {
            return Err(SnapError::BadMagic {
                expected: magic,
                found,
            });
        }
        let v = r.u8()?;
        if v != version {
            return Err(SnapError::BadVersion {
                expected: version,
                found: v,
            });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapError::Truncated { at: self.pos });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a one-byte `bool`; any value other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte out of range")),
        }
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Read a `usize` written by [`SnapWriter::usize`], rejecting values
    /// this platform cannot represent.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize overflows platform"))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        if n > self.buf.len() - self.pos {
            return Err(SnapError::Truncated { at: self.pos });
        }
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapError> {
        std::str::from_utf8(self.bytes()?).map_err(|_| SnapError::Corrupt("non-UTF-8 string"))
    }

    /// Read a fixed-width array written by [`SnapWriter::raw`].
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], SnapError> {
        Ok(self.take(N)?.try_into().expect("exact len"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the section was fully consumed — trailing bytes mean the
    /// schema and the buffer disagree.
    pub fn finish(self) -> Result<(), SnapError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapError::Corrupt("trailing bytes after snapshot"))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn round_trips_every_field_kind() {
        let mut w = SnapWriter::with_header(*b"TEST", 3);
        w.u8(7);
        w.bool(true);
        w.bool(false);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.usize(12_345);
        w.f64(-0.125);
        w.bytes(b"hello");
        w.str("wörld");
        w.raw(&[1, 2, 3, 4]);
        let buf = w.finish();

        let mut r = SnapReader::with_header(&buf, *b"TEST", 3).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), 12_345);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "wörld");
        assert_eq!(r.array::<4>().unwrap(), [1, 2, 3, 4]);
        r.finish().unwrap();
    }

    #[test]
    fn header_mismatches_are_rejected() {
        let buf = SnapWriter::with_header(*b"AAAA", 1).finish();
        assert!(matches!(
            SnapReader::with_header(&buf, *b"BBBB", 1),
            Err(SnapError::BadMagic { .. })
        ));
        assert!(matches!(
            SnapReader::with_header(&buf, *b"AAAA", 2),
            Err(SnapError::BadVersion {
                expected: 2,
                found: 1
            })
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors() {
        let mut w = SnapWriter::new();
        w.u64(42);
        let buf = w.finish();

        let mut r = SnapReader::new(&buf[..4]);
        assert_eq!(r.u64(), Err(SnapError::Truncated { at: 0 }));

        let mut r = SnapReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 42);
        assert!(matches!(r.finish(), Err(SnapError::Corrupt(_))));

        // A byte-string length larger than the buffer must not wrap.
        let mut w = SnapWriter::new();
        w.u64(u64::MAX);
        let buf = w.finish();
        let mut r = SnapReader::new(&buf);
        assert!(matches!(
            r.bytes(),
            Err(SnapError::Truncated { .. }) | Err(SnapError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_bool_byte_is_corrupt() {
        let mut r = SnapReader::new(&[9]);
        assert_eq!(r.bool(), Err(SnapError::Corrupt("bool byte out of range")));
    }
}
