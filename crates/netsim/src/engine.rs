//! The discrete-event engine: hosts, UDP, TCP, timers, churn.

use crate::faults::{FaultSchedule, FaultWindow, TcpFate, UdpFate};
use crate::payload::Payload;
use crate::sched::TimerWheel;
use crate::topology::{latency_between, HostMeta};
use obs::MetricId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Identifies a host inside one simulation.
pub type HostId = usize;

/// Identifies a TCP connection inside one simulation.
pub type ConnId = usize;

/// A transport address: the simulator's sockets are `(ip, port)` pairs; a
/// host binds one port for both its UDP (discovery) and TCP (RLPx)
/// traffic, like an Ethereum node's default 30303/30303.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Port (shared by UDP and TCP in this model).
    pub port: u16,
}

impl HostAddr {
    /// Construct.
    pub fn new(ip: Ipv4Addr, port: u16) -> HostAddr {
        HostAddr { ip, port }
    }
}

impl std::fmt::Display for HostAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// TCP notifications delivered to a host.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpEvent {
    /// Our dial completed.
    Connected {
        /// The connection.
        conn: ConnId,
        /// Remote address.
        peer: HostAddr,
    },
    /// Our dial failed (dead, unreachable, or NATed target).
    ConnectFailed {
        /// The connection that failed.
        conn: ConnId,
    },
    /// A remote dialed us.
    Incoming {
        /// The connection.
        conn: ConnId,
        /// Remote address.
        peer: HostAddr,
    },
    /// Ordered stream data arrived.
    Data {
        /// Payload bytes (cheaply clonable shared buffer; derefs to
        /// `&[u8]`).
        bytes: Payload,
        /// The connection.
        conn: ConnId,
    },
    /// The peer closed (or died).
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// Behaviour attached to a simulated host. Implementations hold the
/// protocol state machines and pump bytes through them.
pub trait Host {
    /// The host came online (initial start or churn restart).
    fn on_start(&mut self, ctx: &mut Ctx);
    /// A UDP datagram arrived.
    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]);
    /// A TCP event occurred.
    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64);
    /// The host is going offline (connections are closed by the engine).
    fn on_stop(&mut self, _ctx: &mut Ctx) {}
    /// Surrender the behaviour as `Any` so experiment harnesses can
    /// downcast it back to the concrete type and read its logs after
    /// [`NetSim::remove_host_behaviour`].
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (full determinism).
    pub seed: u64,
    /// Probability a UDP datagram is silently lost.
    pub udp_loss: f64,
    /// Extra per-packet latency jitter bound, ms.
    pub jitter_ms: u32,
    /// How long a NAT pinhole stays open after outbound traffic, ms.
    pub nat_window_ms: u64,
    /// Per-link fault windows (see [`crate::faults`]). Usually empty at
    /// construction and extended later via [`NetSim::add_fault`].
    pub faults: FaultSchedule,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 1804,
            udp_loss: 0.01,
            jitter_ms: 8,
            nat_window_ms: 120_000,
            faults: FaultSchedule::default(),
        }
    }
}

/// TCP-layer counters (the UDP side has [`NetSim::udp_counters`]; fault
/// scenarios assert against these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Connections that reached the `Established` state.
    pub connects: u64,
    /// Abortive teardowns: fault-injected resets plus connections killed
    /// by a host death.
    pub resets: u64,
    /// Payload bytes accepted for delivery (post-truncation).
    pub bytes: u64,
    /// Segments silently lost to blackhole windows.
    pub segments_dropped: u64,
}

/// What a host asks the engine to do; applied after the callback returns.
enum Action {
    SendUdp { to: HostAddr, bytes: Payload },
    TcpConnect { conn: ConnId, to: HostAddr },
    TcpSend { conn: ConnId, bytes: Payload },
    TcpClose { conn: ConnId },
    SetTimer { delay_ms: u64, token: u64 },
}

/// The API surface a host sees during a callback.
pub struct Ctx<'a> {
    /// Current simulated time, ms.
    pub now_ms: u64,
    host: HostId,
    local: HostAddr,
    rng: &'a mut StdRng,
    conn_info: &'a [ConnInfo],
    actions: Vec<Action>,
    next_conn: usize,
    new_conns: usize,
}

impl<'a> Ctx<'a> {
    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// This host's address.
    pub fn local_addr(&self) -> HostAddr {
        self.local
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send a UDP datagram. Accepts a `Vec<u8>` or a shared [`Payload`]
    /// (e.g. to fan one buffer out to many peers without copies).
    pub fn send_udp(&mut self, to: HostAddr, bytes: impl Into<Payload>) {
        self.actions.push(Action::SendUdp {
            to,
            bytes: bytes.into(),
        });
    }

    /// Open a TCP connection; resolves to `Connected` or `ConnectFailed`.
    pub fn tcp_connect(&mut self, to: HostAddr) -> ConnId {
        let conn = self.next_conn + self.new_conns;
        self.new_conns += 1;
        self.actions.push(Action::TcpConnect { conn, to });
        conn
    }

    /// Send bytes on an established connection. Accepts a `Vec<u8>` or a
    /// shared [`Payload`].
    pub fn tcp_send(&mut self, conn: ConnId, bytes: impl Into<Payload>) {
        self.actions.push(Action::TcpSend {
            conn,
            bytes: bytes.into(),
        });
    }

    /// Close a connection (peer gets `Closed` after one latency).
    pub fn tcp_close(&mut self, conn: ConnId) {
        self.actions.push(Action::TcpClose { conn });
    }

    /// Arrange an `on_timer(token)` callback after `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: u64, token: u64) {
        self.actions.push(Action::SetTimer { delay_ms, token });
    }

    /// The connection's smoothed RTT in ms (what the paper's crawler logs
    /// as connection latency). Zero for unknown/unestablished connections.
    pub fn rtt_ms(&self, conn: ConnId) -> u32 {
        self.conn_info.get(conn).map(|c| c.rtt_ms).unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    Dialing,
    Established,
    Closed,
}

// shard-state -- per-connection record; migrates with whichever shard owns the connection
#[derive(Debug, Clone, Copy)]
struct ConnInfo {
    initiator: HostId,
    acceptor: Option<HostId>,
    remote_addr: HostAddr,
    local_addr: HostAddr,
    state: ConnState,
    rtt_ms: u32,
}

// shard-state -- per-host record; the unit a sharded engine partitions across workers
struct Slot {
    host: Option<Box<dyn Host>>,
    addr: HostAddr,
    meta: HostMeta,
    alive: bool,
    /// Outbound UDP contacts for NAT pinholes: peer addr → last send time.
    nat: BTreeMap<HostAddr, u64>,
    /// Established connections this host participates in. Lets a host
    /// stop tear down exactly its own connections instead of scanning
    /// every connection ever created.
    live_conns: Vec<ConnId>,
}

// shard-state -- events cross shard boundaries when sender and receiver land on different workers
enum Ev {
    Udp {
        to: HostId,
        from: HostAddr,
        bytes: Payload,
    },
    TcpSyn {
        conn: ConnId,
    },
    TcpEstablish {
        conn: ConnId,
        ok: bool,
    },
    TcpData {
        conn: ConnId,
        to_initiator: bool,
        bytes: Payload,
    },
    TcpClose {
        conn: ConnId,
        to_initiator: bool,
    },
    Timer {
        host: HostId,
        token: u64,
    },
    StartHost {
        host: HostId,
    },
    StopHost {
        host: HostId,
    },
    SetReachable {
        host: HostId,
        reachable: bool,
    },
}

impl Ev {
    /// Interned handle of the per-kind event-mix counter.
    fn obs_id(&self, ids: &EngineIds) -> MetricId {
        match self {
            Ev::Udp { .. } => ids.ev_udp,
            Ev::TcpSyn { .. } => ids.ev_tcp_syn,
            Ev::TcpEstablish { .. } => ids.ev_tcp_establish,
            Ev::TcpData { .. } => ids.ev_tcp_data,
            Ev::TcpClose { .. } => ids.ev_tcp_close,
            Ev::Timer { .. } => ids.ev_timer,
            Ev::StartHost { .. } => ids.ev_start_host,
            Ev::StopHost { .. } => ids.ev_stop_host,
            Ev::SetReachable { .. } => ids.ev_set_reachable,
        }
    }
}

/// Interned metric handles for every counter the engine touches per
/// event. Interning once at construction keeps the hot loop free of
/// string allocation and registry lookups; the exported names and values
/// are identical to the string-addressed equivalents.
#[derive(Clone, Copy)]
struct EngineIds {
    events_total: MetricId,
    queue_depth_peak: MetricId,
    udp_sent: MetricId,
    udp_dropped: MetricId,
    tcp_connects: MetricId,
    tcp_resets: MetricId,
    tcp_bytes: MetricId,
    tcp_segments_dropped: MetricId,
    ev_udp: MetricId,
    ev_tcp_syn: MetricId,
    ev_tcp_establish: MetricId,
    ev_tcp_data: MetricId,
    ev_tcp_close: MetricId,
    ev_timer: MetricId,
    ev_start_host: MetricId,
    ev_stop_host: MetricId,
    ev_set_reachable: MetricId,
}

impl EngineIds {
    fn intern() -> EngineIds {
        EngineIds {
            events_total: obs::handle("netsim.events_total"),
            queue_depth_peak: obs::handle("netsim.queue_depth_peak"),
            udp_sent: obs::handle("netsim.udp_sent"),
            udp_dropped: obs::handle("netsim.udp_dropped"),
            tcp_connects: obs::handle("netsim.tcp.connects"),
            tcp_resets: obs::handle("netsim.tcp.resets"),
            tcp_bytes: obs::handle("netsim.tcp.bytes"),
            tcp_segments_dropped: obs::handle("netsim.tcp.segments_dropped"),
            ev_udp: obs::handle("netsim.events.udp"),
            ev_tcp_syn: obs::handle("netsim.events.tcp_syn"),
            ev_tcp_establish: obs::handle("netsim.events.tcp_establish"),
            ev_tcp_data: obs::handle("netsim.events.tcp_data"),
            ev_tcp_close: obs::handle("netsim.events.tcp_close"),
            ev_timer: obs::handle("netsim.events.timer"),
            ev_start_host: obs::handle("netsim.events.start_host"),
            ev_stop_host: obs::handle("netsim.events.stop_host"),
            ev_set_reachable: obs::handle("netsim.events.set_reachable"),
        }
    }
}

/// The simulator.
pub struct NetSim {
    now: u64,
    seq: u64,
    queue: TimerWheel<Ev>,
    queue_depth_peak: u64,
    slots: Vec<Slot>,
    index: BTreeMap<HostAddr, HostId>,
    conns: Vec<ConnInfo>,
    rng: StdRng,
    config: SimConfig,
    events_processed: u64,
    udp_sent: u64,
    udp_dropped: u64,
    tcp: TcpCounters,
    ids: EngineIds,
    /// Recycled action vector for [`NetSim::with_host`]: taken before each
    /// host callback, returned by [`NetSim::apply_actions`], so the hot
    /// path reuses one allocation instead of building a fresh `Vec` per
    /// event.
    action_buf: Vec<Action>,
}

impl NetSim {
    /// Create an empty simulation.
    pub fn new(config: SimConfig) -> NetSim {
        NetSim {
            now: 0,
            seq: 0,
            queue: TimerWheel::new(),
            queue_depth_peak: 0,
            slots: Vec::new(),
            index: BTreeMap::new(),
            conns: Vec::new(),
            rng: StdRng::seed_from_u64(config.seed),
            config,
            events_processed: 0,
            udp_sent: 0,
            udp_dropped: 0,
            tcp: TcpCounters::default(),
            ids: EngineIds::intern(),
            action_buf: Vec::new(),
        }
    }

    /// Current simulated time, ms.
    pub fn now_ms(&self) -> u64 {
        self.now
    }

    /// Total events dispatched (diagnostics / benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the scheduler queue depth (diagnostics /
    /// benches; tracked engine-side so it is available without a
    /// recorder installed).
    pub fn queue_depth_peak(&self) -> u64 {
        self.queue_depth_peak
    }

    /// (sent, dropped) UDP datagram counters.
    pub fn udp_counters(&self) -> (u64, u64) {
        (self.udp_sent, self.udp_dropped)
    }

    /// TCP-layer counters: establishes, abortive resets, payload bytes,
    /// blackholed segments.
    pub fn tcp_counters(&self) -> TcpCounters {
        self.tcp
    }

    /// Install a fault window after construction (worlds build their own
    /// `SimConfig`, so the robustness harness injects faults here).
    pub fn add_fault(&mut self, window: FaultWindow) {
        self.config.faults.push(window);
    }

    /// Take `hosts` down together at `at_ms` and bring them back
    /// `down_ms` later — a correlated outage.
    pub fn churn_burst(&mut self, hosts: &[HostId], at_ms: u64, down_ms: u64) {
        for &host in hosts {
            self.schedule_stop(host, at_ms);
            self.schedule_start(host, at_ms + down_ms);
        }
    }

    /// Schedule a reachability change (NAT state) at `at_ms`.
    pub fn schedule_reachable(&mut self, host: HostId, at_ms: u64, reachable: bool) {
        self.push(at_ms, Ev::SetReachable { host, reachable });
    }

    /// Toggle a host's public reachability off and back on `flaps` times,
    /// `period_ms` per half-cycle, starting at `from_ms`.
    pub fn nat_flap(&mut self, host: HostId, from_ms: u64, period_ms: u64, flaps: u32) {
        for i in 0..flaps as u64 {
            self.schedule_reachable(host, from_ms + 2 * i * period_ms, false);
            self.schedule_reachable(host, from_ms + (2 * i + 1) * period_ms, true);
        }
    }

    /// Register a host (initially offline; schedule a start).
    ///
    /// # Panics
    /// Panics if `addr` is already taken — the world generator owns the
    /// address plan, and a collision is a bug there.
    pub fn add_host(&mut self, addr: HostAddr, meta: HostMeta, host: Box<dyn Host>) -> HostId {
        assert!(
            !self.index.contains_key(&addr),
            "address {addr} already in use"
        );
        let id = self.slots.len();
        self.slots.push(Slot {
            host: Some(host),
            addr,
            meta,
            alive: false,
            nat: BTreeMap::new(),
            live_conns: Vec::new(),
        });
        self.index.insert(addr, id);
        id
    }

    /// Schedule a host start at absolute time `at_ms`.
    pub fn schedule_start(&mut self, host: HostId, at_ms: u64) {
        self.push(at_ms, Ev::StartHost { host });
    }

    /// Schedule a host stop at absolute time `at_ms`.
    pub fn schedule_stop(&mut self, host: HostId, at_ms: u64) {
        self.push(at_ms, Ev::StopHost { host });
    }

    /// Whether a host is currently online.
    pub fn is_alive(&self, host: HostId) -> bool {
        self.slots[host].alive
    }

    /// A host's address.
    pub fn host_addr(&self, host: HostId) -> HostAddr {
        self.slots[host].addr
    }

    /// A host's metadata.
    pub fn host_meta(&self, host: HostId) -> &HostMeta {
        &self.slots[host].meta
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.slots.len()
    }

    /// Take a host's behaviour out of the simulation (end of run).
    pub fn remove_host_behaviour(&mut self, host: HostId) -> Option<Box<dyn Host>> {
        self.slots[host].host.take()
    }

    fn push(&mut self, at: u64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(at, seq, ev);
    }

    fn one_way_latency(&mut self, a: HostId, b: HostId) -> u64 {
        let base = latency_between(self.slots[a].meta.region, self.slots[b].meta.region) as u64;
        let jitter = if self.config.jitter_ms > 0 {
            self.rng.gen_range(0..self.config.jitter_ms) as u64
        } else {
            0
        };
        (base + jitter).max(1)
    }

    /// Run until the queue is empty or simulated time exceeds `until_ms`.
    // hotpath -- the main event loop: every simulated event funnels through here
    pub fn run_until(&mut self, until_ms: u64) {
        while let Some((at, _seq, ev)) = self.queue.pop_at_most(until_ms) {
            self.now = at;
            let depth = self.queue.len() as u64 + 1;
            self.queue_depth_peak = self.queue_depth_peak.max(depth);
            // Observability is pure: it reads the scheduler state but never
            // touches the sim RNG or the queue, so instrumented and
            // uninstrumented runs execute identical event sequences. All
            // per-event counters go through interned handles — no string
            // work on this path.
            obs::set_now(at);
            obs::gauge_max_id(self.ids.queue_depth_peak, depth);
            obs::counter_add_id(self.ids.events_total, 1);
            obs::counter_add_id(ev.obs_id(&self.ids), 1);
            self.dispatch(ev);
            self.events_processed += 1;
        }
        self.now = self.now.max(until_ms);
    }

    // hotpath -- per-event demux; runs once per event popped by run_until
    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::StartHost { host } => {
                if !self.slots[host].alive {
                    self.slots[host].alive = true;
                    self.with_host(host, |h, ctx| h.on_start(ctx));
                }
            }
            Ev::StopHost { host } => {
                if self.slots[host].alive {
                    self.with_host(host, |h, ctx| h.on_stop(ctx));
                    self.slots[host].alive = false;
                    self.slots[host].nat.clear();
                    // Close all of its live connections toward the peers.
                    // The per-slot index holds exactly this host's
                    // established connections; sorting restores the
                    // ConnId order the old full-table scan emitted in.
                    let mut dead: Vec<(ConnId, bool)> = self.slots[host]
                        .live_conns
                        .iter()
                        .map(|&id| (id, self.conns[id].initiator != host))
                        .collect();
                    dead.sort_unstable();
                    for (conn, to_initiator) in dead {
                        debug_assert_eq!(self.conns[conn].state, ConnState::Established);
                        self.conns[conn].state = ConnState::Closed;
                        self.unlink_conn(conn);
                        self.tcp.resets += 1;
                        obs::counter_add_id(self.ids.tcp_resets, 1);
                        let delay = self.conn_delay(conn);
                        self.push(self.now + delay, Ev::TcpClose { conn, to_initiator });
                    }
                }
            }
            Ev::SetReachable { host, reachable } => {
                self.slots[host].meta.reachable = reachable;
            }
            Ev::Timer { host, token } => {
                if self.slots[host].alive {
                    self.with_host(host, |h, ctx| h.on_timer(ctx, token));
                }
            }
            Ev::Udp { to, from, bytes } => {
                if !self.slots[to].alive {
                    self.udp_dropped += 1;
                    obs::counter_add_id(self.ids.udp_dropped, 1);
                    return;
                }
                // NAT: unreachable hosts accept only solicited datagrams.
                if !self.slots[to].meta.reachable {
                    let window = self.config.nat_window_ms;
                    let now = self.now;
                    let solicited = matches!(
                        self.slots[to].nat.get(&from),
                        Some(t) if now.saturating_sub(*t) <= window
                    );
                    if !solicited {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        return;
                    }
                }
                self.with_host(to, |h, ctx| h.on_udp(ctx, from, &bytes));
            }
            Ev::TcpSyn { conn } => {
                let remote_addr = self.conns[conn].remote_addr;
                let local_addr = self.conns[conn].local_addr;
                let target = self.index.get(&remote_addr).copied();
                let blackholed =
                    self.config
                        .faults
                        .tcp_connect_blocked(self.now, local_addr, remote_addr);
                let ok = !blackholed
                    && match target {
                        Some(t) => self.slots[t].alive && self.slots[t].meta.reachable,
                        None => false,
                    };
                let delay = self.conn_delay(conn);
                if ok {
                    let t = target.unwrap();
                    self.conns[conn].acceptor = Some(t);
                    // Refine RTT with the acceptor's actual region.
                    let lat = self.one_way_latency(self.conns[conn].initiator, t);
                    self.conns[conn].rtt_ms = (2 * lat) as u32;
                    let local = self.conns[conn].local_addr;
                    self.with_host(t, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::Incoming { conn, peer: local })
                    });
                }
                self.push(self.now + delay, Ev::TcpEstablish { conn, ok });
            }
            Ev::TcpEstablish { conn, ok } => {
                let c = self.conns[conn];
                if c.state != ConnState::Dialing {
                    return;
                }
                if !self.slots[c.initiator].alive {
                    self.conns[conn].state = ConnState::Closed;
                    return;
                }
                if ok {
                    self.conns[conn].state = ConnState::Established;
                    self.link_conn(conn);
                    self.tcp.connects += 1;
                    obs::counter_add_id(self.ids.tcp_connects, 1);
                    let peer = c.remote_addr;
                    self.with_host(c.initiator, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::Connected { conn, peer })
                    });
                } else {
                    self.conns[conn].state = ConnState::Closed;
                    self.with_host(c.initiator, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::ConnectFailed { conn })
                    });
                }
            }
            Ev::TcpData {
                conn,
                to_initiator,
                bytes,
            } => {
                let c = self.conns[conn];
                if c.state != ConnState::Established {
                    return;
                }
                let dest = if to_initiator {
                    Some(c.initiator)
                } else {
                    c.acceptor
                };
                let Some(dest) = dest else { return };
                if !self.slots[dest].alive {
                    return;
                }
                self.with_host(dest, |h, ctx| h.on_tcp(ctx, TcpEvent::Data { conn, bytes }));
            }
            Ev::TcpClose { conn, to_initiator } => {
                let c = self.conns[conn];
                let dest = if to_initiator {
                    Some(c.initiator)
                } else {
                    c.acceptor
                };
                let Some(dest) = dest else { return };
                if !self.slots[dest].alive {
                    return;
                }
                self.with_host(dest, |h, ctx| h.on_tcp(ctx, TcpEvent::Closed { conn }));
            }
        }
    }

    // One-way delay for events on an established connection. Deliberately
    // jitter-free: TCP is an ordered stream, and per-event jitter could
    // deliver a Closed before the final Data segment (losing, e.g., a
    // DISCONNECT frame sent just before hangup). Path jitter is baked into
    // the connection's RTT when the SYN resolves.
    fn conn_delay(&mut self, conn: ConnId) -> u64 {
        (self.conns[conn].rtt_ms / 2).max(1) as u64
    }

    /// Record an established connection in both endpoints' live lists.
    fn link_conn(&mut self, conn: ConnId) {
        let c = self.conns[conn];
        self.slots[c.initiator].live_conns.push(conn);
        if let Some(acc) = c.acceptor {
            if acc != c.initiator {
                self.slots[acc].live_conns.push(conn);
            }
        }
    }

    /// Remove a connection from both endpoints' live lists (call on
    /// every Established → Closed transition).
    fn unlink_conn(&mut self, conn: ConnId) {
        let c = self.conns[conn];
        self.slots[c.initiator].live_conns.retain(|&id| id != conn);
        if let Some(acc) = c.acceptor {
            if acc != c.initiator {
                self.slots[acc].live_conns.retain(|&id| id != conn);
            }
        }
    }

    /// Take the host out of its slot, run `f` with a fresh Ctx, apply the
    /// resulting actions. The action vector is recycled through
    /// `action_buf` so steady-state event handling never allocates it;
    /// `apply_actions` never re-enters `with_host`, so the take/restore
    /// pair cannot nest.
    // hotpath -- runs once per host callback; allocation here scales with event count
    fn with_host<F>(&mut self, host: HostId, f: F)
    where
        F: FnOnce(&mut dyn Host, &mut Ctx),
    {
        let Some(mut behaviour) = self.slots[host].host.take() else {
            return;
        };
        let mut ctx = Ctx {
            now_ms: self.now,
            host,
            local: self.slots[host].addr,
            rng: &mut self.rng,
            conn_info: &self.conns,
            actions: std::mem::take(&mut self.action_buf),
            next_conn: self.conns.len(),
            new_conns: 0,
        };
        f(behaviour.as_mut(), &mut ctx);
        let actions = ctx.actions;
        self.slots[host].host = Some(behaviour);
        self.apply_actions(host, actions);
    }

    // hotpath -- executes every action a host callback emits
    fn apply_actions(&mut self, host: HostId, mut actions: Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::SendUdp { to, bytes } => {
                    self.udp_sent += 1;
                    obs::counter_add_id(self.ids.udp_sent, 1);
                    // NAT pinhole for the sender.
                    let now = self.now;
                    self.slots[host].nat.insert(to, now);
                    if self.rng.gen_bool(self.config.udp_loss) {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        continue;
                    }
                    let Some(&dest) = self.index.get(&to) else {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        continue;
                    };
                    let from = self.slots[host].addr;
                    let extra = if self.config.faults.is_empty() {
                        0
                    } else {
                        match self.config.faults.udp_fate(now, from, to, &mut self.rng) {
                            UdpFate::Drop => {
                                self.udp_dropped += 1;
                                obs::counter_add_id(self.ids.udp_dropped, 1);
                                continue;
                            }
                            UdpFate::Deliver { extra_ms } => extra_ms,
                        }
                    };
                    let lat = self.one_way_latency(host, dest) + extra;
                    self.push(
                        now + lat,
                        Ev::Udp {
                            to: dest,
                            from,
                            bytes,
                        },
                    );
                }
                Action::TcpConnect { conn, to } => {
                    debug_assert_eq!(conn, self.conns.len(), "conn id allocation out of sync");
                    // Estimate RTT with the local region twice until the SYN
                    // resolves the peer.
                    let lat = self.one_way_latency(host, host).max(1);
                    self.conns.push(ConnInfo {
                        initiator: host,
                        acceptor: None,
                        remote_addr: to,
                        local_addr: self.slots[host].addr,
                        state: ConnState::Dialing,
                        rtt_ms: (2 * lat) as u32,
                    });
                    let delay = self.conn_delay(conn);
                    self.push(self.now + delay, Ev::TcpSyn { conn });
                }
                Action::TcpSend { conn, bytes } => {
                    if self.conns.get(conn).map(|c| c.state) != Some(ConnState::Established) {
                        continue;
                    }
                    let to_initiator = self.conns[conn].initiator != host;
                    let mut bytes = bytes;
                    let mut extra = 0;
                    if !self.config.faults.is_empty() {
                        let a = self.conns[conn].local_addr;
                        let b = self.conns[conn].remote_addr;
                        match self
                            .config
                            .faults
                            .tcp_fate(self.now, a, b, &mut bytes, &mut self.rng)
                        {
                            TcpFate::Drop => {
                                self.tcp.segments_dropped += 1;
                                obs::counter_add_id(self.ids.tcp_segments_dropped, 1);
                                continue;
                            }
                            TcpFate::Reset => {
                                self.conns[conn].state = ConnState::Closed;
                                self.unlink_conn(conn);
                                self.tcp.resets += 1;
                                obs::counter_add_id(self.ids.tcp_resets, 1);
                                let delay = self.conn_delay(conn);
                                for to_initiator in [true, false] {
                                    self.push(
                                        self.now + delay,
                                        Ev::TcpClose { conn, to_initiator },
                                    );
                                }
                                continue;
                            }
                            TcpFate::Deliver { extra_ms } => extra = extra_ms,
                        }
                    }
                    self.tcp.bytes += bytes.len() as u64;
                    obs::counter_add_id(self.ids.tcp_bytes, bytes.len() as u64);
                    let delay = self.conn_delay(conn) + extra;
                    self.push(
                        self.now + delay,
                        Ev::TcpData {
                            conn,
                            to_initiator,
                            bytes,
                        },
                    );
                }
                Action::TcpClose { conn } => {
                    if let Some(c) = self.conns.get(conn) {
                        if c.state == ConnState::Established || c.state == ConnState::Dialing {
                            let was_established = c.state == ConnState::Established;
                            let to_initiator = c.initiator != host;
                            self.conns[conn].state = ConnState::Closed;
                            if was_established {
                                self.unlink_conn(conn);
                            }
                            let delay = self.conn_delay(conn);
                            self.push(self.now + delay, Ev::TcpClose { conn, to_initiator });
                        }
                    }
                }
                Action::SetTimer { delay_ms, token } => {
                    self.push(self.now + delay_ms, Ev::Timer { host, token });
                }
            }
        }
        // Hand the (now empty) vector back for the next with_host call.
        self.action_buf = actions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Region;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<String>>>;

    /// A scriptable host for engine tests.
    struct Probe {
        log: Log,
        name: &'static str,
        /// Peer to ping over UDP at start.
        udp_target: Option<HostAddr>,
        /// Peer to dial over TCP at start.
        tcp_target: Option<HostAddr>,
        /// Echo received UDP back to the sender.
        echo: bool,
        /// Bytes to send once a TCP conn establishes.
        tcp_payload: Option<Vec<u8>>,
    }

    impl Probe {
        fn new(name: &'static str, log: Log) -> Probe {
            Probe {
                log,
                name,
                udp_target: None,
                tcp_target: None,
                echo: false,
                tcp_payload: None,
            }
        }
        fn logit(&self, s: String) {
            self.log.borrow_mut().push(format!("{} {}", self.name, s));
        }
    }

    impl Host for Probe {
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx) {
            self.logit(format!("start@{}", ctx.now_ms));
            if let Some(t) = self.udp_target {
                ctx.send_udp(t, b"hello".to_vec());
            }
            if let Some(t) = self.tcp_target {
                let conn = ctx.tcp_connect(t);
                self.logit(format!("dial conn={conn}"));
            }
        }
        fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
            self.logit(format!(
                "udp@{} from {} len={}",
                ctx.now_ms,
                from,
                datagram.len()
            ));
            if self.echo {
                ctx.send_udp(from, datagram.to_vec());
            }
        }
        fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
            match event {
                TcpEvent::Connected { conn, .. } => {
                    self.logit(format!("connected@{} rtt={}", ctx.now_ms, ctx.rtt_ms(conn)));
                    if let Some(p) = self.tcp_payload.take() {
                        ctx.tcp_send(conn, p);
                    }
                }
                TcpEvent::ConnectFailed { .. } => self.logit(format!("connfail@{}", ctx.now_ms)),
                TcpEvent::Incoming { .. } => self.logit(format!("incoming@{}", ctx.now_ms)),
                TcpEvent::Data { bytes, .. } => {
                    self.logit(format!("data@{} len={}", ctx.now_ms, bytes.len()))
                }
                TcpEvent::Closed { .. } => self.logit(format!("closed@{}", ctx.now_ms)),
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
            self.logit(format!("timer@{} token={token}", ctx.now_ms));
        }
        fn on_stop(&mut self, ctx: &mut Ctx) {
            self.logit(format!("stop@{}", ctx.now_ms));
        }
    }

    fn meta(reachable: bool) -> HostMeta {
        HostMeta {
            country: "US",
            asn: "Test",
            region: Region::NorthAmerica,
            reachable,
        }
    }

    fn addr(last: u8) -> HostAddr {
        HostAddr::new(Ipv4Addr::new(10, 0, 0, last), 30303)
    }

    fn lossless() -> SimConfig {
        SimConfig {
            udp_loss: 0.0,
            jitter_ms: 0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn udp_delivery_with_latency() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        let b = {
            let mut b = Probe::new("b", log.clone());
            b.echo = true;
            b
        };
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        let log = log.borrow();
        // a sends at 0; intra-region base latency is 15ms
        assert!(
            log.iter()
                .any(|l| l == "b udp@15 from 10.0.0.1:30303 len=5"),
            "{log:?}"
        );
        // echo arrives back at 30
        assert!(
            log.iter()
                .any(|l| l == "a udp@30 from 10.0.0.2:30303 len=5"),
            "{log:?}"
        );
    }

    #[test]
    fn udp_to_nated_host_dropped_until_solicited() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2)); // a is NATed and sends first
        let mut b = Probe::new("b", log.clone());
        b.echo = true;
        let ha = sim.add_host(addr(1), meta(false), Box::new(a)); // unreachable
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        // The echo *is* delivered because a's outbound punched a pinhole.
        assert!(log.borrow().iter().any(|l| l.starts_with("a udp@")));

        // Fresh sim: b sends unsolicited to NATed a → dropped.
        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let a = Probe::new("a", log2.clone());
        let mut b = Probe::new("b", log2.clone());
        b.udp_target = Some(addr(1));
        let ha = sim.add_host(addr(1), meta(false), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        assert!(
            !log2.borrow().iter().any(|l| l.starts_with("a udp@")),
            "{:?}",
            log2.borrow()
        );
        let (_, dropped) = sim.udp_counters();
        assert_eq!(dropped, 1);
    }

    #[test]
    fn tcp_connect_send_close() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![0u8; 100]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        let log = log.borrow();
        assert!(log.iter().any(|l| l.starts_with("b incoming@")), "{log:?}");
        assert!(log.iter().any(|l| l.starts_with("a connected@")), "{log:?}");
        assert!(
            log.iter()
                .any(|l| l.starts_with("b data@") && l.ends_with("len=100")),
            "{log:?}"
        );
        // RTT is observable and sane (2 × 15ms intra-region)
        assert!(log.iter().any(|l| l.contains("rtt=30")), "{log:?}");
    }

    #[test]
    fn tcp_connect_to_dead_or_unreachable_fails() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(9)); // nobody there
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        sim.schedule_start(ha, 0);
        sim.run_until(10_000);
        assert!(log.borrow().iter().any(|l| l.starts_with("a connfail@")));

        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log2.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log2.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(false), Box::new(b)); // NATed: no inbound TCP
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        assert!(log2.borrow().iter().any(|l| l.starts_with("a connfail@")));
    }

    #[test]
    fn stop_closes_connections_and_drops_timers() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.schedule_stop(hb, 5_000);
        sim.run_until(20_000);
        let log = log.borrow();
        assert!(log.iter().any(|l| l == "b stop@5000"), "{log:?}");
        assert!(log.iter().any(|l| l.starts_with("a closed@")), "{log:?}");
        assert!(!sim.is_alive(hb));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerHost {
            log: Log,
        }
        impl Host for TimerHost {
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }

            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_udp(&mut self, _: &mut Ctx, _: HostAddr, _: &[u8]) {}
            fn on_tcp(&mut self, _: &mut Ctx, _: TcpEvent) {}
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                self.log
                    .borrow_mut()
                    .push(format!("t{token}@{}", ctx.now_ms));
            }
        }
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let h = sim.add_host(
            addr(1),
            meta(true),
            Box::new(TimerHost { log: log.clone() }),
        );
        sim.schedule_start(h, 0);
        sim.run_until(1_000);
        assert_eq!(*log.borrow(), vec!["t1@100", "t2@200", "t3@300"]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64, u64) {
            let mut sim = NetSim::new(SimConfig {
                seed,
                udp_loss: 0.3,
                jitter_ms: 10,
                ..SimConfig::default()
            });
            let log: Log = Rc::default();
            let mut hosts = Vec::new();
            for i in 1..=10u8 {
                let mut p = Probe::new("x", log.clone());
                p.echo = true;
                p.udp_target = Some(addr((i % 10) + 1));
                hosts.push(sim.add_host(addr(i), meta(true), Box::new(p)));
            }
            for h in &hosts {
                sim.schedule_start(*h, 0);
            }
            sim.run_until(3_000);
            let (s, d) = sim.udp_counters();
            (sim.events_processed(), s, d)
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // different seed, different loss pattern
    }

    #[test]
    fn duplicate_address_panics() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_host(addr(1), meta(true), Box::new(Probe::new("b", log)));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tcp_counters_track_connects_bytes_and_death_resets() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![0u8; 100]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(2_000);
        let c = sim.tcp_counters();
        assert_eq!(c.connects, 1);
        assert_eq!(c.bytes, 100);
        assert_eq!(c.resets, 0);
        assert_eq!(c.segments_dropped, 0);
        // Killing b while the connection is up counts as an abortive reset.
        sim.schedule_stop(hb, 3_000);
        sim.run_until(5_000);
        assert_eq!(sim.tcp_counters().resets, 1);
    }

    #[test]
    fn udp_burst_loss_window_only_drops_inside_window() {
        // a pings b every 100ms via a timer; a 0.999-loss window covers
        // [1000, 2000). Outside the window everything is delivered.
        struct Pinger {
            log: Log,
            target: HostAddr,
        }
        impl Host for Pinger {
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(100, 1);
            }
            fn on_udp(&mut self, _: &mut Ctx, _: HostAddr, _: &[u8]) {}
            fn on_tcp(&mut self, _: &mut Ctx, _: TcpEvent) {}
            fn on_timer(&mut self, ctx: &mut Ctx, _: u64) {
                ctx.send_udp(self.target, b"ping".to_vec());
                ctx.set_timer(100, 1);
            }
            fn on_stop(&mut self, _: &mut Ctx) {
                self.log.borrow_mut().clear();
            }
        }
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut b = Probe::new("b", log.clone());
        b.echo = false;
        let ha = sim.add_host(
            addr(1),
            meta(true),
            Box::new(Pinger {
                log: log.clone(),
                target: addr(2),
            }),
        );
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Pair(addr(1), addr(2)),
            from_ms: 1_000,
            until_ms: 2_000,
            fault: crate::faults::Fault::UdpLoss(0.999),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(3_000);
        let log = log.borrow();
        let arrivals_in = |lo: u64, hi: u64| {
            log.iter()
                .filter(|l| {
                    l.starts_with("b udp@")
                        && l.split('@')
                            .nth(1)
                            .and_then(|r| r.split(' ').next())
                            .and_then(|t| t.parse::<u64>().ok())
                            .map(|t| t >= lo && t < hi)
                            .unwrap_or(false)
                })
                .count()
        };
        // ~10 sends per second; the window eats essentially all of them.
        assert!(arrivals_in(0, 1_000) >= 9, "{log:?}");
        assert!(arrivals_in(1_020, 2_000) <= 1, "{log:?}");
        assert!(arrivals_in(2_000, 3_000) >= 9, "{log:?}");
    }

    #[test]
    fn blackhole_fails_tcp_connects_and_reset_kills_streams() {
        // Blackhole window: the dial fails even though b is alive.
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Host(addr(2)),
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::Blackhole,
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        assert!(
            log.borrow().iter().any(|l| l.starts_with("a connfail@")),
            "{:?}",
            log.borrow()
        );

        // Reset window: the connection establishes, then the first data
        // segment resets it — both sides observe Closed.
        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log2.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 64]);
        let b = Probe::new("b", log2.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            // TcpReset only affects data segments, not the establishment
            // handshake, so the window can cover the whole run.
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::TcpReset,
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        let log2 = log2.borrow();
        assert!(
            log2.iter().any(|l| l.starts_with("a connected@")),
            "{log2:?}"
        );
        assert!(!log2.iter().any(|l| l.starts_with("b data@")), "{log2:?}");
        assert!(log2.iter().any(|l| l.starts_with("a closed@")), "{log2:?}");
        assert!(log2.iter().any(|l| l.starts_with("b closed@")), "{log2:?}");
        assert_eq!(sim.tcp_counters().resets, 1);
    }

    #[test]
    fn truncation_shortens_delivered_segments() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 64]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::TcpTruncate(16),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        assert!(
            log.borrow()
                .iter()
                .any(|l| l.starts_with("b data@") && l.ends_with("len=16")),
            "{:?}",
            log.borrow()
        );
        assert_eq!(sim.tcp_counters().bytes, 16);
    }

    #[test]
    fn latency_spike_delays_udp() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::LatencySpike(500),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        // Base intra-region latency is 15ms; the spike pushes it to 515.
        assert!(
            log.borrow().iter().any(|l| l.starts_with("b udp@515 ")),
            "{:?}",
            log.borrow()
        );
    }

    #[test]
    fn nat_flap_toggles_reachability_on_schedule() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let a = Probe::new("a", log.clone());
        let mut b = Probe::new("b", log.clone());
        b.udp_target = None;
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        // One flap: unreachable during [1000, 2000).
        sim.nat_flap(ha, 1_000, 1_000, 1);
        sim.run_until(500);
        assert!(sim.host_meta(ha).reachable);
        sim.run_until(1_500);
        assert!(!sim.host_meta(ha).reachable);
        sim.run_until(2_500);
        assert!(sim.host_meta(ha).reachable);
    }

    #[test]
    fn churn_burst_takes_hosts_down_together() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let ha = sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        let hb = sim.add_host(addr(2), meta(true), Box::new(Probe::new("b", log.clone())));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.churn_burst(&[ha, hb], 1_000, 500);
        sim.run_until(1_200);
        assert!(!sim.is_alive(ha) && !sim.is_alive(hb));
        sim.run_until(2_000);
        assert!(sim.is_alive(ha) && sim.is_alive(hb));
        let log = log.borrow();
        assert!(log.iter().any(|l| l == "a stop@1000"), "{log:?}");
        assert!(log.iter().any(|l| l == "a start@1500"), "{log:?}");
    }

    #[test]
    fn queue_depth_peak_export_matches_engine_high_water_mark() {
        // The per-event gauge now flows through an interned MetricId; the
        // exported value must still equal the engine-side high-water mark
        // and keep its exact Prometheus rendering.
        let rec = obs::Recorder::new();
        rec.install();
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 32]);
        let mut b = Probe::new("b", log.clone());
        b.echo = true;
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);

        let peak = sim.queue_depth_peak();
        assert!(peak >= 2, "ping-pong world should stack events, got {peak}");
        assert_eq!(rec.gauge("netsim.queue_depth_peak"), peak);
        assert!(
            rec.prometheus()
                .contains(&format!("netsim_queue_depth_peak {peak}\n")),
            "gauge missing from the Prometheus export"
        );
        obs::uninstall();
    }

    #[test]
    fn restart_after_stop_calls_on_start_again() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let h = sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        sim.schedule_start(h, 0);
        sim.schedule_stop(h, 100);
        sim.schedule_start(h, 200);
        sim.run_until(1_000);
        assert_eq!(
            *log.borrow(),
            vec!["a start@0", "a stop@100", "a start@200"]
        );
    }
}
