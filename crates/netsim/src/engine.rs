//! The discrete-event engine: hosts, UDP, TCP, timers, churn.

use crate::faults::{Fault, FaultSchedule, FaultWindow, LinkSelector, TcpFate, UdpFate};
use crate::payload::Payload;
use crate::sched::TimerWheel;
use crate::snap::{SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION};
use crate::topology::{latency_between, HostMeta};
use obs::MetricId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Identifies a host inside one simulation.
pub type HostId = usize;

/// Identifies a TCP connection inside one simulation.
///
/// Packs a slab index in the low 32 bits and a generation in the high
/// bits: connection storage is recycled once a connection closes and its
/// last in-flight event drains, and the generation check turns a stale id
/// still held by a host into a no-op instead of an aliased access.
pub type ConnId = usize;

const CONN_IDX_BITS: u32 = 32;
const CONN_IDX_MASK: usize = (1 << CONN_IDX_BITS) - 1;

fn conn_pack(generation: u32, idx: usize) -> ConnId {
    debug_assert!(idx <= CONN_IDX_MASK);
    ((generation as usize) << CONN_IDX_BITS) | idx
}

fn conn_idx(id: ConnId) -> usize {
    id & CONN_IDX_MASK
}

fn conn_gen(id: ConnId) -> u32 {
    (id >> CONN_IDX_BITS) as u32
}

/// A transport address: the simulator's sockets are `(ip, port)` pairs; a
/// host binds one port for both its UDP (discovery) and TCP (RLPx)
/// traffic, like an Ethereum node's default 30303/30303.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostAddr {
    /// IPv4 address.
    pub ip: Ipv4Addr,
    /// Port (shared by UDP and TCP in this model).
    pub port: u16,
}

impl HostAddr {
    /// Construct.
    pub fn new(ip: Ipv4Addr, port: u16) -> HostAddr {
        HostAddr { ip, port }
    }
}

impl std::fmt::Display for HostAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// TCP notifications delivered to a host.
#[derive(Debug, Clone, PartialEq)]
pub enum TcpEvent {
    /// Our dial completed.
    Connected {
        /// The connection.
        conn: ConnId,
        /// Remote address.
        peer: HostAddr,
    },
    /// Our dial failed (dead, unreachable, or NATed target).
    ConnectFailed {
        /// The connection that failed.
        conn: ConnId,
    },
    /// A remote dialed us.
    Incoming {
        /// The connection.
        conn: ConnId,
        /// Remote address.
        peer: HostAddr,
    },
    /// Ordered stream data arrived.
    Data {
        /// Payload bytes (cheaply clonable shared buffer; derefs to
        /// `&[u8]`).
        bytes: Payload,
        /// The connection.
        conn: ConnId,
    },
    /// The peer closed (or died).
    Closed {
        /// The connection.
        conn: ConnId,
    },
}

/// Behaviour attached to a simulated host. Implementations hold the
/// protocol state machines and pump bytes through them.
pub trait Host {
    /// The host came online (initial start or churn restart).
    fn on_start(&mut self, ctx: &mut Ctx);
    /// A UDP datagram arrived.
    fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]);
    /// A TCP event occurred.
    fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent);
    /// A timer set via [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut Ctx, token: u64);
    /// The host is going offline (connections are closed by the engine).
    fn on_stop(&mut self, _ctx: &mut Ctx) {}
    /// Serialize the behaviour's dynamic state for a world snapshot.
    /// `None` (the default) marks the behaviour as non-checkpointable,
    /// which fails [`NetSim::snapshot`] with
    /// [`SnapError::Unsupported`](crate::snap::SnapError::Unsupported).
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }
    /// Restore state captured by [`Host::save_state`] into a freshly
    /// rebuilt behaviour (the restore shell re-creates every behaviour
    /// with its static configuration first; this call then overwrites
    /// the dynamic parts). Returns `false` (the default) when the
    /// behaviour does not support restore, which fails
    /// [`NetSim::restore`].
    fn load_state(&mut self, _bytes: &[u8]) -> bool {
        false
    }
    /// Surrender the behaviour as `Any` so experiment harnesses can
    /// downcast it back to the concrete type and read its logs after
    /// [`NetSim::remove_host_behaviour`].
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed (full determinism).
    pub seed: u64,
    /// Probability a UDP datagram is silently lost.
    pub udp_loss: f64,
    /// Extra per-packet latency jitter bound, ms.
    pub jitter_ms: u32,
    /// How long a NAT pinhole stays open after outbound traffic, ms.
    pub nat_window_ms: u64,
    /// Scheduler shards. `1` (the default) runs the classic single
    /// wheel; larger counts partition hosts round-robin across per-shard
    /// wheels merged under the conservative barrier-epoch protocol
    /// (lookahead = [`crate::min_link_latency_ms`]). Any shard count
    /// produces byte-identical traces on the same seed — see DESIGN.md
    /// § Sharded execution.
    pub shards: usize,
    /// Per-link fault windows (see [`crate::faults`]). Usually empty at
    /// construction and extended later via [`NetSim::add_fault`].
    pub faults: FaultSchedule,
}

impl Default for SimConfig {
    fn default() -> SimConfig {
        SimConfig {
            seed: 1804,
            udp_loss: 0.01,
            jitter_ms: 8,
            nat_window_ms: 120_000,
            shards: 1,
            faults: FaultSchedule::default(),
        }
    }
}

/// TCP-layer counters (the UDP side has [`NetSim::udp_counters`]; fault
/// scenarios assert against these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpCounters {
    /// Connections that reached the `Established` state.
    pub connects: u64,
    /// Abortive teardowns: fault-injected resets plus connections killed
    /// by a host death.
    pub resets: u64,
    /// Payload bytes accepted for delivery (post-truncation).
    pub bytes: u64,
    /// Segments silently lost to blackhole windows.
    pub segments_dropped: u64,
}

/// What a host asks the engine to do; applied after the callback returns.
enum Action {
    SendUdp { to: HostAddr, bytes: Payload },
    TcpConnect { conn: ConnId, to: HostAddr },
    TcpSend { conn: ConnId, bytes: Payload },
    TcpClose { conn: ConnId },
    SetTimer { delay_ms: u64, token: u64 },
}

/// The API surface a host sees during a callback.
pub struct Ctx<'a> {
    /// Current simulated time, ms.
    pub now_ms: u64,
    host: HostId,
    local: HostAddr,
    rng: &'a mut StdRng,
    conn_entries: &'a [ConnEntry],
    conn_free: &'a [u32],
    actions: Vec<Action>,
    new_conns: usize,
}

impl<'a> Ctx<'a> {
    /// This host's id.
    pub fn host_id(&self) -> HostId {
        self.host
    }

    /// This host's address.
    pub fn local_addr(&self) -> HostAddr {
        self.local
    }

    /// Deterministic randomness.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Send a UDP datagram. Accepts a `Vec<u8>` or a shared [`Payload`]
    /// (e.g. to fan one buffer out to many peers without copies).
    pub fn send_udp(&mut self, to: HostAddr, bytes: impl Into<Payload>) {
        self.actions.push(Action::SendUdp {
            to,
            bytes: bytes.into(),
        });
    }

    /// Open a TCP connection; resolves to `Connected` or `ConnectFailed`.
    pub fn tcp_connect(&mut self, to: HostAddr) -> ConnId {
        // Preview the engine's slab allocation: the k-th connection this
        // callback opens pops the free list from its top, then extends the
        // slab. `apply_actions` performs the identical walk when the
        // action lands, so the id handed out here matches the engine's.
        let k = self.new_conns;
        self.new_conns += 1;
        let conn = if k < self.conn_free.len() {
            let idx = self.conn_free[self.conn_free.len() - 1 - k] as usize;
            conn_pack(self.conn_entries[idx].generation, idx)
        } else {
            conn_pack(0, self.conn_entries.len() + (k - self.conn_free.len()))
        };
        self.actions.push(Action::TcpConnect { conn, to });
        conn
    }

    /// Send bytes on an established connection. Accepts a `Vec<u8>` or a
    /// shared [`Payload`].
    pub fn tcp_send(&mut self, conn: ConnId, bytes: impl Into<Payload>) {
        self.actions.push(Action::TcpSend {
            conn,
            bytes: bytes.into(),
        });
    }

    /// Close a connection (peer gets `Closed` after one latency).
    pub fn tcp_close(&mut self, conn: ConnId) {
        self.actions.push(Action::TcpClose { conn });
    }

    /// Arrange an `on_timer(token)` callback after `delay_ms`.
    pub fn set_timer(&mut self, delay_ms: u64, token: u64) {
        self.actions.push(Action::SetTimer { delay_ms, token });
    }

    /// The connection's smoothed RTT in ms (what the paper's crawler logs
    /// as connection latency). Zero for unknown, unestablished, or stale
    /// (recycled-cell) connections.
    pub fn rtt_ms(&self, conn: ConnId) -> u32 {
        self.conn_entries
            .get(conn_idx(conn))
            .filter(|e| e.generation == conn_gen(conn))
            .map(|e| e.info.rtt_ms)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    Dialing,
    Established,
    Closed,
}

// shard-state -- per-connection record; migrates with whichever shard owns the connection
#[derive(Debug, Clone, Copy)]
struct ConnInfo {
    initiator: HostId,
    acceptor: Option<HostId>,
    remote_addr: HostAddr,
    local_addr: HostAddr,
    state: ConnState,
    rtt_ms: u32,
}

// shard-state -- slab cell for one connection; storage is recycled under a generation bump
struct ConnEntry {
    /// Bumped every time the cell is freed: any id carrying an older
    /// generation is stale, and every access through it is a no-op.
    generation: u32,
    /// Scheduled events still referencing this connection. The cell is
    /// recycled only once the connection is Closed *and* this hits zero,
    /// so a queued event can never observe a reused cell.
    pending: u32,
    info: ConnInfo,
}

// shard-state -- per-host record; the unit the sharded engine partitions across wheels
struct Slot {
    host: Option<Box<dyn Host>>,
    addr: HostAddr,
    meta: HostMeta,
    alive: bool,
    /// Which scheduler shard owns this host's events.
    shard: u32,
    /// This host's deterministic RNG stream. Every draw the engine makes
    /// on behalf of a host (latency jitter, loss coins, fault dice, and
    /// the host's own `Ctx::rng`) comes from the stream of the event's
    /// owner, so a stream's evolution depends only on that host's own
    /// event history — never on how other hosts' events interleave
    /// across shards.
    rng: StdRng,
    /// Key counter for events pushed while this host's events dispatch
    /// (see [`NetSim::push`]).
    next_key: u32,
    /// Outbound UDP contacts for NAT pinholes: peer addr → last send time.
    nat: NatTable,
    /// Established connections this host participates in. Lets a host
    /// stop tear down exactly its own connections instead of scanning
    /// every connection ever created.
    live_conns: Vec<ConnId>,
}

// shard-state -- provenance rides with its queued event across shard boundaries
/// Causal provenance minted at push time: the scheduler key of the
/// nearest causal-ancestor dispatch that recorded a trace event
/// (`cause`, 0 = no traced ancestor / pushed from outside any dispatch)
/// and the number of traced hops back to such an external root
/// (`depth`). Skipping silent dispatches keeps every recorded chain
/// link resolvable from the trace export alone. Both are pure functions
/// of per-host event histories, so they are identical under any shard
/// count.
#[derive(Clone, Copy)]
struct Prov {
    cause: u64,
    depth: u32,
}

/// Event-kind names for profiler attribution, indexed by
/// [`Ev::kind_idx`]. `&'static` so the profiler hotpath stores indices
/// and never allocates.
const EV_KIND_NAMES: [&str; 9] = [
    "udp",
    "tcp_syn",
    "tcp_establish",
    "tcp_data",
    "tcp_close",
    "timer",
    "start_host",
    "stop_host",
    "set_reachable",
];

// shard-state -- events cross shard boundaries when sender and receiver land on different workers
enum Ev {
    Udp {
        to: HostId,
        from: HostAddr,
        bytes: Payload,
    },
    TcpSyn {
        conn: ConnId,
    },
    TcpEstablish {
        conn: ConnId,
        ok: bool,
    },
    TcpData {
        conn: ConnId,
        to_initiator: bool,
        bytes: Payload,
    },
    TcpClose {
        conn: ConnId,
        to_initiator: bool,
    },
    Timer {
        host: HostId,
        token: u64,
    },
    StartHost {
        host: HostId,
    },
    StopHost {
        host: HostId,
    },
    SetReachable {
        host: HostId,
        reachable: bool,
    },
}

impl Ev {
    /// The connection a queued event keeps alive, if any: while the event
    /// sits in a wheel it pins the slab cell through its pending count.
    fn conn_ref(&self) -> Option<ConnId> {
        match self {
            Ev::TcpSyn { conn }
            | Ev::TcpEstablish { conn, .. }
            | Ev::TcpData { conn, .. }
            | Ev::TcpClose { conn, .. } => Some(*conn),
            _ => None,
        }
    }

    /// Index into [`EV_KIND_NAMES`] for profiler cost attribution.
    fn kind_idx(&self) -> usize {
        match self {
            Ev::Udp { .. } => 0,
            Ev::TcpSyn { .. } => 1,
            Ev::TcpEstablish { .. } => 2,
            Ev::TcpData { .. } => 3,
            Ev::TcpClose { .. } => 4,
            Ev::Timer { .. } => 5,
            Ev::StartHost { .. } => 6,
            Ev::StopHost { .. } => 7,
            Ev::SetReachable { .. } => 8,
        }
    }

    /// Interned handle of the per-kind event-mix counter.
    fn obs_id(&self, ids: &EngineIds) -> MetricId {
        match self {
            Ev::Udp { .. } => ids.ev_udp,
            Ev::TcpSyn { .. } => ids.ev_tcp_syn,
            Ev::TcpEstablish { .. } => ids.ev_tcp_establish,
            Ev::TcpData { .. } => ids.ev_tcp_data,
            Ev::TcpClose { .. } => ids.ev_tcp_close,
            Ev::Timer { .. } => ids.ev_timer,
            Ev::StartHost { .. } => ids.ev_start_host,
            Ev::StopHost { .. } => ids.ev_stop_host,
            Ev::SetReachable { .. } => ids.ev_set_reachable,
        }
    }
}

/// Interned metric handles for every counter the engine touches per
/// event. Interning once at construction keeps the hot loop free of
/// string allocation and registry lookups; the exported names and values
/// are identical to the string-addressed equivalents.
#[derive(Clone, Copy)]
struct EngineIds {
    events_total: MetricId,
    queue_depth_peak: MetricId,
    udp_sent: MetricId,
    udp_dropped: MetricId,
    tcp_connects: MetricId,
    tcp_resets: MetricId,
    tcp_bytes: MetricId,
    tcp_segments_dropped: MetricId,
    ev_udp: MetricId,
    ev_tcp_syn: MetricId,
    ev_tcp_establish: MetricId,
    ev_tcp_data: MetricId,
    ev_tcp_close: MetricId,
    ev_timer: MetricId,
    ev_start_host: MetricId,
    ev_stop_host: MetricId,
    ev_set_reachable: MetricId,
}

impl EngineIds {
    fn intern() -> EngineIds {
        EngineIds {
            events_total: obs::handle("netsim.events_total"),
            queue_depth_peak: obs::handle("netsim.queue_depth_peak"),
            udp_sent: obs::handle("netsim.udp_sent"),
            udp_dropped: obs::handle("netsim.udp_dropped"),
            tcp_connects: obs::handle("netsim.tcp.connects"),
            tcp_resets: obs::handle("netsim.tcp.resets"),
            tcp_bytes: obs::handle("netsim.tcp.bytes"),
            tcp_segments_dropped: obs::handle("netsim.tcp.segments_dropped"),
            ev_udp: obs::handle("netsim.events.udp"),
            ev_tcp_syn: obs::handle("netsim.events.tcp_syn"),
            ev_tcp_establish: obs::handle("netsim.events.tcp_establish"),
            ev_tcp_data: obs::handle("netsim.events.tcp_data"),
            ev_tcp_close: obs::handle("netsim.events.tcp_close"),
            ev_timer: obs::handle("netsim.events.timer"),
            ev_start_host: obs::handle("netsim.events.start_host"),
            ev_stop_host: obs::handle("netsim.events.stop_host"),
            ev_set_reachable: obs::handle("netsim.events.set_reachable"),
        }
    }
}

/// One scheduler shard: a timer wheel owning a disjoint subset of hosts,
/// plus the merge loop's cached view of that wheel's head.
struct Shard {
    queue: TimerWheel<(HostId, Prov, Ev)>,
    /// `(at, key)` of the earliest event within the current epoch, cached
    /// from the last peek. `None` = nothing left this epoch.
    head: Option<(u64, u64)>,
    /// The head cache is invalid (the wheel was popped or pushed into).
    stale: bool,
    /// Events dispatched by this shard (load-balance diagnostics).
    events: u64,
    /// Peak of this shard's own queue depth (its wheel length + the
    /// dispatching event), mirrored to `netsim.shard.<i>.queue_depth_peak`.
    depth_peak: u64,
}

/// Mix a world seed and a host id into one RNG-stream seed (splitmix64
/// finalizer — distinct, well-spread streams even for adjacent ids).
fn host_stream_seed(seed: u64, host: u64) -> u64 {
    let mut z = seed ^ host.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Pack an address into 48 bits: `ip << 16 | port`. The all-ones value can
/// never be produced (the top 16 bits are always zero), so it serves as the
/// empty-slot sentinel in [`AddrIndex`].
fn addr_key(addr: HostAddr) -> u64 {
    ((u32::from(addr.ip) as u64) << 16) | addr.port as u64
}

/// Empty-slot sentinel for [`AddrIndex`]: not a representable packed addr.
const ADDR_EMPTY: u64 = u64::MAX;

/// Splitmix64 finalizer over a packed address — the probe hash for
/// [`AddrIndex`].
fn addr_probe_hash(key: u64) -> u64 {
    let mut z = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `HostAddr → HostId`, open addressing over packed 48-bit keys. Replaces
/// the former `BTreeMap<HostAddr, HostId>`, whose every probe on the UDP
/// send and SYN routing paths walked a 6-byte-key comparison chain. The
/// table is probed and inserted into, **never iterated**, so its layout
/// cannot reach event ordering or any export.
struct AddrIndex {
    /// `(packed addr, host id)`; key `ADDR_EMPTY` marks a free slot.
    /// Power-of-two length, linear probing.
    slots: Vec<(u64, u32)>,
    len: usize,
}

impl AddrIndex {
    fn new() -> AddrIndex {
        AddrIndex {
            slots: vec![(ADDR_EMPTY, 0); 64],
            len: 0,
        }
    }

    // hotpath -- one probe per UDP send and per TCP SYN routed
    fn get(&self, addr: HostAddr) -> Option<HostId> {
        let key = addr_key(addr);
        let mask = self.slots.len() - 1;
        let mut slot = (addr_probe_hash(key) as usize) & mask;
        loop {
            let (k, id) = self.slots[slot];
            if k == key {
                return Some(id as HostId);
            }
            if k == ADDR_EMPTY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn contains(&self, addr: HostAddr) -> bool {
        self.get(addr).is_some()
    }

    /// Insert a fresh address (the caller has ruled out duplicates).
    fn insert(&mut self, addr: HostAddr, id: HostId) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let key = addr_key(addr);
        let mask = self.slots.len() - 1;
        let mut slot = (addr_probe_hash(key) as usize) & mask;
        while self.slots[slot].0 != ADDR_EMPTY {
            debug_assert_ne!(self.slots[slot].0, key, "duplicate address");
            slot = (slot + 1) & mask;
        }
        self.slots[slot] = (key, id as u32);
        self.len += 1;
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![(ADDR_EMPTY, 0); doubled]);
        let mask = self.slots.len() - 1;
        for (key, id) in old {
            if key == ADDR_EMPTY {
                continue;
            }
            let mut slot = (addr_probe_hash(key) as usize) & mask;
            while self.slots[slot].0 != ADDR_EMPTY {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = (key, id);
        }
    }
}

/// Per-host NAT pinhole table: peer addr → last outbound send time. A
/// sorted vector over packed addresses replaces the former
/// `BTreeMap<HostAddr, u64>`: most sends hit an existing entry (binary
/// search + in-place timestamp update, no allocation); only the first
/// contact with a new peer pays an ordered insert. Probed by key only —
/// never iterated — so the representation is invisible to event order.
// shard-state -- rides inside Slot; plain Vec storage
#[derive(Default)]
struct NatTable {
    /// `(packed addr, last send ms)`, ascending by key.
    entries: Vec<(u64, u64)>,
}

impl NatTable {
    // hotpath -- one update per outbound UDP datagram
    fn note_send(&mut self, to: HostAddr, now: u64) {
        let key = addr_key(to);
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(pos) => self.entries[pos].1 = now,
            Err(pos) => self.entries.insert(pos, (key, now)),
        }
    }

    /// Was `from` contacted within the last `window_ms`?
    // hotpath -- one probe per inbound datagram at an unreachable host
    fn solicited(&self, from: HostAddr, now: u64, window_ms: u64) -> bool {
        let key = addr_key(from);
        match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(pos) => now.saturating_sub(self.entries[pos].1) <= window_ms,
            Err(_) => false,
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// The simulator.
pub struct NetSim {
    now: u64,
    /// Key counter for events pushed from outside any dispatch (origin 0:
    /// world building, schedules, public APIs between runs). Starts at 1:
    /// key 0 is the provenance sentinel for "no dispatch" (external
    /// root), so no real event may own it.
    ext_seq: u32,
    /// `owner + 1` of the event currently dispatching; 0 outside dispatch.
    /// Keys minted under origin `o` sort after all external keys and are
    /// ordered by `o`'s private counter, which makes the total `(at, key)`
    /// order a pure function of per-host event histories — the property
    /// that lets any shard count replay the same trace.
    origin: u32,
    /// Scheduler key of the event currently dispatching (0 outside
    /// dispatch), its own cause, and its causal depth — the provenance
    /// that `push` stamps onto children. `cur_cause` lets a dispatch
    /// that recorded no trace events forward its ancestor instead of
    /// itself, so recorded chains never dead-end on a silent dispatch.
    cur_key: u64,
    cur_cause: u64,
    cur_depth: u32,
    shards: Vec<Shard>,
    /// Interned `netsim.shard.<i>.queue_depth_peak` gauge handles, one
    /// per shard.
    shard_gauge_ids: Vec<MetricId>,
    /// Conservative synchronization window for the sharded merge loop:
    /// the minimum cross-host link latency (see DESIGN.md § Sharded
    /// execution).
    lookahead_ms: u64,
    queue_depth_peak: u64,
    slots: Vec<Slot>,
    index: AddrIndex,
    conns: Vec<ConnEntry>,
    /// Recycled slab cells, reused LIFO.
    conn_free: Vec<u32>,
    config: SimConfig,
    events_processed: u64,
    udp_sent: u64,
    udp_dropped: u64,
    tcp: TcpCounters,
    ids: EngineIds,
    /// Recycled action vector for [`NetSim::with_host`]: taken before each
    /// host callback, returned by [`NetSim::apply_actions`], so the hot
    /// path reuses one allocation instead of building a fresh `Vec` per
    /// event.
    action_buf: Vec<Action>,
}

impl NetSim {
    /// Create an empty simulation.
    pub fn new(config: SimConfig) -> NetSim {
        let n_shards = config.shards.max(1);
        NetSim {
            now: 0,
            ext_seq: 1,
            origin: 0,
            cur_key: 0,
            cur_cause: 0,
            cur_depth: 0,
            shards: (0..n_shards)
                .map(|_| Shard {
                    queue: TimerWheel::new(),
                    head: None,
                    stale: true,
                    events: 0,
                    depth_peak: 0,
                })
                .collect(),
            shard_gauge_ids: (0..n_shards)
                .map(|i| obs::handle_dynamic(&format!("netsim.shard.{i}.queue_depth_peak")))
                .collect(),
            lookahead_ms: crate::topology::min_link_latency_ms() as u64,
            queue_depth_peak: 0,
            slots: Vec::new(),
            index: AddrIndex::new(),
            conns: Vec::new(),
            conn_free: Vec::new(),
            config,
            events_processed: 0,
            udp_sent: 0,
            udp_dropped: 0,
            tcp: TcpCounters::default(),
            ids: EngineIds::intern(),
            action_buf: Vec::new(),
        }
    }

    /// Current simulated time, ms.
    pub fn now_ms(&self) -> u64 {
        self.now
    }

    /// Total events dispatched (diagnostics / benches).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// High-water mark of the scheduler queue depth (diagnostics /
    /// benches; tracked engine-side so it is available without a
    /// recorder installed).
    pub fn queue_depth_peak(&self) -> u64 {
        self.queue_depth_peak
    }

    /// (sent, dropped) UDP datagram counters.
    pub fn udp_counters(&self) -> (u64, u64) {
        (self.udp_sent, self.udp_dropped)
    }

    /// TCP-layer counters: establishes, abortive resets, payload bytes,
    /// blackholed segments.
    pub fn tcp_counters(&self) -> TcpCounters {
        self.tcp
    }

    /// Install a fault window after construction (worlds build their own
    /// `SimConfig`, so the robustness harness injects faults here).
    pub fn add_fault(&mut self, window: FaultWindow) {
        self.config.faults.push(window);
    }

    /// Take `hosts` down together at `at_ms` and bring them back
    /// `down_ms` later — a correlated outage.
    pub fn churn_burst(&mut self, hosts: &[HostId], at_ms: u64, down_ms: u64) {
        for &host in hosts {
            self.schedule_stop(host, at_ms);
            self.schedule_start(host, at_ms + down_ms);
        }
    }

    /// Schedule a reachability change (NAT state) at `at_ms`.
    pub fn schedule_reachable(&mut self, host: HostId, at_ms: u64, reachable: bool) {
        self.push(at_ms, host, Ev::SetReachable { host, reachable });
    }

    /// Toggle a host's public reachability off and back on `flaps` times,
    /// `period_ms` per half-cycle, starting at `from_ms`.
    pub fn nat_flap(&mut self, host: HostId, from_ms: u64, period_ms: u64, flaps: u32) {
        for i in 0..flaps as u64 {
            self.schedule_reachable(host, from_ms + 2 * i * period_ms, false);
            self.schedule_reachable(host, from_ms + (2 * i + 1) * period_ms, true);
        }
    }

    /// Register a host (initially offline; schedule a start).
    ///
    /// # Panics
    /// Panics if `addr` is already taken — the world generator owns the
    /// address plan, and a collision is a bug there.
    pub fn add_host(&mut self, addr: HostAddr, meta: HostMeta, host: Box<dyn Host>) -> HostId {
        assert!(!self.index.contains(addr), "address {addr} already in use");
        let id = self.slots.len();
        self.slots.push(Slot {
            host: Some(host),
            addr,
            meta,
            alive: false,
            shard: (id % self.shards.len()) as u32,
            rng: StdRng::seed_from_u64(host_stream_seed(self.config.seed, id as u64)),
            next_key: 0,
            nat: NatTable::default(),
            live_conns: Vec::new(),
        });
        self.index.insert(addr, id);
        id
    }

    /// Schedule a host start at absolute time `at_ms`.
    pub fn schedule_start(&mut self, host: HostId, at_ms: u64) {
        self.push(at_ms, host, Ev::StartHost { host });
    }

    /// Schedule a host stop at absolute time `at_ms`.
    pub fn schedule_stop(&mut self, host: HostId, at_ms: u64) {
        self.push(at_ms, host, Ev::StopHost { host });
    }

    /// Whether a host is currently online.
    pub fn is_alive(&self, host: HostId) -> bool {
        self.slots[host].alive
    }

    /// A host's address.
    pub fn host_addr(&self, host: HostId) -> HostAddr {
        self.slots[host].addr
    }

    /// A host's metadata.
    pub fn host_meta(&self, host: HostId) -> &HostMeta {
        &self.slots[host].meta
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.slots.len()
    }

    /// Take a host's behaviour out of the simulation (end of run).
    pub fn remove_host_behaviour(&mut self, host: HostId) -> Option<Box<dyn Host>> {
        self.slots[host].host.take()
    }

    /// Number of scheduler shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Events dispatched per shard (load-balance diagnostics; the sum
    /// equals [`NetSim::events_processed`]). Deliberately an API rather
    /// than an obs metric: per-shard metric names would make exports
    /// depend on the shard count and break trace invariance.
    pub fn shard_event_counts(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.events).collect()
    }

    /// Peak per-shard queue depth (own wheel + the dispatching event).
    /// With one shard this equals [`NetSim::queue_depth_peak`]; the same
    /// values are exported as `netsim.shard.<i>.queue_depth_peak` gauges
    /// — which inherently depend on the shard count, so cross-shard-count
    /// comparisons must strip `netsim_shard_` lines (the carve-out the
    /// determinism suite applies).
    pub fn shard_queue_depth_peaks(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.depth_peak).collect()
    }

    /// Reassign a host to a scheduler shard. Call before scheduling
    /// anything for the host — events already queued stay on the wheel
    /// they were pushed to.
    pub fn set_host_shard(&mut self, host: HostId, shard: usize) {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        self.slots[host].shard = shard as u32;
    }

    /// Queue `ev` for `owner` at absolute time `at`.
    ///
    /// The sort key encodes the *pushing* context, not the receiver: keys
    /// minted outside any dispatch use the low 32-bit `ext_seq` range;
    /// keys minted while host `h`'s event dispatches are
    /// `(h + 1) << 32 | slot counter`. Same-time events therefore order
    /// by (external pushes first, then by pushing host, then by that
    /// host's own push order) — a pure function of per-host histories,
    /// identical under any shard count.
    // hotpath -- every scheduled event funnels through here
    fn push(&mut self, at: u64, owner: HostId, ev: Ev) {
        if let Some(id) = ev.conn_ref() {
            let e = &mut self.conns[conn_idx(id)];
            debug_assert_eq!(e.generation, conn_gen(id), "pushing event for a stale conn");
            e.pending += 1;
        }
        let key = if self.origin == 0 {
            let k = self.ext_seq;
            self.ext_seq += 1;
            k as u64
        } else {
            let slot = &mut self.slots[(self.origin - 1) as usize];
            let k = slot.next_key;
            slot.next_key += 1;
            ((self.origin as u64) << 32) | k as u64
        };
        let sh = self.slots[owner].shard as usize;
        debug_assert!(
            self.origin == 0
                || self.slots[(self.origin - 1) as usize].shard as usize == sh
                || at >= self.now + self.lookahead_ms,
            "cross-shard push inside the lookahead window (at={at}, now={})",
            self.now
        );
        // Provenance: the nearest *traced* ancestor is the cause — a
        // pushing dispatch that recorded no trace events forwards its own
        // cause unchanged, so every recorded `cause` resolves within the
        // exported trace. Depth counts traced hops from an external root.
        // Whether a dispatch traced anything is a pure function of its
        // event history, so the stamps stay shard-invariant.
        let prov = if self.cur_key == 0 {
            Prov { cause: 0, depth: 0 }
        } else if obs::dispatch_emitted() {
            Prov {
                cause: self.cur_key,
                depth: self.cur_depth + 1,
            }
        } else {
            Prov {
                cause: self.cur_cause,
                depth: self.cur_depth,
            }
        };
        let shard = &mut self.shards[sh];
        shard.stale = true;
        shard.queue.push(at, key, (owner, prov, ev));
    }

    /// One-way latency from `a` to `b`; the jitter draw comes from
    /// `draw`'s stream — always the owner of the event being dispatched,
    /// so the draw sequence is shard-count-invariant.
    fn one_way_latency(&mut self, draw: HostId, a: HostId, b: HostId) -> u64 {
        let base = latency_between(self.slots[a].meta.region, self.slots[b].meta.region) as u64;
        let jitter = if self.config.jitter_ms > 0 {
            self.slots[draw].rng.gen_range(0..self.config.jitter_ms) as u64
        } else {
            0
        };
        (base + jitter).max(1)
    }

    /// Run until every queue is empty or simulated time exceeds
    /// `until_ms`.
    // hotpath -- the main event loop: every simulated event funnels through here
    pub fn run_until(&mut self, until_ms: u64) {
        obs::profile::run_mark_start();
        if self.shards.len() == 1 {
            // Single-wheel fast path: no merge bookkeeping at all.
            while let Some((at, key, (owner, prov, ev))) =
                self.shards[0].queue.pop_at_most(until_ms)
            {
                self.dispatch_at(at, key, 0, owner, prov, ev);
            }
        } else {
            self.run_sharded(until_ms);
        }
        self.now = self.now.max(until_ms);
        obs::profile::run_mark_end();
    }

    /// The sharded merge loop: conservative barrier-epoch synchronization.
    ///
    /// Each epoch starts at the minimum pending time across shards (a
    /// pure read) and extends one lookahead window. Within the epoch,
    /// every shard's head is bounded by `epoch_end - 1` and the loop
    /// always dispatches the globally minimal `(at, key)` — exactly what
    /// the single wheel does, so the trace is identical by construction.
    /// Safety: the engine never schedules an event on a host in another
    /// shard sooner than `now + lookahead` (link latencies floor at the
    /// lookahead; timers stay on their own host), so nothing dispatched
    /// in this epoch can land behind a sibling shard's already-advanced
    /// cursor.
    fn run_sharded(&mut self, until_ms: u64) {
        loop {
            // Barrier: fold observability's pending fast counters at a
            // deterministic point, then pick the next epoch. The profiler
            // marks the barrier too (stall accounting) — wall-clock only,
            // quarantined from sim state.
            obs::fold_pending();
            obs::profile::barrier_mark(self.shards.len());
            let mut epoch_start = u64::MAX;
            for s in &self.shards {
                if let Some(at) = s.queue.min_pending_at() {
                    epoch_start = epoch_start.min(at);
                }
            }
            if epoch_start == u64::MAX || epoch_start > until_ms {
                break;
            }
            let epoch_end = (epoch_start + self.lookahead_ms).min(until_ms + 1);
            for s in &mut self.shards {
                s.stale = true;
            }
            loop {
                let mut best: Option<(u64, u64, usize)> = None;
                for i in 0..self.shards.len() {
                    let s = &mut self.shards[i];
                    if s.stale {
                        s.head = s.queue.peek_at_most(epoch_end - 1);
                        s.stale = false;
                    }
                    if let Some((at, key)) = s.head {
                        if best.is_none_or(|(ba, bk, _)| (at, key) < (ba, bk)) {
                            best = Some((at, key, i));
                        }
                    }
                }
                let Some((_, _, winner)) = best else { break };
                let Some((at, key, (owner, prov, ev))) =
                    self.shards[winner].queue.pop_at_most(epoch_end - 1)
                else {
                    break;
                };
                self.shards[winner].stale = true;
                self.dispatch_at(at, key, winner, owner, prov, ev);
            }
        }
    }

    /// Per-event bookkeeping shared by the single- and sharded loops:
    /// clock, depth gauges, obs counters, provenance bracketing, profiler
    /// timing, origin bracketing, and the pending-count decrement that
    /// may recycle a connection cell.
    // hotpath -- runs once per dispatched event
    fn dispatch_at(&mut self, at: u64, key: u64, shard: usize, owner: HostId, prov: Prov, ev: Ev) {
        self.now = at;
        let mut depth = 1u64;
        for s in &self.shards {
            depth += s.queue.len() as u64;
        }
        self.queue_depth_peak = self.queue_depth_peak.max(depth);
        // The dispatching shard's own share of that depth: its wheel
        // plus the event in flight.
        let shard_depth = self.shards[shard].queue.len() as u64 + 1;
        self.shards[shard].depth_peak = self.shards[shard].depth_peak.max(shard_depth);
        // Observability is pure: it reads the scheduler state but never
        // touches a sim RNG or a queue, so instrumented and
        // uninstrumented runs execute identical event sequences. All
        // per-event counters go through interned handles — no string
        // work on this path.
        obs::set_now(at);
        obs::set_cause(key, prov.cause, prov.depth);
        obs::gauge_max_id(self.ids.queue_depth_peak, depth);
        obs::gauge_max_id(self.shard_gauge_ids[shard], shard_depth);
        obs::counter_add_id(self.ids.events_total, 1);
        obs::counter_add_id(ev.obs_id(&self.ids), 1);
        let pinned = ev.conn_ref();
        let kind_idx = ev.kind_idx();
        self.cur_key = key;
        self.cur_cause = prov.cause;
        self.cur_depth = prov.depth;
        self.origin = owner as u32 + 1;
        let timer = obs::profile::dispatch_start();
        self.dispatch(ev);
        obs::profile::dispatch_end(
            timer,
            shard,
            kind_idx,
            EV_KIND_NAMES[kind_idx],
            owner as u64,
        );
        self.origin = 0;
        self.cur_key = 0;
        self.cur_cause = 0;
        self.cur_depth = 0;
        obs::set_cause(0, 0, 0);
        self.events_processed += 1;
        self.shards[shard].events += 1;
        if let Some(id) = pinned {
            self.conn_event_drained(id);
        }
    }

    /// Un-pin a connection after its event dispatched; recycle the cell
    /// once the connection is Closed with nothing left in flight.
    /// Freeing bumps the generation, so any id a host still holds goes
    /// stale rather than aliasing the next tenant.
    fn conn_event_drained(&mut self, id: ConnId) {
        let idx = conn_idx(id);
        let e = &mut self.conns[idx];
        if e.generation != conn_gen(id) {
            return;
        }
        e.pending -= 1;
        if e.pending == 0 && e.info.state == ConnState::Closed {
            e.generation = e.generation.wrapping_add(1);
            self.conn_free.push(idx as u32);
        }
    }

    /// Gen-checked read of a connection; stale or garbage ids yield
    /// `None`.
    fn conn(&self, id: ConnId) -> Option<&ConnInfo> {
        self.conns
            .get(conn_idx(id))
            .filter(|e| e.generation == conn_gen(id))
            .map(|e| &e.info)
    }

    /// Gen-checked mutable read of a connection.
    fn conn_mut(&mut self, id: ConnId) -> Option<&mut ConnInfo> {
        self.conns
            .get_mut(conn_idx(id))
            .filter(|e| e.generation == conn_gen(id))
            .map(|e| &mut e.info)
    }

    /// The host that receives a conn-stream event — used to route the
    /// event to a shard and to attribute its RNG draws. Only valid ids
    /// reach this (push sites hold a live connection).
    fn conn_event_owner(&self, conn: ConnId, to_initiator: bool) -> HostId {
        let c = &self.conns[conn_idx(conn)].info;
        if to_initiator {
            c.initiator
        } else {
            c.acceptor.unwrap_or(c.initiator)
        }
    }

    // hotpath -- per-event demux; runs once per event popped by run_until
    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::StartHost { host } => {
                if !self.slots[host].alive {
                    self.slots[host].alive = true;
                    self.with_host(host, |h, ctx| h.on_start(ctx));
                }
            }
            Ev::StopHost { host } => {
                if self.slots[host].alive {
                    self.with_host(host, |h, ctx| h.on_stop(ctx));
                    self.slots[host].alive = false;
                    self.slots[host].nat.clear();
                    // Close all of its live connections toward the peers.
                    // The per-slot index holds exactly this host's
                    // established connections; sorting keeps the close
                    // order independent of link/unlink history.
                    let mut dead: Vec<(ConnId, bool)> = self.slots[host]
                        .live_conns
                        .iter()
                        .map(|&id| (id, self.conns[conn_idx(id)].info.initiator != host))
                        .collect();
                    dead.sort_unstable();
                    for (conn, to_initiator) in dead {
                        let Some(c) = self.conn_mut(conn) else {
                            continue;
                        };
                        debug_assert_eq!(c.state, ConnState::Established);
                        c.state = ConnState::Closed;
                        self.unlink_conn(conn);
                        self.tcp.resets += 1;
                        obs::counter_add_id(self.ids.tcp_resets, 1);
                        let delay = self.conn_delay(conn);
                        let owner = self.conn_event_owner(conn, to_initiator);
                        self.push(self.now + delay, owner, Ev::TcpClose { conn, to_initiator });
                    }
                }
            }
            Ev::SetReachable { host, reachable } => {
                self.slots[host].meta.reachable = reachable;
            }
            Ev::Timer { host, token } => {
                if self.slots[host].alive {
                    self.with_host(host, |h, ctx| h.on_timer(ctx, token));
                }
            }
            Ev::Udp { to, from, bytes } => {
                if !self.slots[to].alive {
                    self.udp_dropped += 1;
                    obs::counter_add_id(self.ids.udp_dropped, 1);
                    return;
                }
                // NAT: unreachable hosts accept only solicited datagrams.
                if !self.slots[to].meta.reachable {
                    let window = self.config.nat_window_ms;
                    let now = self.now;
                    if !self.slots[to].nat.solicited(from, now, window) {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        return;
                    }
                }
                self.with_host(to, |h, ctx| h.on_udp(ctx, from, &bytes));
            }
            Ev::TcpSyn { conn } => {
                let Some(c) = self.conn(conn).copied() else {
                    return;
                };
                let target = self.index.get(c.remote_addr);
                let blackholed =
                    self.config
                        .faults
                        .tcp_connect_blocked(self.now, c.local_addr, c.remote_addr);
                let ok = !blackholed
                    && match target {
                        Some(t) => self.slots[t].alive && self.slots[t].meta.reachable,
                        None => false,
                    };
                let delay = self.conn_delay(conn);
                if ok {
                    let t = target.unwrap();
                    // Refine RTT with the acceptor's actual region. The
                    // jitter draw belongs to the acceptor — the owner of
                    // this event.
                    let lat = self.one_way_latency(t, c.initiator, t);
                    if let Some(ci) = self.conn_mut(conn) {
                        ci.acceptor = Some(t);
                        ci.rtt_ms = (2 * lat) as u32;
                    }
                    let local = c.local_addr;
                    self.with_host(t, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::Incoming { conn, peer: local })
                    });
                }
                self.push(self.now + delay, c.initiator, Ev::TcpEstablish { conn, ok });
            }
            Ev::TcpEstablish { conn, ok } => {
                let Some(c) = self.conn(conn).copied() else {
                    return;
                };
                if c.state != ConnState::Dialing {
                    return;
                }
                if !self.slots[c.initiator].alive {
                    if let Some(ci) = self.conn_mut(conn) {
                        ci.state = ConnState::Closed;
                    }
                    return;
                }
                if ok {
                    if let Some(ci) = self.conn_mut(conn) {
                        ci.state = ConnState::Established;
                    }
                    self.link_conn(conn);
                    self.tcp.connects += 1;
                    obs::counter_add_id(self.ids.tcp_connects, 1);
                    let peer = c.remote_addr;
                    self.with_host(c.initiator, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::Connected { conn, peer })
                    });
                } else {
                    if let Some(ci) = self.conn_mut(conn) {
                        ci.state = ConnState::Closed;
                    }
                    self.with_host(c.initiator, |h, ctx| {
                        h.on_tcp(ctx, TcpEvent::ConnectFailed { conn })
                    });
                }
            }
            Ev::TcpData {
                conn,
                to_initiator,
                bytes,
            } => {
                let Some(c) = self.conn(conn).copied() else {
                    return;
                };
                if c.state != ConnState::Established {
                    return;
                }
                let dest = if to_initiator {
                    Some(c.initiator)
                } else {
                    c.acceptor
                };
                let Some(dest) = dest else { return };
                if !self.slots[dest].alive {
                    return;
                }
                self.with_host(dest, |h, ctx| h.on_tcp(ctx, TcpEvent::Data { conn, bytes }));
            }
            Ev::TcpClose { conn, to_initiator } => {
                let Some(c) = self.conn(conn).copied() else {
                    return;
                };
                let dest = if to_initiator {
                    Some(c.initiator)
                } else {
                    c.acceptor
                };
                let Some(dest) = dest else { return };
                if !self.slots[dest].alive {
                    return;
                }
                self.with_host(dest, |h, ctx| h.on_tcp(ctx, TcpEvent::Closed { conn }));
            }
        }
    }

    // One-way delay for events on an established connection. Deliberately
    // jitter-free: TCP is an ordered stream, and per-event jitter could
    // deliver a Closed before the final Data segment (losing, e.g., a
    // DISCONNECT frame sent just before hangup). Path jitter is baked into
    // the connection's RTT when the SYN resolves. Only live ids reach
    // this, so the blind index is safe.
    fn conn_delay(&self, conn: ConnId) -> u64 {
        (self.conns[conn_idx(conn)].info.rtt_ms / 2).max(1) as u64
    }

    /// Record an established connection in both endpoints' live lists.
    fn link_conn(&mut self, conn: ConnId) {
        let c = self.conns[conn_idx(conn)].info;
        self.slots[c.initiator].live_conns.push(conn);
        if let Some(acc) = c.acceptor {
            if acc != c.initiator {
                self.slots[acc].live_conns.push(conn);
            }
        }
    }

    /// Remove a connection from both endpoints' live lists (call on
    /// every Established → Closed transition).
    fn unlink_conn(&mut self, conn: ConnId) {
        let c = self.conns[conn_idx(conn)].info;
        self.slots[c.initiator].live_conns.retain(|&id| id != conn);
        if let Some(acc) = c.acceptor {
            if acc != c.initiator {
                self.slots[acc].live_conns.retain(|&id| id != conn);
            }
        }
    }

    /// Take the host out of its slot, run `f` with a fresh Ctx, apply the
    /// resulting actions. The action vector is recycled through
    /// `action_buf` so steady-state event handling never allocates it;
    /// `apply_actions` never re-enters `with_host`, so the take/restore
    /// pair cannot nest.
    // hotpath -- runs once per host callback; allocation here scales with event count
    fn with_host<F>(&mut self, host: HostId, f: F)
    where
        F: FnOnce(&mut dyn Host, &mut Ctx),
    {
        let Some(mut behaviour) = self.slots[host].host.take() else {
            return;
        };
        let local = self.slots[host].addr;
        let mut ctx = Ctx {
            now_ms: self.now,
            host,
            local,
            rng: &mut self.slots[host].rng,
            conn_entries: &self.conns,
            conn_free: &self.conn_free,
            actions: std::mem::take(&mut self.action_buf),
            new_conns: 0,
        };
        f(behaviour.as_mut(), &mut ctx);
        let actions = ctx.actions;
        self.slots[host].host = Some(behaviour);
        self.apply_actions(host, actions);
    }

    // hotpath -- executes every action a host callback emits
    fn apply_actions(&mut self, host: HostId, mut actions: Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::SendUdp { to, bytes } => {
                    self.udp_sent += 1;
                    obs::counter_add_id(self.ids.udp_sent, 1);
                    // NAT pinhole for the sender.
                    let now = self.now;
                    self.slots[host].nat.note_send(to, now);
                    if self.slots[host].rng.gen_bool(self.config.udp_loss) {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        continue;
                    }
                    let Some(dest) = self.index.get(to) else {
                        self.udp_dropped += 1;
                        obs::counter_add_id(self.ids.udp_dropped, 1);
                        continue;
                    };
                    let from = self.slots[host].addr;
                    let extra = if self.config.faults.is_empty() {
                        0
                    } else {
                        match self
                            .config
                            .faults
                            .udp_fate(now, from, to, &mut self.slots[host].rng)
                        {
                            UdpFate::Drop => {
                                self.udp_dropped += 1;
                                obs::counter_add_id(self.ids.udp_dropped, 1);
                                continue;
                            }
                            UdpFate::Deliver { extra_ms } => extra_ms,
                        }
                    };
                    let lat = self.one_way_latency(host, host, dest) + extra;
                    self.push(
                        now + lat,
                        dest,
                        Ev::Udp {
                            to: dest,
                            from,
                            bytes,
                        },
                    );
                }
                Action::TcpConnect { conn, to } => {
                    // Estimate RTT with the local region twice until the SYN
                    // resolves the peer.
                    let lat = self.one_way_latency(host, host, host).max(1);
                    let info = ConnInfo {
                        initiator: host,
                        acceptor: None,
                        remote_addr: to,
                        local_addr: self.slots[host].addr,
                        state: ConnState::Dialing,
                        rtt_ms: (2 * lat) as u32,
                    };
                    // Mirror the preview walk in `Ctx::tcp_connect`: reuse
                    // the most recently freed cell, else extend the slab.
                    let idx = match self.conn_free.pop() {
                        Some(idx) => {
                            let e = &mut self.conns[idx as usize];
                            debug_assert_eq!(e.pending, 0);
                            e.info = info;
                            idx as usize
                        }
                        None => {
                            self.conns.push(ConnEntry {
                                generation: 0,
                                pending: 0,
                                info,
                            });
                            self.conns.len() - 1
                        }
                    };
                    let id = conn_pack(self.conns[idx].generation, idx);
                    debug_assert_eq!(id, conn, "conn id allocation out of sync");
                    let delay = self.conn_delay(id);
                    let owner = self.index.get(to).unwrap_or(host);
                    self.push(self.now + delay, owner, Ev::TcpSyn { conn: id });
                }
                Action::TcpSend { conn, bytes } => {
                    let Some(c) = self.conn(conn).copied() else {
                        continue;
                    };
                    if c.state != ConnState::Established {
                        continue;
                    }
                    let to_initiator = c.initiator != host;
                    let mut bytes = bytes;
                    let mut extra = 0;
                    if !self.config.faults.is_empty() {
                        match self.config.faults.tcp_fate(
                            self.now,
                            c.local_addr,
                            c.remote_addr,
                            &mut bytes,
                            &mut self.slots[host].rng,
                        ) {
                            TcpFate::Drop => {
                                self.tcp.segments_dropped += 1;
                                obs::counter_add_id(self.ids.tcp_segments_dropped, 1);
                                continue;
                            }
                            TcpFate::Reset => {
                                if let Some(ci) = self.conn_mut(conn) {
                                    ci.state = ConnState::Closed;
                                }
                                self.unlink_conn(conn);
                                self.tcp.resets += 1;
                                obs::counter_add_id(self.ids.tcp_resets, 1);
                                let delay = self.conn_delay(conn);
                                for to_initiator in [true, false] {
                                    let owner = self.conn_event_owner(conn, to_initiator);
                                    self.push(
                                        self.now + delay,
                                        owner,
                                        Ev::TcpClose { conn, to_initiator },
                                    );
                                }
                                continue;
                            }
                            TcpFate::Deliver { extra_ms } => extra = extra_ms,
                        }
                    }
                    self.tcp.bytes += bytes.len() as u64;
                    obs::counter_add_id(self.ids.tcp_bytes, bytes.len() as u64);
                    let delay = self.conn_delay(conn) + extra;
                    let owner = self.conn_event_owner(conn, to_initiator);
                    self.push(
                        self.now + delay,
                        owner,
                        Ev::TcpData {
                            conn,
                            to_initiator,
                            bytes,
                        },
                    );
                }
                Action::TcpClose { conn } => {
                    let Some(c) = self.conn(conn).copied() else {
                        continue;
                    };
                    if c.state == ConnState::Established || c.state == ConnState::Dialing {
                        let was_established = c.state == ConnState::Established;
                        let to_initiator = c.initiator != host;
                        if let Some(ci) = self.conn_mut(conn) {
                            ci.state = ConnState::Closed;
                        }
                        if was_established {
                            self.unlink_conn(conn);
                        }
                        let delay = self.conn_delay(conn);
                        let owner = self.conn_event_owner(conn, to_initiator);
                        self.push(self.now + delay, owner, Ev::TcpClose { conn, to_initiator });
                    }
                }
                Action::SetTimer { delay_ms, token } => {
                    self.push(self.now + delay_ms, host, Ev::Timer { host, token });
                }
            }
        }
        // Hand the (now empty) vector back for the next with_host call.
        self.action_buf = actions;
    }

    /// Serialize the engine's complete dynamic state — clock, counters,
    /// fault schedule, connection slab, per-host state (RNG stream, NAT
    /// table, liveness, behaviour state via [`Host::save_state`]) and
    /// every pending scheduler event with its original key and
    /// provenance — into a versioned byte snapshot.
    ///
    /// Static structure (addresses, non-reachability metadata, the
    /// address index, shard topology, interned metric handles) is
    /// deliberately **not** serialized: the restore target is a freshly
    /// rebuilt *shell* world containing the same hosts in the same
    /// order, and [`NetSim::restore`] overwrites only the dynamic parts.
    /// Must be called between runs (never from inside a host callback).
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapError> {
        debug_assert_eq!(self.origin, 0, "snapshot during dispatch");
        let mut w = SnapWriter::with_header(SNAP_MAGIC, SNAP_VERSION);
        w.u64(self.now);
        w.u32(self.ext_seq);
        w.u64(self.events_processed);
        w.u64(self.udp_sent);
        w.u64(self.udp_dropped);
        w.u64(self.tcp.connects);
        w.u64(self.tcp.resets);
        w.u64(self.tcp.bytes);
        w.u64(self.tcp.segments_dropped);
        w.u64(self.queue_depth_peak);
        // Fault windows can be installed mid-run via `add_fault`, so the
        // schedule is state, not rebuildable configuration.
        let windows = self.config.faults.windows();
        w.usize(windows.len());
        for win in windows {
            write_fault_window(&mut w, win);
        }
        // Connection slab and free list, order-exact: `Ctx::tcp_connect`
        // previews the free list top-down, so its LIFO order is
        // observable and must survive the round trip.
        w.usize(self.conns.len());
        for e in &self.conns {
            w.u32(e.generation);
            w.u32(e.pending);
            w.usize(e.info.initiator);
            match e.info.acceptor {
                Some(a) => {
                    w.bool(true);
                    w.usize(a);
                }
                None => w.bool(false),
            }
            write_addr(&mut w, e.info.remote_addr);
            write_addr(&mut w, e.info.local_addr);
            w.u8(match e.info.state {
                ConnState::Dialing => 0,
                ConnState::Established => 1,
                ConnState::Closed => 2,
            });
            w.u32(e.info.rtt_ms);
        }
        w.usize(self.conn_free.len());
        for &i in &self.conn_free {
            w.u32(i);
        }
        w.usize(self.slots.len());
        for slot in &self.slots {
            w.bool(slot.alive);
            w.u32(slot.shard);
            for word in slot.rng.state() {
                w.u64(word);
            }
            w.u32(slot.next_key);
            w.bool(slot.meta.reachable);
            w.usize(slot.nat.entries.len());
            for &(k, t) in &slot.nat.entries {
                w.u64(k);
                w.u64(t);
            }
            w.usize(slot.live_conns.len());
            for &c in &slot.live_conns {
                w.usize(c);
            }
            match &slot.host {
                None => w.bool(false),
                Some(h) => {
                    let state = h.save_state().ok_or(SnapError::Unsupported(
                        "host behaviour does not implement save_state",
                    ))?;
                    w.bool(true);
                    w.bytes(&state);
                }
            }
        }
        // Shards: dispatch counters plus every pending wheel event.
        w.usize(self.shards.len());
        for shard in &self.shards {
            w.u64(shard.events);
            w.u64(shard.depth_peak);
            w.usize(shard.queue.len());
            shard.queue.for_each_pending(|at, key, item| {
                let (owner, prov, ev) = item;
                w.u64(at);
                w.u64(key);
                w.usize(*owner);
                w.u64(prov.cause);
                w.u32(prov.depth);
                write_ev(&mut w, ev);
            });
        }
        Ok(w.finish())
    }

    /// Restore a [`NetSim::snapshot`] into this simulator.
    ///
    /// `self` must be a freshly rebuilt shell: the same hosts registered
    /// in the same order (same addresses, metadata, shard layout) with
    /// behaviours re-created from their static configuration, not yet
    /// run. Everything dynamic — clock, counters, RNG streams, the
    /// connection slab, pending events (anything the shell's own world
    /// building scheduled is wiped) and behaviour state via
    /// [`Host::load_state`] — is overwritten from the snapshot. Events
    /// are re-pushed with their original keys, bypassing key minting
    /// and pending-count accounting (both were already captured), so a
    /// resumed run dispatches the exact sequence the original would
    /// have.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::with_header(bytes, SNAP_MAGIC, SNAP_VERSION)?;
        self.now = r.u64()?;
        self.ext_seq = r.u32()?;
        self.events_processed = r.u64()?;
        self.udp_sent = r.u64()?;
        self.udp_dropped = r.u64()?;
        self.tcp = TcpCounters {
            connects: r.u64()?,
            resets: r.u64()?,
            bytes: r.u64()?,
            segments_dropped: r.u64()?,
        };
        self.queue_depth_peak = r.u64()?;
        let mut faults = FaultSchedule::default();
        for _ in 0..r.usize()? {
            faults.push(read_fault_window(&mut r)?);
        }
        self.config.faults = faults;
        let n_conns = r.usize()?;
        let mut conns = Vec::with_capacity(n_conns);
        for _ in 0..n_conns {
            let generation = r.u32()?;
            let pending = r.u32()?;
            let initiator = r.usize()?;
            let acceptor = if r.bool()? { Some(r.usize()?) } else { None };
            let remote_addr = read_addr(&mut r)?;
            let local_addr = read_addr(&mut r)?;
            let state = match r.u8()? {
                0 => ConnState::Dialing,
                1 => ConnState::Established,
                2 => ConnState::Closed,
                _ => return Err(SnapError::Corrupt("conn state tag out of range")),
            };
            let rtt_ms = r.u32()?;
            conns.push(ConnEntry {
                generation,
                pending,
                info: ConnInfo {
                    initiator,
                    acceptor,
                    remote_addr,
                    local_addr,
                    state,
                    rtt_ms,
                },
            });
        }
        self.conns = conns;
        self.conn_free.clear();
        for _ in 0..r.usize()? {
            self.conn_free.push(r.u32()?);
        }
        if r.usize()? != self.slots.len() {
            return Err(SnapError::Corrupt("host count differs from restore shell"));
        }
        let n_shards = self.shards.len();
        for slot in &mut self.slots {
            slot.alive = r.bool()?;
            let shard = r.u32()?;
            if shard as usize >= n_shards {
                return Err(SnapError::Corrupt("slot shard out of range"));
            }
            slot.shard = shard;
            let mut state = [0u64; 4];
            for word in &mut state {
                *word = r.u64()?;
            }
            slot.rng = StdRng::from_state(state);
            slot.next_key = r.u32()?;
            slot.meta.reachable = r.bool()?;
            slot.nat.entries.clear();
            for _ in 0..r.usize()? {
                let key = r.u64()?;
                let at = r.u64()?;
                slot.nat.entries.push((key, at));
            }
            slot.live_conns.clear();
            for _ in 0..r.usize()? {
                slot.live_conns.push(r.usize()?);
            }
            if r.bool()? {
                let state = r.bytes()?;
                let host = slot.host.as_mut().ok_or(SnapError::Corrupt(
                    "snapshot carries behaviour state for a removed host",
                ))?;
                if !host.load_state(state) {
                    return Err(SnapError::Unsupported(
                        "host behaviour does not implement load_state",
                    ));
                }
            }
        }
        if r.usize()? != self.shards.len() {
            return Err(SnapError::Corrupt("shard count differs from restore shell"));
        }
        let n_slots = self.slots.len();
        let n_conn_cells = self.conns.len();
        for shard in &mut self.shards {
            shard.events = r.u64()?;
            shard.depth_peak = r.u64()?;
            // Wipe whatever the shell's world building scheduled; the
            // snapshot's pending events replace it wholesale.
            shard.queue = TimerWheel::new();
            shard.head = None;
            shard.stale = true;
            for _ in 0..r.usize()? {
                let at = r.u64()?;
                let key = r.u64()?;
                let owner = r.usize()?;
                if owner >= n_slots {
                    return Err(SnapError::Corrupt("event owner out of range"));
                }
                let prov = Prov {
                    cause: r.u64()?,
                    depth: r.u32()?,
                };
                let ev = read_ev(&mut r)?;
                if let Some(id) = ev.conn_ref() {
                    if conn_idx(id) >= n_conn_cells {
                        return Err(SnapError::Corrupt("event references conn out of range"));
                    }
                }
                shard.queue.push(at, key, (owner, prov, ev));
            }
        }
        r.finish()?;
        self.origin = 0;
        self.cur_key = 0;
        self.cur_cause = 0;
        self.cur_depth = 0;
        self.action_buf.clear();
        Ok(())
    }
}

fn write_addr(w: &mut SnapWriter, a: HostAddr) {
    w.u32(u32::from(a.ip));
    w.u16(a.port);
}

fn read_addr(r: &mut SnapReader<'_>) -> Result<HostAddr, SnapError> {
    let ip = Ipv4Addr::from(r.u32()?);
    let port = r.u16()?;
    Ok(HostAddr::new(ip, port))
}

fn write_fault_window(w: &mut SnapWriter, win: &FaultWindow) {
    match win.link {
        LinkSelector::Any => w.u8(0),
        LinkSelector::Host(a) => {
            w.u8(1);
            write_addr(w, a);
        }
        LinkSelector::Pair(a, b) => {
            w.u8(2);
            write_addr(w, a);
            write_addr(w, b);
        }
    }
    w.u64(win.from_ms);
    w.u64(win.until_ms);
    match win.fault {
        Fault::UdpLoss(p) => {
            w.u8(0);
            w.f64(p);
        }
        Fault::LatencySpike(ms) => {
            w.u8(1);
            w.u64(ms);
        }
        Fault::Blackhole => w.u8(2),
        Fault::TcpReset => w.u8(3),
        Fault::TcpTruncate(limit) => {
            w.u8(4);
            w.usize(limit);
        }
        Fault::TcpCorrupt => w.u8(5),
    }
}

fn read_fault_window(r: &mut SnapReader<'_>) -> Result<FaultWindow, SnapError> {
    let link = match r.u8()? {
        0 => LinkSelector::Any,
        1 => LinkSelector::Host(read_addr(r)?),
        2 => {
            let a = read_addr(r)?;
            let b = read_addr(r)?;
            LinkSelector::Pair(a, b)
        }
        _ => return Err(SnapError::Corrupt("link selector tag out of range")),
    };
    let from_ms = r.u64()?;
    let until_ms = r.u64()?;
    let fault = match r.u8()? {
        0 => Fault::UdpLoss(r.f64()?),
        1 => Fault::LatencySpike(r.u64()?),
        2 => Fault::Blackhole,
        3 => Fault::TcpReset,
        4 => Fault::TcpTruncate(r.usize()?),
        5 => Fault::TcpCorrupt,
        _ => return Err(SnapError::Corrupt("fault tag out of range")),
    };
    Ok(FaultWindow {
        link,
        from_ms,
        until_ms,
        fault,
    })
}

// Event tags reuse `Ev::kind_idx` so the wire format and the profiler
// attribution table stay in lockstep.
fn write_ev(w: &mut SnapWriter, ev: &Ev) {
    w.u8(ev.kind_idx() as u8);
    match ev {
        Ev::Udp { to, from, bytes } => {
            w.usize(*to);
            write_addr(w, *from);
            w.bytes(bytes);
        }
        Ev::TcpSyn { conn } => w.usize(*conn),
        Ev::TcpEstablish { conn, ok } => {
            w.usize(*conn);
            w.bool(*ok);
        }
        Ev::TcpData {
            conn,
            to_initiator,
            bytes,
        } => {
            w.usize(*conn);
            w.bool(*to_initiator);
            w.bytes(bytes);
        }
        Ev::TcpClose { conn, to_initiator } => {
            w.usize(*conn);
            w.bool(*to_initiator);
        }
        Ev::Timer { host, token } => {
            w.usize(*host);
            w.u64(*token);
        }
        Ev::StartHost { host } | Ev::StopHost { host } => w.usize(*host),
        Ev::SetReachable { host, reachable } => {
            w.usize(*host);
            w.bool(*reachable);
        }
    }
}

fn read_ev(r: &mut SnapReader<'_>) -> Result<Ev, SnapError> {
    Ok(match r.u8()? {
        0 => {
            let to = r.usize()?;
            let from = read_addr(r)?;
            let bytes = Payload::from(r.bytes()?);
            Ev::Udp { to, from, bytes }
        }
        1 => Ev::TcpSyn { conn: r.usize()? },
        2 => {
            let conn = r.usize()?;
            let ok = r.bool()?;
            Ev::TcpEstablish { conn, ok }
        }
        3 => {
            let conn = r.usize()?;
            let to_initiator = r.bool()?;
            let bytes = Payload::from(r.bytes()?);
            Ev::TcpData {
                conn,
                to_initiator,
                bytes,
            }
        }
        4 => {
            let conn = r.usize()?;
            let to_initiator = r.bool()?;
            Ev::TcpClose { conn, to_initiator }
        }
        5 => {
            let host = r.usize()?;
            let token = r.u64()?;
            Ev::Timer { host, token }
        }
        6 => Ev::StartHost { host: r.usize()? },
        7 => Ev::StopHost { host: r.usize()? },
        8 => {
            let host = r.usize()?;
            let reachable = r.bool()?;
            Ev::SetReachable { host, reachable }
        }
        _ => return Err(SnapError::Corrupt("event tag out of range")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Region;
    use std::cell::RefCell;
    use std::rc::Rc;

    type Log = Rc<RefCell<Vec<String>>>;

    /// A scriptable host for engine tests.
    struct Probe {
        log: Log,
        name: &'static str,
        /// Peer to ping over UDP at start.
        udp_target: Option<HostAddr>,
        /// Peer to dial over TCP at start.
        tcp_target: Option<HostAddr>,
        /// Echo received UDP back to the sender.
        echo: bool,
        /// Bytes to send once a TCP conn establishes.
        tcp_payload: Option<Vec<u8>>,
    }

    impl Probe {
        fn new(name: &'static str, log: Log) -> Probe {
            Probe {
                log,
                name,
                udp_target: None,
                tcp_target: None,
                echo: false,
                tcp_payload: None,
            }
        }
        fn logit(&self, s: String) {
            // Mirror every callback into the obs trace (no-op without a
            // recorder) so provenance tests see dispatch-stamped events.
            obs::event("probe.cb", &[]);
            self.log.borrow_mut().push(format!("{} {}", self.name, s));
        }
    }

    impl Host for Probe {
        fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
            self
        }

        fn on_start(&mut self, ctx: &mut Ctx) {
            self.logit(format!("start@{}", ctx.now_ms));
            if let Some(t) = self.udp_target {
                ctx.send_udp(t, b"hello".to_vec());
            }
            if let Some(t) = self.tcp_target {
                let conn = ctx.tcp_connect(t);
                self.logit(format!("dial conn={conn}"));
            }
        }
        fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
            self.logit(format!(
                "udp@{} from {} len={}",
                ctx.now_ms,
                from,
                datagram.len()
            ));
            if self.echo {
                ctx.send_udp(from, datagram.to_vec());
            }
        }
        fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
            match event {
                TcpEvent::Connected { conn, .. } => {
                    self.logit(format!("connected@{} rtt={}", ctx.now_ms, ctx.rtt_ms(conn)));
                    if let Some(p) = self.tcp_payload.take() {
                        ctx.tcp_send(conn, p);
                    }
                }
                TcpEvent::ConnectFailed { .. } => self.logit(format!("connfail@{}", ctx.now_ms)),
                TcpEvent::Incoming { .. } => self.logit(format!("incoming@{}", ctx.now_ms)),
                TcpEvent::Data { bytes, .. } => {
                    self.logit(format!("data@{} len={}", ctx.now_ms, bytes.len()))
                }
                TcpEvent::Closed { .. } => self.logit(format!("closed@{}", ctx.now_ms)),
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
            self.logit(format!("timer@{} token={token}", ctx.now_ms));
        }
        fn on_stop(&mut self, ctx: &mut Ctx) {
            self.logit(format!("stop@{}", ctx.now_ms));
        }
    }

    fn meta(reachable: bool) -> HostMeta {
        HostMeta {
            country: "US",
            asn: "Test",
            region: Region::NorthAmerica,
            reachable,
        }
    }

    fn addr(last: u8) -> HostAddr {
        HostAddr::new(Ipv4Addr::new(10, 0, 0, last), 30303)
    }

    fn lossless() -> SimConfig {
        SimConfig {
            udp_loss: 0.0,
            jitter_ms: 0,
            ..SimConfig::default()
        }
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        // Two hosts ping-pong UDP on jittered timers (exercising the
        // per-host RNG streams, NAT tables, and the loss coin), with a
        // counter in behaviour state. Running to T, snapshotting,
        // restoring into a fresh shell, and resuming to 2T must replay
        // exactly what an uninterrupted run to 2T does.
        struct Ticker {
            log: Log,
            name: &'static str,
            count: u32,
            peer: HostAddr,
        }
        impl Ticker {
            fn logit(&self, s: String) {
                self.log.borrow_mut().push(format!("{} {}", self.name, s));
            }
        }
        impl Host for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(100, 1);
            }
            fn on_udp(&mut self, ctx: &mut Ctx, from: HostAddr, datagram: &[u8]) {
                self.logit(format!(
                    "udp@{} from {} len={}",
                    ctx.now_ms,
                    from,
                    datagram.len()
                ));
            }
            fn on_tcp(&mut self, _ctx: &mut Ctx, _event: TcpEvent) {}
            fn on_timer(&mut self, ctx: &mut Ctx, _token: u64) {
                self.count += 1;
                self.logit(format!("tick@{} n={}", ctx.now_ms, self.count));
                ctx.send_udp(self.peer, vec![0u8; self.count as usize % 7 + 1]);
                let gap = 90 + ctx.rng().gen_range(0..20) as u64;
                ctx.set_timer(gap, 1);
            }
            fn save_state(&self) -> Option<Vec<u8>> {
                let mut w = SnapWriter::new();
                w.u32(self.count);
                Some(w.finish())
            }
            fn load_state(&mut self, bytes: &[u8]) -> bool {
                let mut r = SnapReader::new(bytes);
                let Ok(count) = r.u32() else { return false };
                self.count = count;
                r.finish().is_ok()
            }
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
        }

        let build = |log: &Log| -> NetSim {
            // Default config: jitter and UDP loss on, so RNG streams are
            // consulted on every delivery.
            let mut sim = NetSim::new(SimConfig::default());
            let a = Ticker {
                log: log.clone(),
                name: "a",
                count: 0,
                peer: addr(2),
            };
            let b = Ticker {
                log: log.clone(),
                name: "b",
                count: 0,
                peer: addr(1),
            };
            let ha = sim.add_host(addr(1), meta(true), Box::new(a));
            let hb = sim.add_host(addr(2), meta(true), Box::new(b));
            sim.schedule_start(ha, 0);
            sim.schedule_start(hb, 0);
            sim
        };

        // Uninterrupted reference run to 2T.
        let full_log: Log = Rc::default();
        let mut full = build(&full_log);
        full.run_until(10_000);

        // Run to T, snapshot, restore into a fresh shell, resume to 2T.
        let first_log: Log = Rc::default();
        let mut first = build(&first_log);
        first.run_until(5_000);
        let snap = first.snapshot().expect("snapshot");
        let resumed_log: Log = Rc::default();
        let mut resumed = build(&resumed_log);
        resumed.restore(&snap).expect("restore");
        resumed.run_until(10_000);

        let mut joined = first_log.borrow().clone();
        joined.extend(resumed_log.borrow().iter().cloned());
        assert_eq!(joined, *full_log.borrow());
        assert_eq!(resumed.events_processed(), full.events_processed());
        assert_eq!(resumed.udp_counters(), full.udp_counters());
        assert_eq!(resumed.now_ms(), full.now_ms());
        // A second snapshot of the resumed world equals a snapshot of the
        // uninterrupted world: the dynamic state converged byte-for-byte.
        assert_eq!(
            resumed.snapshot().expect("resnap"),
            full.snapshot().expect("resnap")
        );
    }

    #[test]
    fn udp_delivery_with_latency() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        let b = {
            let mut b = Probe::new("b", log.clone());
            b.echo = true;
            b
        };
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        let log = log.borrow();
        // a sends at 0; intra-region base latency is 15ms
        assert!(
            log.iter()
                .any(|l| l == "b udp@15 from 10.0.0.1:30303 len=5"),
            "{log:?}"
        );
        // echo arrives back at 30
        assert!(
            log.iter()
                .any(|l| l == "a udp@30 from 10.0.0.2:30303 len=5"),
            "{log:?}"
        );
    }

    #[test]
    fn udp_to_nated_host_dropped_until_solicited() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2)); // a is NATed and sends first
        let mut b = Probe::new("b", log.clone());
        b.echo = true;
        let ha = sim.add_host(addr(1), meta(false), Box::new(a)); // unreachable
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        // The echo *is* delivered because a's outbound punched a pinhole.
        assert!(log.borrow().iter().any(|l| l.starts_with("a udp@")));

        // Fresh sim: b sends unsolicited to NATed a → dropped.
        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let a = Probe::new("a", log2.clone());
        let mut b = Probe::new("b", log2.clone());
        b.udp_target = Some(addr(1));
        let ha = sim.add_host(addr(1), meta(false), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        assert!(
            !log2.borrow().iter().any(|l| l.starts_with("a udp@")),
            "{:?}",
            log2.borrow()
        );
        let (_, dropped) = sim.udp_counters();
        assert_eq!(dropped, 1);
    }

    #[test]
    fn tcp_connect_send_close() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![0u8; 100]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        let log = log.borrow();
        assert!(log.iter().any(|l| l.starts_with("b incoming@")), "{log:?}");
        assert!(log.iter().any(|l| l.starts_with("a connected@")), "{log:?}");
        assert!(
            log.iter()
                .any(|l| l.starts_with("b data@") && l.ends_with("len=100")),
            "{log:?}"
        );
        // RTT is observable and sane (2 × 15ms intra-region)
        assert!(log.iter().any(|l| l.contains("rtt=30")), "{log:?}");
    }

    #[test]
    fn tcp_connect_to_dead_or_unreachable_fails() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(9)); // nobody there
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        sim.schedule_start(ha, 0);
        sim.run_until(10_000);
        assert!(log.borrow().iter().any(|l| l.starts_with("a connfail@")));

        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log2.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log2.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(false), Box::new(b)); // NATed: no inbound TCP
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        assert!(log2.borrow().iter().any(|l| l.starts_with("a connfail@")));
    }

    #[test]
    fn stop_closes_connections_and_drops_timers() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.schedule_stop(hb, 5_000);
        sim.run_until(20_000);
        let log = log.borrow();
        assert!(log.iter().any(|l| l == "b stop@5000"), "{log:?}");
        assert!(log.iter().any(|l| l.starts_with("a closed@")), "{log:?}");
        assert!(!sim.is_alive(hb));
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerHost {
            log: Log,
        }
        impl Host for TimerHost {
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }

            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(300, 3);
                ctx.set_timer(100, 1);
                ctx.set_timer(200, 2);
            }
            fn on_udp(&mut self, _: &mut Ctx, _: HostAddr, _: &[u8]) {}
            fn on_tcp(&mut self, _: &mut Ctx, _: TcpEvent) {}
            fn on_timer(&mut self, ctx: &mut Ctx, token: u64) {
                self.log
                    .borrow_mut()
                    .push(format!("t{token}@{}", ctx.now_ms));
            }
        }
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let h = sim.add_host(
            addr(1),
            meta(true),
            Box::new(TimerHost { log: log.clone() }),
        );
        sim.schedule_start(h, 0);
        sim.run_until(1_000);
        assert_eq!(*log.borrow(), vec!["t1@100", "t2@200", "t3@300"]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64, u64) {
            let mut sim = NetSim::new(SimConfig {
                seed,
                udp_loss: 0.3,
                jitter_ms: 10,
                ..SimConfig::default()
            });
            let log: Log = Rc::default();
            let mut hosts = Vec::new();
            for i in 1..=10u8 {
                let mut p = Probe::new("x", log.clone());
                p.echo = true;
                p.udp_target = Some(addr((i % 10) + 1));
                hosts.push(sim.add_host(addr(i), meta(true), Box::new(p)));
            }
            for h in &hosts {
                sim.schedule_start(*h, 0);
            }
            sim.run_until(3_000);
            let (s, d) = sim.udp_counters();
            (sim.events_processed(), s, d)
        }
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8)); // different seed, different loss pattern
    }

    #[test]
    fn duplicate_address_panics() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.add_host(addr(1), meta(true), Box::new(Probe::new("b", log)));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tcp_counters_track_connects_bytes_and_death_resets() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![0u8; 100]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(2_000);
        let c = sim.tcp_counters();
        assert_eq!(c.connects, 1);
        assert_eq!(c.bytes, 100);
        assert_eq!(c.resets, 0);
        assert_eq!(c.segments_dropped, 0);
        // Killing b while the connection is up counts as an abortive reset.
        sim.schedule_stop(hb, 3_000);
        sim.run_until(5_000);
        assert_eq!(sim.tcp_counters().resets, 1);
    }

    #[test]
    fn udp_burst_loss_window_only_drops_inside_window() {
        // a pings b every 100ms via a timer; a 0.999-loss window covers
        // [1000, 2000). Outside the window everything is delivered.
        struct Pinger {
            log: Log,
            target: HostAddr,
        }
        impl Host for Pinger {
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(100, 1);
            }
            fn on_udp(&mut self, _: &mut Ctx, _: HostAddr, _: &[u8]) {}
            fn on_tcp(&mut self, _: &mut Ctx, _: TcpEvent) {}
            fn on_timer(&mut self, ctx: &mut Ctx, _: u64) {
                ctx.send_udp(self.target, b"ping".to_vec());
                ctx.set_timer(100, 1);
            }
            fn on_stop(&mut self, _: &mut Ctx) {
                self.log.borrow_mut().clear();
            }
        }
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut b = Probe::new("b", log.clone());
        b.echo = false;
        let ha = sim.add_host(
            addr(1),
            meta(true),
            Box::new(Pinger {
                log: log.clone(),
                target: addr(2),
            }),
        );
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Pair(addr(1), addr(2)),
            from_ms: 1_000,
            until_ms: 2_000,
            fault: crate::faults::Fault::UdpLoss(0.999),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(3_000);
        let log = log.borrow();
        let arrivals_in = |lo: u64, hi: u64| {
            log.iter()
                .filter(|l| {
                    l.starts_with("b udp@")
                        && l.split('@')
                            .nth(1)
                            .and_then(|r| r.split(' ').next())
                            .and_then(|t| t.parse::<u64>().ok())
                            .map(|t| t >= lo && t < hi)
                            .unwrap_or(false)
                })
                .count()
        };
        // ~10 sends per second; the window eats essentially all of them.
        assert!(arrivals_in(0, 1_000) >= 9, "{log:?}");
        assert!(arrivals_in(1_020, 2_000) <= 1, "{log:?}");
        assert!(arrivals_in(2_000, 3_000) >= 9, "{log:?}");
    }

    #[test]
    fn blackhole_fails_tcp_connects_and_reset_kills_streams() {
        // Blackhole window: the dial fails even though b is alive.
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Host(addr(2)),
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::Blackhole,
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        assert!(
            log.borrow().iter().any(|l| l.starts_with("a connfail@")),
            "{:?}",
            log.borrow()
        );

        // Reset window: the connection establishes, then the first data
        // segment resets it — both sides observe Closed.
        let log2: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log2.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 64]);
        let b = Probe::new("b", log2.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            // TcpReset only affects data segments, not the establishment
            // handshake, so the window can cover the whole run.
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::TcpReset,
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        let log2 = log2.borrow();
        assert!(
            log2.iter().any(|l| l.starts_with("a connected@")),
            "{log2:?}"
        );
        assert!(!log2.iter().any(|l| l.starts_with("b data@")), "{log2:?}");
        assert!(log2.iter().any(|l| l.starts_with("a closed@")), "{log2:?}");
        assert!(log2.iter().any(|l| l.starts_with("b closed@")), "{log2:?}");
        assert_eq!(sim.tcp_counters().resets, 1);
    }

    #[test]
    fn truncation_shortens_delivered_segments() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 64]);
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::TcpTruncate(16),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        assert!(
            log.borrow()
                .iter()
                .any(|l| l.starts_with("b data@") && l.ends_with("len=16")),
            "{:?}",
            log.borrow()
        );
        assert_eq!(sim.tcp_counters().bytes, 16);
    }

    #[test]
    fn latency_spike_delays_udp() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        let b = Probe::new("b", log.clone());
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.add_fault(crate::faults::FaultWindow {
            link: crate::faults::LinkSelector::Any,
            from_ms: 0,
            until_ms: 60_000,
            fault: crate::faults::Fault::LatencySpike(500),
        });
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        // Base intra-region latency is 15ms; the spike pushes it to 515.
        assert!(
            log.borrow().iter().any(|l| l.starts_with("b udp@515 ")),
            "{:?}",
            log.borrow()
        );
    }

    #[test]
    fn nat_flap_toggles_reachability_on_schedule() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let a = Probe::new("a", log.clone());
        let mut b = Probe::new("b", log.clone());
        b.udp_target = None;
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        // One flap: unreachable during [1000, 2000).
        sim.nat_flap(ha, 1_000, 1_000, 1);
        sim.run_until(500);
        assert!(sim.host_meta(ha).reachable);
        sim.run_until(1_500);
        assert!(!sim.host_meta(ha).reachable);
        sim.run_until(2_500);
        assert!(sim.host_meta(ha).reachable);
    }

    #[test]
    fn churn_burst_takes_hosts_down_together() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let ha = sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        let hb = sim.add_host(addr(2), meta(true), Box::new(Probe::new("b", log.clone())));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.churn_burst(&[ha, hb], 1_000, 500);
        sim.run_until(1_200);
        assert!(!sim.is_alive(ha) && !sim.is_alive(hb));
        sim.run_until(2_000);
        assert!(sim.is_alive(ha) && sim.is_alive(hb));
        let log = log.borrow();
        assert!(log.iter().any(|l| l == "a stop@1000"), "{log:?}");
        assert!(log.iter().any(|l| l == "a start@1500"), "{log:?}");
    }

    #[test]
    fn queue_depth_peak_export_matches_engine_high_water_mark() {
        // The per-event gauge now flows through an interned MetricId; the
        // exported value must still equal the engine-side high-water mark
        // and keep its exact Prometheus rendering.
        let rec = obs::Recorder::new();
        rec.install();
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        a.tcp_target = Some(addr(2));
        a.tcp_payload = Some(vec![7u8; 32]);
        let mut b = Probe::new("b", log.clone());
        b.echo = true;
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);

        let peak = sim.queue_depth_peak();
        assert!(peak >= 2, "ping-pong world should stack events, got {peak}");
        assert_eq!(rec.gauge("netsim.queue_depth_peak"), peak);
        assert!(
            rec.prometheus()
                .contains(&format!("netsim_queue_depth_peak {peak}\n")),
            "gauge missing from the Prometheus export"
        );
        obs::uninstall();
    }

    #[test]
    fn per_shard_depth_gauges_partition_the_peak() {
        // Single shard: netsim.shard.0.queue_depth_peak must equal the
        // global gauge byte-for-byte (the shard IS the whole scheduler).
        let rec = obs::Recorder::new();
        rec.install();
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let mut a = Probe::new("a", log.clone());
        a.udp_target = Some(addr(2));
        let mut b = Probe::new("b", log);
        b.echo = true;
        let ha = sim.add_host(addr(1), meta(true), Box::new(a));
        let hb = sim.add_host(addr(2), meta(true), Box::new(b));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(5_000);
        let peaks = sim.shard_queue_depth_peaks();
        assert_eq!(peaks.len(), 1);
        assert_eq!(peaks[0], sim.queue_depth_peak());
        assert_eq!(rec.gauge("netsim.shard.0.queue_depth_peak"), peaks[0]);
        assert!(rec
            .prometheus()
            .contains(&format!("netsim_shard_0_queue_depth_peak {}\n", peaks[0])));
        obs::uninstall();
    }

    #[test]
    fn sharded_depth_gauges_bound_the_global_peak() {
        let rec = obs::Recorder::new();
        rec.install();
        let log: Log = Rc::default();
        let mut sim = NetSim::new(SimConfig {
            shards: 3,
            ..lossless()
        });
        for i in 0..6u8 {
            let mut p = Probe::new("p", log.clone());
            p.echo = i % 2 == 0;
            p.udp_target = Some(addr(((i + 1) % 6) + 1));
            let h = sim.add_host(addr(i + 1), meta(true), Box::new(p));
            sim.schedule_start(h, 0);
        }
        sim.run_until(5_000);
        let peaks = sim.shard_queue_depth_peaks();
        assert_eq!(peaks.len(), 3);
        for (i, &p) in peaks.iter().enumerate() {
            assert!(p >= 1, "shard {i} never dispatched");
            assert!(p <= sim.queue_depth_peak());
            assert_eq!(rec.gauge(&format!("netsim.shard.{i}.queue_depth_peak")), p);
        }
        obs::uninstall();
    }

    #[test]
    fn provenance_chains_reach_roots_and_survive_sharding() {
        // Every obs trace event emitted during dispatch must carry a
        // causal chain that walks back to an external root (cause 0),
        // and the (key, cause, depth) stamps must be identical under
        // any shard count.
        fn run(shards: usize) -> Vec<(u64, u64, u32, String)> {
            let rec = obs::Recorder::new();
            rec.install();
            let log: Log = Rc::default();
            let mut sim = NetSim::new(SimConfig {
                seed: 7,
                shards,
                ..SimConfig::default()
            });
            let mut hosts = Vec::new();
            for i in 0..4u8 {
                let mut p = Probe::new("p", log.clone());
                p.echo = i % 2 == 0;
                p.udp_target = Some(addr(((i + 1) % 4) + 1));
                p.tcp_target = (i == 1).then(|| addr(((i + 2) % 4) + 1));
                p.tcp_payload = Some(vec![0u8; 16]);
                let m = HostMeta {
                    country: "US",
                    asn: "Test",
                    region: Region::ALL[i as usize],
                    reachable: true,
                };
                hosts.push(sim.add_host(addr(i + 1), m, Box::new(p)));
            }
            for &h in &hosts {
                sim.schedule_start(h, 0);
            }
            sim.run_until(4_000);
            let q = rec.query();
            // Dispatch-emitted events carry keys; chains terminate at
            // cause 0 without cycling.
            let keyed: Vec<&obs::TraceEvent> = q.events().iter().filter(|e| e.key != 0).collect();
            assert!(!keyed.is_empty(), "no dispatched trace events recorded");
            assert!(!q.roots().is_empty(), "no external roots visible");
            for e in &keyed {
                let chain = q.chain(e.key);
                let last = *chain.last().unwrap();
                assert_eq!(
                    q.cause_of(last),
                    Some(0),
                    "chain from key {} stops at non-root {}",
                    e.key,
                    last
                );
                assert_eq!(chain.len() as u32, e.depth + 1, "depth mismatch");
            }
            let stamps = q
                .events()
                .iter()
                .map(|e| (e.key, e.cause, e.depth, e.name.clone()))
                .collect();
            obs::uninstall();
            stamps
        }
        let base = run(1);
        assert!(
            base.iter().any(|s| s.2 >= 2),
            "world too shallow: no chains of depth >= 2"
        );
        assert_eq!(run(2), base, "provenance diverged under 2 shards");
        assert_eq!(run(4), base, "provenance diverged under 4 shards");
    }

    #[test]
    fn shard_count_does_not_change_the_trace() {
        // The tentpole property at engine scope: a mixed UDP/TCP/timer
        // world with loss, jitter, and churn replays the identical global
        // callback order — captured in one shared log — under any shard
        // count.
        fn run(shards: usize) -> (Vec<String>, u64, (u64, u64), TcpCounters) {
            let log: Log = Rc::default();
            let mut sim = NetSim::new(SimConfig {
                seed: 99,
                udp_loss: 0.2,
                jitter_ms: 8,
                shards,
                ..SimConfig::default()
            });
            let names = ["h0", "h1", "h2", "h3", "h4", "h5"];
            let mut hosts = Vec::new();
            for i in 0..6u8 {
                let mut p = Probe::new(names[i as usize], log.clone());
                p.echo = i % 2 == 0;
                p.udp_target = Some(addr(((i + 1) % 6) + 1));
                p.tcp_target = (i % 3 == 0).then(|| addr(((i + 2) % 6) + 1));
                p.tcp_payload = Some(vec![0u8; 32]);
                let m = HostMeta {
                    country: "US",
                    asn: "Test",
                    region: Region::ALL[i as usize],
                    reachable: true,
                };
                hosts.push(sim.add_host(addr(i + 1), m, Box::new(p)));
            }
            for &h in &hosts {
                sim.schedule_start(h, 0);
            }
            sim.churn_burst(&[hosts[1]], 2_000, 1_000);
            sim.run_until(8_000);
            assert_eq!(
                sim.shard_event_counts().iter().sum::<u64>(),
                sim.events_processed(),
                "per-shard counts must partition the event total"
            );
            let trace = log.borrow().clone();
            (
                trace,
                sim.events_processed(),
                sim.udp_counters(),
                sim.tcp_counters(),
            )
        }
        let base = run(1);
        assert!(base.1 > 20, "world too quiet to prove anything: {base:?}");
        for shards in [2, 3, 5] {
            assert_eq!(run(shards), base, "shards={shards} diverged");
        }
    }

    #[test]
    fn conn_cells_recycle_and_stale_ids_are_inert() {
        // Dial, close, wait for the wire to drain, dial again: the second
        // dial must reuse the slab cell under a bumped generation, and
        // the first (stale) id must be inert — no send, zero RTT.
        struct Redialer {
            target: HostAddr,
            conns: Rc<RefCell<Vec<ConnId>>>,
            stale_rtt: Rc<RefCell<Vec<u32>>>,
        }
        impl Host for Redialer {
            fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
                self
            }
            fn on_start(&mut self, ctx: &mut Ctx) {
                let c = ctx.tcp_connect(self.target);
                self.conns.borrow_mut().push(c);
            }
            fn on_udp(&mut self, _: &mut Ctx, _: HostAddr, _: &[u8]) {}
            fn on_tcp(&mut self, ctx: &mut Ctx, event: TcpEvent) {
                if let TcpEvent::Connected { conn, .. } = event {
                    ctx.tcp_close(conn);
                    if self.conns.borrow().len() == 1 {
                        ctx.set_timer(1_000, 1);
                    }
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx, _: u64) {
                let first = self.conns.borrow()[0];
                // Poking the stale id must be a no-op, not an aliased
                // access to the recycled cell.
                ctx.tcp_send(first, b"stale".to_vec());
                self.stale_rtt.borrow_mut().push(ctx.rtt_ms(first));
                let again = ctx.tcp_connect(self.target);
                self.conns.borrow_mut().push(again);
            }
        }
        let conns: Rc<RefCell<Vec<ConnId>>> = Rc::default();
        let stale_rtt: Rc<RefCell<Vec<u32>>> = Rc::default();
        let b_log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let ha = sim.add_host(
            addr(1),
            meta(true),
            Box::new(Redialer {
                target: addr(2),
                conns: conns.clone(),
                stale_rtt: stale_rtt.clone(),
            }),
        );
        let hb = sim.add_host(addr(2), meta(true), Box::new(Probe::new("b", b_log)));
        sim.schedule_start(ha, 0);
        sim.schedule_start(hb, 0);
        sim.run_until(10_000);
        let conns = conns.borrow();
        assert_eq!(conns.len(), 2, "second dial never happened");
        assert_eq!(conn_idx(conns[0]), conn_idx(conns[1]), "cell not recycled");
        assert_eq!(
            conn_gen(conns[1]),
            conn_gen(conns[0]) + 1,
            "generation not bumped on free"
        );
        assert_eq!(*stale_rtt.borrow(), vec![0], "stale id leaked a live RTT");
        assert_eq!(sim.tcp_counters().connects, 2);
        assert_eq!(sim.tcp_counters().bytes, 0, "stale send was delivered");
    }

    #[test]
    fn restart_after_stop_calls_on_start_again() {
        let log: Log = Rc::default();
        let mut sim = NetSim::new(lossless());
        let h = sim.add_host(addr(1), meta(true), Box::new(Probe::new("a", log.clone())));
        sim.schedule_start(h, 0);
        sim.schedule_stop(h, 100);
        sim.schedule_start(h, 200);
        sim.run_until(1_000);
        assert_eq!(
            *log.borrow(),
            vec!["a start@0", "a stop@100", "a start@200"]
        );
    }
}
