//! Zero-copy payload buffers for simulated datagrams and stream segments.
//!
//! A [`Payload`] is a window into a reference-counted, immutable byte
//! buffer. Cloning one is a pointer bump — the engine can carry a segment
//! from `Ctx::tcp_send` through the fault layer to delivery without ever
//! copying the bytes. The two mutating faults stay cheap, too:
//!
//! * truncation ([`Payload::truncate`]) just narrows the window;
//! * corruption ([`Payload::make_mut`]) copies on write, and only when the
//!   buffer is actually shared or sliced.
//!
//! Hosts keep handing the engine `Vec<u8>`s (every send site takes
//! `impl Into<Payload>`), and receive `&[u8]` views back out through
//! deref, so the protocol crates never see this type change shape.

use std::rc::Rc;

/// A cheaply clonable, immutable byte buffer with an adjustable window.
// shard-state -- payload bytes ride inside every cross-host event
#[derive(Clone)]
pub struct Payload {
    // detlint: allow(R11) -- single-thread sharing today; the sharding plan swaps this Rc for Arc wholesale
    data: Rc<[u8]>,
    start: usize,
    end: usize,
}

impl Payload {
    /// Empty payload.
    pub fn new() -> Payload {
        Payload {
            data: Rc::from([]),
            start: 0,
            end: 0,
        }
    }

    /// Bytes in the window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Shrink the window to the first `len` bytes (no-op if already
    /// shorter). Never copies.
    pub fn truncate(&mut self, len: usize) {
        self.end = self.end.min(self.start + len);
    }

    /// Mutable access to the visible bytes, copying them into a fresh
    /// unshared buffer first if this payload is shared or sliced.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let windowed = self.start != 0 || self.end != self.data.len();
        if windowed || Rc::get_mut(&mut self.data).is_none() {
            self.data = Rc::from(&self.data[self.start..self.end]);
            self.start = 0;
            self.end = self.data.len();
        }
        Rc::get_mut(&mut self.data).expect("payload buffer is unshared after copy-on-write")
    }

    /// How many `Payload`s currently share this buffer (diagnostics).
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.data)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        let end = v.len();
        Payload {
            data: Rc::from(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload {
            data: Rc::from(v),
            start: 0,
            end: v.len(),
        }
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload::from(&v[..])
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_buffer() {
        let p: Payload = vec![1u8, 2, 3, 4].into();
        let q = p.clone();
        assert_eq!(p.ref_count(), 2);
        assert_eq!(&*q, &[1, 2, 3, 4]);
    }

    #[test]
    fn truncate_narrows_without_copying() {
        let p: Payload = vec![9u8; 64].into();
        let mut q = p.clone();
        q.truncate(16);
        assert_eq!(q.len(), 16);
        assert_eq!(p.len(), 64); // the original window is untouched
        assert_eq!(p.ref_count(), 2); // still the same buffer
        q.truncate(100); // longer than the window: no-op
        assert_eq!(q.len(), 16);
    }

    #[test]
    fn make_mut_copies_only_when_shared_or_sliced() {
        let mut p: Payload = vec![0u8; 8].into();
        // Unique and unsliced: mutation happens in place.
        p.make_mut()[0] = 0xAA;
        assert_eq!(p[0], 0xAA);

        // Shared: the writer gets its own copy, the reader is unaffected.
        let mut q = p.clone();
        q.make_mut()[0] = 0xBB;
        assert_eq!(p[0], 0xAA);
        assert_eq!(q[0], 0xBB);
        assert_eq!(p.ref_count(), 1);

        // Sliced: mutation rebases the window to a fresh buffer.
        let mut r = p.clone();
        r.truncate(4);
        r.make_mut()[3] = 0xCC;
        assert_eq!(r.len(), 4);
        assert_eq!(r[3], 0xCC);
        assert_eq!(p[3], 0);
    }

    #[test]
    fn equality_compares_visible_bytes() {
        let a: Payload = vec![1u8, 2, 3].into();
        let mut b: Payload = vec![1u8, 2, 3, 9].into();
        b.truncate(3);
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "Payload(3 bytes)");
    }
}
