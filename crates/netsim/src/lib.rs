//! A deterministic discrete-event network simulator.
//!
//! This crate substitutes for the live Internet in the NodeFinder
//! reproduction (see DESIGN.md). It models:
//!
//! * **UDP datagrams** with per-pair latency, random loss, and NAT
//!   filtering (unreachable hosts receive only solicited traffic);
//! * **TCP connections** with a 1-RTT establishment handshake, ordered
//!   delivery, close events, and an observable smoothed RTT (the paper's
//!   crawler logs connection latency from the socket's sRTT);
//! * **host lifecycle** — churn is expressed by starting/stopping hosts on
//!   a schedule;
//! * **fault injection** — per-link fault windows (burst loss, latency
//!   spikes, blackholes, TCP resets, truncation/corruption), churn bursts,
//!   and NAT flaps, all deterministic (see [`faults`]);
//! * **geography** — every host carries a country/AS label and a region
//!   used by the latency matrix, feeding the paper's Figures 12–13.
//!
//! Determinism: one seeded RNG, a totally-ordered event queue
//! (time, sequence number), and no wall-clock access anywhere. Running the
//! same world twice produces identical logs.
//!
//! The design is event-driven in the smoltcp spirit: protocol state
//! machines (discv4, RLPx, DEVp2p) stay sans-IO, and a [`Host`]
//! implementation pumps bytes between them and the simulator.
#![forbid(unsafe_code)]

mod engine;
pub mod faults;
pub mod payload;
pub mod sched;
pub mod snap;
mod topology;

pub use engine::{ConnId, Ctx, Host, HostAddr, HostId, NetSim, SimConfig, TcpCounters, TcpEvent};
pub use faults::{ChurnBurst, Fault, FaultSchedule, FaultWindow, LinkSelector, NatFlap, Scenario};
pub use payload::Payload;
pub use snap::{SnapError, SnapReader, SnapWriter, SNAP_MAGIC, SNAP_VERSION};
pub use topology::{
    latency_between, min_link_latency_ms, HostMeta, Region, COUNTRIES, REGION_OF_COUNTRY,
};
