//! Strict, zero-copy RLP decoder.

use crate::error::RlpError;
use crate::traits::Decodable;

/// A lazily-parsed view over one RLP item (string or list).
///
/// `Rlp` borrows the underlying buffer; navigation ([`Rlp::at`],
/// [`Rlp::iter`]) yields sub-views without copying. All length arithmetic is
/// checked so malformed input can never cause a panic, only an `Err`.
#[derive(Debug, Clone, Copy)]
pub struct Rlp<'a> {
    bytes: &'a [u8],
}

/// Parsed header of the item at the front of a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    /// Offset where the payload starts.
    payload_start: usize,
    /// Payload length in bytes.
    payload_len: usize,
    /// Whether the item is a list.
    is_list: bool,
}

/// Parse the header of the first item in `buf`, enforcing canonical form.
fn parse_header(buf: &[u8]) -> Result<Header, RlpError> {
    let first = *buf.first().ok_or(RlpError::Truncated)?;
    let h = match first {
        0x00..=0x7f => Header {
            payload_start: 0,
            payload_len: 1,
            is_list: false,
        },
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            if len == 1 {
                let b = *buf.get(1).ok_or(RlpError::Truncated)?;
                if b < 0x80 {
                    // must have been encoded as the byte itself
                    return Err(RlpError::NonCanonical);
                }
            }
            Header {
                payload_start: 1,
                payload_len: len,
                is_list: false,
            }
        }
        0xb8..=0xbf => {
            let len_of_len = (first - 0xb7) as usize;
            let len = parse_long_length(buf, len_of_len)?;
            if len <= 55 {
                return Err(RlpError::NonCanonical);
            }
            Header {
                payload_start: 1 + len_of_len,
                payload_len: len,
                is_list: false,
            }
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            Header {
                payload_start: 1,
                payload_len: len,
                is_list: true,
            }
        }
        0xf8..=0xff => {
            let len_of_len = (first - 0xf7) as usize;
            let len = parse_long_length(buf, len_of_len)?;
            if len <= 55 {
                return Err(RlpError::NonCanonical);
            }
            Header {
                payload_start: 1 + len_of_len,
                payload_len: len,
                is_list: true,
            }
        }
    };
    if buf.len() < h.payload_start + h.payload_len {
        return Err(RlpError::Truncated);
    }
    Ok(h)
}

fn parse_long_length(buf: &[u8], len_of_len: usize) -> Result<usize, RlpError> {
    let len_bytes = buf.get(1..1 + len_of_len).ok_or(RlpError::Truncated)?;
    if len_bytes[0] == 0 {
        return Err(RlpError::NonCanonical);
    }
    // usize is 64-bit on every supported target; len_of_len <= 8 by format.
    let mut len: usize = 0;
    for &b in len_bytes {
        len = len.checked_mul(256).ok_or(RlpError::NonCanonical)?;
        len = len.checked_add(b as usize).ok_or(RlpError::NonCanonical)?;
    }
    Ok(len)
}

impl<'a> Rlp<'a> {
    /// Wrap a buffer whose first bytes form an RLP item.
    pub fn new(bytes: &'a [u8]) -> Self {
        Rlp { bytes }
    }

    /// The raw bytes of this view (may extend beyond the first item).
    pub fn as_raw(&self) -> &'a [u8] {
        self.bytes
    }

    /// Total encoded size (header + payload) of the first item.
    pub fn item_len(&self) -> Result<usize, RlpError> {
        let h = parse_header(self.bytes)?;
        Ok(h.payload_start + h.payload_len)
    }

    /// Error unless the buffer contains exactly one item with no trailing
    /// bytes.
    // conformance: strict -- this is the named opt-in point for whole-buffer decoding
    pub fn ensure_exact(&self) -> Result<(), RlpError> {
        if self.item_len()? != self.bytes.len() {
            // conformance: strict -- sole construction site of the error R7 gates
            return Err(RlpError::TrailingBytes);
        }
        Ok(())
    }

    /// Whether the item is a list.
    pub fn is_list(&self) -> bool {
        matches!(parse_header(self.bytes), Ok(h) if h.is_list)
    }

    /// Whether the item is a string (data) item.
    pub fn is_data(&self) -> bool {
        matches!(parse_header(self.bytes), Ok(h) if !h.is_list)
    }

    /// Whether the item is the empty string (`0x80`), used by several wire
    /// messages to mark absent optional fields.
    pub fn is_empty(&self) -> bool {
        matches!(parse_header(self.bytes), Ok(h) if !h.is_list && h.payload_len == 0)
    }

    /// Payload bytes of a string item.
    pub fn data(&self) -> Result<&'a [u8], RlpError> {
        let h = parse_header(self.bytes)?;
        if h.is_list {
            return Err(RlpError::ExpectedData);
        }
        Ok(&self.bytes[h.payload_start..h.payload_start + h.payload_len])
    }

    /// Payload bytes of a list item (the concatenated encodings of its
    /// children).
    pub fn list_payload(&self) -> Result<&'a [u8], RlpError> {
        let h = parse_header(self.bytes)?;
        if !h.is_list {
            return Err(RlpError::ExpectedList);
        }
        Ok(&self.bytes[h.payload_start..h.payload_start + h.payload_len])
    }

    /// Number of direct children of a list item.
    pub fn item_count(&self) -> Result<usize, RlpError> {
        let mut payload = self.list_payload()?;
        let mut n = 0;
        while !payload.is_empty() {
            let h = parse_header(payload)?;
            payload = &payload[h.payload_start + h.payload_len..];
            n += 1;
        }
        Ok(n)
    }

    /// The `index`-th child of a list item.
    pub fn at(&self, index: usize) -> Result<Rlp<'a>, RlpError> {
        let mut payload = self.list_payload()?;
        let mut i = 0;
        while !payload.is_empty() {
            let h = parse_header(payload)?;
            let total = h.payload_start + h.payload_len;
            if i == index {
                return Ok(Rlp::new(&payload[..total]));
            }
            payload = &payload[total..];
            i += 1;
        }
        Err(RlpError::IndexOutOfBounds)
    }

    /// Iterate the children of a list item. Malformed children terminate the
    /// iteration (use [`Rlp::item_count`] first to validate).
    pub fn iter(&self) -> RlpIter<'a> {
        RlpIter {
            payload: self.list_payload().unwrap_or(&[]),
        }
    }

    /// Decode the item as `T`.
    pub fn as_val<T: Decodable>(&self) -> Result<T, RlpError> {
        T::rlp_decode(self)
    }

    /// Decode a list item as `Vec<T>`.
    pub fn as_list<T: Decodable>(&self) -> Result<Vec<T>, RlpError> {
        let count = self.item_count()?;
        let mut out = Vec::with_capacity(count);
        for item in self.iter() {
            out.push(T::rlp_decode(&item)?);
        }
        Ok(out)
    }

    /// Decode as an unsigned integer up to 128 bits, canonical form only.
    pub fn as_uint(&self, max_bytes: usize) -> Result<u128, RlpError> {
        let data = self.data()?;
        if data.len() > max_bytes {
            return Err(RlpError::BadInteger);
        }
        if data.first() == Some(&0) {
            return Err(RlpError::BadInteger);
        }
        let mut v: u128 = 0;
        for &b in data {
            v = (v << 8) | b as u128;
        }
        Ok(v)
    }

    /// Decode as `u64`.
    pub fn as_u64(&self) -> Result<u64, RlpError> {
        Ok(self.as_uint(8)? as u64)
    }

    /// Decode as UTF-8 text.
    pub fn as_str(&self) -> Result<&'a str, RlpError> {
        std::str::from_utf8(self.data()?).map_err(|_| RlpError::BadUtf8)
    }

    /// Decode a string item into a fixed-size array (hashes, node IDs...).
    pub fn as_array<const N: usize>(&self) -> Result<[u8; N], RlpError> {
        let data = self.data()?;
        if data.len() != N {
            return Err(RlpError::BadLength {
                expected: N,
                actual: data.len(),
            });
        }
        let mut out = [0u8; N];
        out.copy_from_slice(data);
        Ok(out)
    }
}

/// Iterator over the children of an RLP list.
#[derive(Debug, Clone)]
pub struct RlpIter<'a> {
    payload: &'a [u8],
}

impl<'a> Iterator for RlpIter<'a> {
    type Item = Rlp<'a>;

    fn next(&mut self) -> Option<Rlp<'a>> {
        if self.payload.is_empty() {
            return None;
        }
        let h = parse_header(self.payload).ok()?;
        let total = h.payload_start + h.payload_len;
        let item = Rlp::new(&self.payload[..total]);
        self.payload = &self.payload[total..];
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_forms() {
        assert_eq!(
            parse_header(&[0x05]).unwrap(),
            Header {
                payload_start: 0,
                payload_len: 1,
                is_list: false
            }
        );
        assert_eq!(
            parse_header(&[0x82, 1, 2]).unwrap(),
            Header {
                payload_start: 1,
                payload_len: 2,
                is_list: false
            }
        );
        assert_eq!(
            parse_header(&[0xc2, 0x01, 0x02]).unwrap(),
            Header {
                payload_start: 1,
                payload_len: 2,
                is_list: true
            }
        );
    }

    #[test]
    fn empty_buffer_errors() {
        assert_eq!(parse_header(&[]), Err(RlpError::Truncated));
    }

    #[test]
    fn long_length_with_zero_msb_rejected() {
        assert_eq!(
            parse_header(&[0xb9, 0x00, 0x40]),
            Err(RlpError::NonCanonical)
        );
    }

    #[test]
    fn empty_string_is_empty() {
        assert!(Rlp::new(&[0x80]).is_empty());
        assert!(!Rlp::new(&[0x01]).is_empty());
        assert!(!Rlp::new(&[0xc0]).is_empty());
    }
}
