//! Error type for RLP decoding.

use std::fmt;

/// Reasons an RLP payload can fail to decode.
///
/// The decoder is strict: anything that is not the canonical encoding of a
/// value is rejected, because Ethereum wire protocols sign and hash the raw
/// bytes and accepting equivalent-but-different encodings would allow
/// malleability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RlpError {
    /// The buffer ended before the announced item length.
    Truncated,
    /// A value used the long form where the short form (or the single-byte
    /// form) was required, or a big-endian length had leading zero bytes.
    NonCanonical,
    /// Expected a string item but found a list.
    ExpectedData,
    /// Expected a list item but found a string.
    ExpectedList,
    /// List index out of bounds.
    IndexOutOfBounds,
    /// Integer had leading zero bytes or did not fit the target type.
    BadInteger,
    /// A fixed-size field (hash, node ID…) had the wrong length.
    BadLength {
        /// Length the caller required.
        expected: usize,
        /// Length found on the wire.
        actual: usize,
    },
    /// String data was not valid UTF-8 when a `String` was requested.
    BadUtf8,
    /// Extra bytes followed the decoded item where exactly one item was
    /// expected.
    TrailingBytes,
    /// A boolean field held something other than canonical 0 or 1.
    BadBool,
    /// Catch-all for protocol-level interpretation errors raised by
    /// [`Decodable`](crate::Decodable) impls in other crates.
    Custom(&'static str),
}

impl fmt::Display for RlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlpError::Truncated => write!(f, "rlp: input truncated"),
            RlpError::NonCanonical => write!(f, "rlp: non-canonical encoding"),
            RlpError::ExpectedData => write!(f, "rlp: expected string, found list"),
            RlpError::ExpectedList => write!(f, "rlp: expected list, found string"),
            RlpError::IndexOutOfBounds => write!(f, "rlp: list index out of bounds"),
            RlpError::BadInteger => write!(f, "rlp: invalid integer encoding"),
            RlpError::BadLength { expected, actual } => {
                write!(
                    f,
                    "rlp: bad field length, expected {expected}, got {actual}"
                )
            }
            RlpError::BadUtf8 => write!(f, "rlp: string is not valid utf-8"),
            RlpError::TrailingBytes => write!(f, "rlp: trailing bytes after item"),
            RlpError::BadBool => write!(f, "rlp: invalid boolean"),
            RlpError::Custom(msg) => write!(f, "rlp: {msg}"),
        }
    }
}

impl std::error::Error for RlpError {}
