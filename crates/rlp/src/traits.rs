//! `Encodable` / `Decodable` traits plus implementations for primitives.

use crate::decode::Rlp;
use crate::encode::{encode_str_header_into, RlpStream};
use crate::error::RlpError;

/// Types that can append themselves to an [`RlpStream`].
pub trait Encodable {
    /// Append this value (as exactly one RLP item) to the stream.
    fn rlp_append(&self, s: &mut RlpStream);
}

/// Types that can be decoded from a single [`Rlp`] item.
pub trait Decodable: Sized {
    /// Decode from one RLP item.
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError>;
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Encodable for $t {
            fn rlp_append(&self, s: &mut RlpStream) {
                s.append_uint(*self as u128);
            }
        }
        impl Decodable for $t {
            fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
                let v = rlp.as_uint(std::mem::size_of::<$t>())?;
                Ok(v as $t)
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize, u128);

impl Encodable for bool {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_uint(*self as u128);
    }
}

impl Decodable for bool {
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
        match rlp.as_uint(1)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(RlpError::BadBool),
        }
    }
}

impl Encodable for [u8] {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self);
    }
}

impl Encodable for &[u8] {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self);
    }
}

impl Encodable for Vec<u8> {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self);
    }
}

impl Decodable for Vec<u8> {
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
        Ok(rlp.data()?.to_vec())
    }
}

impl Encodable for str {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self.as_bytes());
    }
}

impl Encodable for &str {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self.as_bytes());
    }
}

impl Encodable for String {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self.as_bytes());
    }
}

impl Decodable for String {
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
        Ok(rlp.as_str()?.to_owned())
    }
}

impl<const N: usize> Encodable for [u8; N] {
    fn rlp_append(&self, s: &mut RlpStream) {
        s.append_bytes(self);
    }
}

impl<const N: usize> Decodable for [u8; N] {
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
        rlp.as_array::<N>()
    }
}

impl<T: Encodable> Encodable for Vec<T>
where
    T: EncodableListElem,
{
    fn rlp_append(&self, s: &mut RlpStream) {
        s.begin_list(self.len());
        for item in self {
            s.append(item);
        }
    }
}

/// Marker trait distinguishing element types whose `Vec` should encode as an
/// RLP *list* (as opposed to `Vec<u8>`, which encodes as a string).
pub trait EncodableListElem {}

impl<T: Decodable + DecodableListElem> Decodable for Vec<T> {
    fn rlp_decode(rlp: &Rlp<'_>) -> Result<Self, RlpError> {
        rlp.as_list()
    }
}

/// Marker trait mirror of [`EncodableListElem`] for decoding.
pub trait DecodableListElem {}

/// Append the canonical RLP string encoding of `bytes` to `out` without
/// constructing an [`RlpStream`] — handy when splicing one string item
/// into a hand-built buffer.
///
/// ```
/// let mut out = Vec::new();
/// rlp::append_str(&mut out, b"dog");
/// assert_eq!(out, vec![0x83, b'd', b'o', b'g']);
/// ```
pub fn append_str(out: &mut Vec<u8>, bytes: &[u8]) {
    encode_str_header_into(out, bytes);
}

#[cfg(test)]
mod tests {
    use crate::{decode, encode};

    #[test]
    fn usize_roundtrip() {
        for v in [0usize, 1, 55, 56, 1 << 20] {
            let back: usize = decode(&encode(&v)).unwrap();
            assert_eq!(back, v);
        }
    }
}
