//! Recursive Length Prefix (RLP) encoding and decoding.
//!
//! RLP is the serialization format used by every layer of the Ethereum
//! network stack: discv4 discovery packets, the RLPx handshake, DEVp2p
//! HELLO/DISCONNECT messages, and the Ethereum subprotocol (`eth/62-63`)
//! all carry RLP payloads.
//!
//! The format has exactly two kinds of items:
//!
//! * **strings** — byte sequences, and
//! * **lists** — heterogeneous sequences of items.
//!
//! Canonical encoding rules (per the Ethereum Yellow Paper, Appendix B):
//!
//! * a single byte in `0x00..=0x7f` encodes as itself;
//! * a string of 0–55 bytes encodes as `0x80 + len` followed by the bytes;
//! * a longer string encodes as `0xb7 + len_of_len`, the big-endian length,
//!   then the bytes;
//! * a list whose payload is 0–55 bytes encodes as `0xc0 + len` plus payload;
//! * a longer list encodes as `0xf7 + len_of_len`, the big-endian length,
//!   then the payload.
//!
//! The decoder in this crate is strict: it rejects non-canonical encodings
//! (leading zeros in lengths, short payloads using long forms, single bytes
//! below `0x80` wrapped in a string header) because the Ethereum wire
//! protocols require canonical RLP and because accepting non-canonical input
//! opens signature-malleability holes at the discovery layer.
//!
//! # Quick example
//!
//! ```
//! use rlp::{RlpStream, Rlp};
//!
//! let mut s = RlpStream::new_list(3);
//! s.append(&17u64).append(&"abc").append_empty();
//! let bytes = s.out();
//!
//! let r = Rlp::new(&bytes);
//! assert_eq!(r.item_count().unwrap(), 3);
//! assert_eq!(r.at(0).unwrap().as_u64().unwrap(), 17);
//! assert_eq!(r.at(1).unwrap().as_str().unwrap(), "abc");
//! ```
#![forbid(unsafe_code)]
// Unit tests may panic on impossible states; production code may not.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod decode;
mod encode;
mod error;
mod traits;

pub use decode::{Rlp, RlpIter};
pub use encode::RlpStream;
pub use error::RlpError;
pub use traits::{append_str, Decodable, DecodableListElem, Encodable, EncodableListElem};

/// Encode any [`Encodable`] value to a standalone RLP byte vector.
pub fn encode<T: Encodable + ?Sized>(value: &T) -> Vec<u8> {
    let mut s = RlpStream::new();
    value.rlp_append(&mut s);
    s.out()
}

/// Encode a slice of values as an RLP list.
pub fn encode_list<T: Encodable>(values: &[T]) -> Vec<u8> {
    let mut s = RlpStream::new_list(values.len());
    for v in values {
        s.append(v);
    }
    s.out()
}

/// Decode a standalone RLP item into any [`Decodable`] type.
///
/// Fails if `bytes` does not contain exactly one item (trailing garbage is an
/// error — wire messages must be fully consumed).
pub fn decode<T: Decodable>(bytes: &[u8]) -> Result<T, RlpError> {
    let rlp = Rlp::new(bytes);
    // conformance: strict -- one-shot decode is documented as whole-buffer-exact
    rlp.ensure_exact()?;
    T::rlp_decode(&rlp)
}

/// Decode an RLP list into a vector of `T`.
pub fn decode_list<T: Decodable>(bytes: &[u8]) -> Result<Vec<T>, RlpError> {
    let rlp = Rlp::new(bytes);
    // conformance: strict -- same whole-buffer contract as `decode` above
    rlp.ensure_exact()?;
    rlp.as_list()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc<T: Encodable + ?Sized>(v: &T) -> Vec<u8> {
        encode(v)
    }

    #[test]
    fn encode_empty_string() {
        assert_eq!(enc(&""), vec![0x80]);
        assert_eq!(enc(&b"".as_slice()), vec![0x80]);
    }

    #[test]
    fn encode_single_bytes() {
        assert_eq!(enc(&b"\x00".as_slice()), vec![0x00]);
        assert_eq!(enc(&b"\x0f".as_slice()), vec![0x0f]);
        assert_eq!(enc(&b"\x7f".as_slice()), vec![0x7f]);
        // 0x80 needs a header
        assert_eq!(enc(&b"\x80".as_slice()), vec![0x81, 0x80]);
    }

    #[test]
    fn encode_short_string() {
        assert_eq!(enc(&"dog"), vec![0x83, b'd', b'o', b'g']);
    }

    #[test]
    fn encode_long_string() {
        // The canonical yellow-paper test vector: a 56-byte string takes the
        // long form with a one-byte length.
        let s = "Lorem ipsum dolor sit amet, consectetur adipisicing elit";
        assert_eq!(s.len(), 56);
        let out = enc(&s);
        assert_eq!(out[0], 0xb8);
        assert_eq!(out[1], 56);
        assert_eq!(&out[2..], s.as_bytes());
    }

    #[test]
    fn encode_integers() {
        assert_eq!(enc(&0u64), vec![0x80]);
        assert_eq!(enc(&1u64), vec![0x01]);
        assert_eq!(enc(&15u64), vec![0x0f]);
        assert_eq!(enc(&1024u64), vec![0x82, 0x04, 0x00]);
        assert_eq!(enc(&0x7fu64), vec![0x7f]);
        assert_eq!(enc(&0x80u64), vec![0x81, 0x80]);
        assert_eq!(
            enc(&u64::MAX),
            vec![0x88, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff]
        );
    }

    #[test]
    fn encode_empty_list() {
        let s = RlpStream::new_list(0);
        assert_eq!(s.out(), vec![0xc0]);
    }

    #[test]
    fn encode_string_list() {
        // ["cat", "dog"] -> 0xc8 0x83 cat 0x83 dog
        let mut s = RlpStream::new_list(2);
        s.append(&"cat").append(&"dog");
        assert_eq!(
            s.out(),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
    }

    #[test]
    fn encode_nested_empty_lists() {
        // [ [], [[]], [ [], [[]] ] ] — the classic "set theoretic
        // representation of three" vector.
        let mut s = RlpStream::new_list(3);
        s.begin_list(0);
        s.begin_list(1);
        s.begin_list(0);
        s.begin_list(2);
        s.begin_list(0);
        s.begin_list(1);
        s.begin_list(0);
        assert_eq!(
            s.out(),
            vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]
        );
    }

    #[test]
    fn decode_roundtrip_basics() {
        let v: u64 = decode(&enc(&1_000_000u64)).unwrap();
        assert_eq!(v, 1_000_000);
        let s: String = decode(&enc(&"hello devp2p")).unwrap();
        assert_eq!(s, "hello devp2p");
        let b: Vec<u8> = decode(&enc(&vec![1u8, 2, 3].as_slice())).unwrap();
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn decode_list_roundtrip() {
        let xs = vec![1u64, 2, 3, 0xdead_beef];
        let out = encode_list(&xs);
        let back: Vec<u64> = decode_list(&out).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = enc(&5u64);
        bytes.push(0x00);
        assert!(decode::<u64>(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_noncanonical_single_byte() {
        // 0x81 0x05 is the non-canonical form of 0x05.
        assert!(decode::<u64>(&[0x81, 0x05]).is_err());
    }

    #[test]
    fn decode_rejects_leading_zero_integer() {
        // 0x82 0x00 0x01 would decode to 1 but has a leading zero byte.
        assert!(decode::<u64>(&[0x82, 0x00, 0x01]).is_err());
    }

    #[test]
    fn decode_rejects_noncanonical_long_length() {
        // long form (0xb8) used for a 3-byte string must be rejected
        assert!(Rlp::new(&[0xb8, 0x03, 1, 2, 3]).data().is_err());
        // leading zero in the length-of-length bytes
        assert!(Rlp::new(&[0xb9, 0x00, 0x38, 0x00]).data().is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        assert!(decode::<String>(&[0x83, b'c', b'a']).is_err());
        let r = Rlp::new(&[0xc8, 0x83, b'c', b'a']);
        assert!(r.item_count().is_err() || r.at(0).is_err());
    }

    #[test]
    fn u64_overflow_rejected() {
        // 9-byte integer cannot fit u64
        let bytes = [0x89, 1, 0, 0, 0, 0, 0, 0, 0, 0];
        assert!(decode::<u64>(&bytes).is_err());
    }

    #[test]
    fn heterogeneous_list_access() {
        let mut s = RlpStream::new_list(3);
        s.append(&"cat");
        s.append(&42u64);
        s.begin_list(2);
        s.append(&1u8);
        s.append(&2u8);
        let out = s.out();

        let r = Rlp::new(&out);
        assert!(r.is_list());
        assert_eq!(r.item_count().unwrap(), 3);
        assert_eq!(r.at(0).unwrap().as_str().unwrap(), "cat");
        assert_eq!(r.at(1).unwrap().as_u64().unwrap(), 42);
        let inner = r.at(2).unwrap();
        assert!(inner.is_list());
        assert_eq!(inner.item_count().unwrap(), 2);
        assert!(r.at(3).is_err());
    }

    #[test]
    fn iterator_yields_items_in_order() {
        let xs = vec![10u64, 20, 30];
        let out = encode_list(&xs);
        let r = Rlp::new(&out);
        let items: Vec<u64> = r.iter().map(|i| i.as_u64().unwrap()).collect();
        assert_eq!(items, xs);
    }

    #[test]
    fn fixed_array_roundtrip() {
        let a: [u8; 32] = [7; 32];
        let out = enc(&a);
        let back: [u8; 32] = decode(&out).unwrap();
        assert_eq!(back, a);
        // wrong length must fail
        assert!(decode::<[u8; 16]>(&out).is_err());
    }

    #[test]
    fn u16_u32_roundtrip() {
        for v in [0u16, 1, 255, 256, 30303, u16::MAX] {
            let back: u16 = decode(&enc(&v)).unwrap();
            assert_eq!(back, v);
        }
        for v in [0u32, 1, 65536, u32::MAX] {
            let back: u32 = decode(&enc(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn bool_roundtrip() {
        assert_eq!(enc(&true), vec![0x01]);
        assert_eq!(enc(&false), vec![0x80]);
        assert!(decode::<bool>(&enc(&true)).unwrap());
        assert!(!decode::<bool>(&enc(&false)).unwrap());
    }

    #[test]
    fn u128_roundtrip() {
        for v in [0u128, 1, u64::MAX as u128 + 1, u128::MAX] {
            let back: u128 = decode(&enc(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn nested_stream_finalizes_sizes() {
        // outer list containing a long inner string forcing long-form lengths
        let long = vec![0xabu8; 300];
        let mut s = RlpStream::new_list(2);
        s.append(&long.as_slice());
        s.append(&7u8);
        let out = s.out();
        let r = Rlp::new(&out);
        assert_eq!(r.at(0).unwrap().data().unwrap(), long.as_slice());
        assert_eq!(r.at(1).unwrap().as_u64().unwrap(), 7);
    }

    #[test]
    fn raw_append_splices_preencoded() {
        let inner = encode(&"spliced");
        let mut s = RlpStream::new_list(2);
        s.append_raw(&inner, 1);
        s.append(&1u8);
        let out = s.out();
        let r = Rlp::new(&out);
        assert_eq!(r.at(0).unwrap().as_str().unwrap(), "spliced");
    }

    #[test]
    fn as_val_generic_decoding() {
        let out = encode(&123u64);
        let r = Rlp::new(&out);
        let v: u64 = r.as_val().unwrap();
        assert_eq!(v, 123);
    }

    #[test]
    fn deeply_nested_lists_do_not_overflow() {
        // 200 nested singleton lists; decoder must handle without recursion
        // issues when only walking lazily.
        let mut payload = vec![0x80u8];
        for _ in 0..200 {
            let mut s = RlpStream::new_list(1);
            s.append_raw(&payload, 1);
            payload = s.out();
        }
        let mut r = Rlp::new(&payload);
        let mut owned;
        for _ in 0..200 {
            assert!(r.is_list());
            owned = r.at(0).unwrap();
            r = owned;
        }
        assert!(r.is_data());
    }
}
