//! RLP encoder.

use crate::traits::Encodable;

/// An append-only RLP output stream.
///
/// Lists may be declared with a known item count ([`RlpStream::new_list`] /
/// [`RlpStream::begin_list`]); the stream tracks how many items have been
/// appended at each nesting level and patches list headers in when a level
/// completes. Because header lengths are not known until a list closes,
/// payloads are buffered and headers are spliced at finalization.
#[derive(Debug, Clone)]
pub struct RlpStream {
    buf: Vec<u8>,
    // Stack of open lists: (payload start offset in `buf`, items remaining).
    open: Vec<(usize, usize)>,
}

impl Default for RlpStream {
    fn default() -> Self {
        Self::new()
    }
}

impl RlpStream {
    /// Create a stream expecting a single (non-list) item.
    pub fn new() -> Self {
        RlpStream {
            buf: Vec::with_capacity(64),
            open: Vec::new(),
        }
    }

    /// Create a stream whose top-level item is a list of `items` entries.
    pub fn new_list(items: usize) -> Self {
        let mut s = Self::new();
        s.begin_list(items);
        s
    }

    /// Open a nested list of exactly `items` entries.
    ///
    /// The list closes automatically when the final entry is appended; a
    /// zero-item list closes immediately.
    pub fn begin_list(&mut self, items: usize) -> &mut Self {
        self.note_appended_later();
        if items == 0 {
            self.buf.push(0xc0);
            self.finish_item();
        } else {
            self.open.push((self.buf.len(), items));
        }
        self
    }

    /// Append one encodable value.
    pub fn append<T: Encodable + ?Sized>(&mut self, value: &T) -> &mut Self {
        value.rlp_append(self);
        self
    }

    /// Append an empty string item (`0x80`). Used for optional/blank fields.
    pub fn append_empty(&mut self) -> &mut Self {
        self.note_appended_later();
        self.buf.push(0x80);
        self.finish_item();
        self
    }

    /// Splice pre-encoded RLP (`item_count` complete items) into the stream.
    pub fn append_raw(&mut self, raw: &[u8], item_count: usize) -> &mut Self {
        for _ in 0..item_count {
            self.note_appended_later();
        }
        self.buf.extend_from_slice(raw);
        for _ in 0..item_count {
            self.finish_item();
        }
        self
    }

    /// Encode raw bytes as an RLP string item.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.note_appended_later();
        encode_str_header_into(&mut self.buf, bytes);
        self.finish_item();
        self
    }

    /// Encode an unsigned integer (big-endian, no leading zeros; zero is the
    /// empty string).
    pub fn append_uint(&mut self, value: u128) -> &mut Self {
        let be = value.to_be_bytes();
        let first = be.iter().position(|&b| b != 0).unwrap_or(be.len());
        let bytes = &be[first..];
        self.append_bytes_tmp(bytes)
    }

    fn append_bytes_tmp(&mut self, bytes: &[u8]) -> &mut Self {
        // Helper avoiding a borrow conflict between `be` and `self`.
        self.note_appended_later();
        encode_str_header_into(&mut self.buf, bytes);
        self.finish_item();
        self
    }

    /// True once every declared list has been fully populated.
    pub fn is_finished(&self) -> bool {
        self.open.is_empty()
    }

    /// Number of bytes currently buffered (before header splicing of any
    /// still-open lists).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalize and return the encoded bytes.
    ///
    /// # Panics
    /// Panics if a declared list has not received all of its items; that is
    /// a programming error in message construction, not a runtime condition.
    pub fn out(self) -> Vec<u8> {
        assert!(
            self.open.is_empty(),
            "RlpStream::out called with {} unfinished list(s)",
            self.open.len()
        );
        self.buf
    }

    // Called before writing an item's bytes: nothing to do now (count is
    // decremented in finish_item once the payload is in the buffer).
    fn note_appended_later(&mut self) {}

    // Called after an item's bytes are written: decrement the innermost open
    // list and close any lists that complete, inserting their headers.
    fn finish_item(&mut self) {
        while let Some(top) = self.open.last_mut() {
            top.1 -= 1;
            if top.1 > 0 {
                return;
            }
            let Some((start, _)) = self.open.pop() else {
                return;
            };
            let payload_len = self.buf.len() - start;
            let mut header = Vec::with_capacity(9);
            encode_list_header(&mut header, payload_len);
            // splice the header in front of the payload
            self.buf.splice(start..start, header);
            // closing this list is itself the completion of one item in the
            // enclosing list, so loop.
        }
    }
}

/// Write the canonical RLP header + data for a byte string into `out`.
pub(crate) fn encode_str_header_into(out: &mut Vec<u8>, bytes: &[u8]) {
    match bytes.len() {
        1 if bytes[0] < 0x80 => out.push(bytes[0]),
        len if len <= 55 => {
            out.push(0x80 + len as u8);
            out.extend_from_slice(bytes);
        }
        len => {
            let be = (len as u64).to_be_bytes();
            #[allow(clippy::unwrap_used)]
            // detlint: allow(R5) -- len > 55 here, so at least one byte is nonzero
            let first = be.iter().position(|&b| b != 0).unwrap();
            out.push(0xb7 + (8 - first) as u8);
            out.extend_from_slice(&be[first..]);
            out.extend_from_slice(bytes);
        }
    }
}

/// Write the canonical RLP list header for a payload of `payload_len` bytes.
pub(crate) fn encode_list_header(out: &mut Vec<u8>, payload_len: usize) {
    if payload_len <= 55 {
        out.push(0xc0 + payload_len as u8);
    } else {
        let be = (payload_len as u64).to_be_bytes();
        #[allow(clippy::unwrap_used)]
        // detlint: allow(R5) -- payload_len > 55 here, so at least one byte is nonzero
        let first = be.iter().position(|&b| b != 0).unwrap();
        out.push(0xf7 + (8 - first) as u8);
        out.extend_from_slice(&be[first..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "unfinished")]
    fn out_panics_on_unfinished_list() {
        let s = RlpStream::new_list(2);
        let _ = s.out();
    }

    #[test]
    fn zero_item_list_closes_immediately() {
        let mut s = RlpStream::new_list(1);
        s.begin_list(0);
        assert!(s.is_finished());
        assert_eq!(s.out(), vec![0xc1, 0xc0]);
    }

    #[test]
    fn long_list_header() {
        // list of 60 single-byte items -> payload 60 bytes -> 0xf8 0x3c
        let mut s = RlpStream::new_list(60);
        for _ in 0..60 {
            s.append(&1u8);
        }
        let out = s.out();
        assert_eq!(out[0], 0xf8);
        assert_eq!(out[1], 60);
        assert_eq!(out.len(), 62);
    }

    #[test]
    fn append_uint_canonical() {
        let mut s = RlpStream::new();
        s.append_uint(0);
        assert_eq!(s.out(), vec![0x80]);
        let mut s = RlpStream::new();
        s.append_uint(0x0102_0304);
        assert_eq!(s.out(), vec![0x84, 1, 2, 3, 4]);
    }
}
