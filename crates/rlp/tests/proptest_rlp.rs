//! Property-based tests for the RLP codec: roundtrips, canonicality, and
//! decoder robustness against arbitrary byte soup.

// Tests assert on impossible-failure paths freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use rlp::{decode, decode_list, encode, encode_list, Rlp, RlpStream};

proptest! {
    #[test]
    fn u64_roundtrip(v in any::<u64>()) {
        let out = encode(&v);
        prop_assert_eq!(decode::<u64>(&out).unwrap(), v);
    }

    #[test]
    fn u128_roundtrip(v in any::<u128>()) {
        let out = encode(&v);
        prop_assert_eq!(decode::<u128>(&out).unwrap(), v);
    }

    #[test]
    fn bytes_roundtrip(v in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let out = encode(&v.as_slice());
        prop_assert_eq!(decode::<Vec<u8>>(&out).unwrap(), v);
    }

    #[test]
    fn string_roundtrip(v in ".{0,200}") {
        let out = encode(&v);
        prop_assert_eq!(decode::<String>(&out).unwrap(), v);
    }

    #[test]
    fn list_roundtrip(v in proptest::collection::vec(any::<u64>(), 0..100)) {
        let out = encode_list(&v);
        prop_assert_eq!(decode_list::<u64>(&out).unwrap(), v);
    }

    /// Encoding is canonical: decode(encode(x)) re-encodes to identical bytes.
    #[test]
    fn encoding_is_canonical(v in proptest::collection::vec(any::<u8>(), 0..300)) {
        let out = encode(&v.as_slice());
        let back: Vec<u8> = decode(&out).unwrap();
        prop_assert_eq!(encode(&back.as_slice()), out);
    }

    /// The decoder never panics on arbitrary input.
    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let r = Rlp::new(&bytes);
        let _ = r.item_len();
        let _ = r.data();
        let _ = r.item_count();
        let _ = r.as_u64();
        let _ = r.at(0);
        for item in r.iter().take(64) {
            let _ = item.data();
            let _ = item.as_u64();
        }
        let _ = decode::<Vec<u8>>(&bytes);
        let _ = decode::<u64>(&bytes);
        let _ = decode::<String>(&bytes);
    }

    /// A valid item followed by garbage fails `decode` (exactness) but the
    /// `Rlp` view still reads the leading item correctly.
    #[test]
    fn trailing_garbage_detected(v in any::<u64>(), junk in proptest::collection::vec(any::<u8>(), 1..32)) {
        let mut bytes = encode(&v);
        bytes.extend_from_slice(&junk);
        prop_assert!(decode::<u64>(&bytes).is_err());
        prop_assert_eq!(Rlp::new(&bytes).as_u64().unwrap(), v);
    }

    /// Nested structures roundtrip through raw splicing.
    #[test]
    fn nested_splice_roundtrip(
        a in proptest::collection::vec(any::<u64>(), 0..20),
        s in ".{0,50}",
    ) {
        let inner = encode_list(&a);
        let mut st = RlpStream::new_list(2);
        st.append_raw(&inner, 1);
        st.append(&s);
        let out = st.out();
        let r = Rlp::new(&out);
        prop_assert_eq!(r.item_count().unwrap(), 2);
        prop_assert_eq!(r.at(0).unwrap().as_list::<u64>().unwrap(), a);
        prop_assert_eq!(r.at(1).unwrap().as_str().unwrap(), s);
    }
}
