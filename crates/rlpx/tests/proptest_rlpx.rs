//! Property tests for RLPx: handshakes between arbitrary keypairs and
//! frame streams of arbitrary message shapes.

// Tests assert on impossible-failure paths freely.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use bytes::BytesMut;
use enode::NodeId;
use ethcrypto::secp256k1::SecretKey;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlpx::{FrameCodec, Handshake, Role};

fn arb_key() -> impl Strategy<Value = SecretKey> {
    proptest::array::uniform32(1u8..=255)
        .prop_filter_map("valid", |b| SecretKey::from_bytes(&b).ok())
}

fn handshake_pair(ik: SecretKey, rk: SecretKey, seed: u64) -> (FrameCodec, FrameCodec) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
    let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
    let auth = init
        .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
        .unwrap();
    let ack = resp.read_auth(&mut rng, &auth).unwrap();
    init.read_ack(&ack).unwrap();
    (
        FrameCodec::new(init.secrets().unwrap()),
        FrameCodec::new(resp.secrets().unwrap()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any two distinct keypairs complete the handshake and agree on keys;
    /// arbitrary frame sequences survive the cipher in order.
    #[test]
    fn handshake_and_frames(ik in arb_key(), rk in arb_key(), seed in any::<u64>(),
                            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..8)) {
        prop_assume!(ik != rk);
        let (mut a, mut b) = handshake_pair(ik, rk, seed);
        let mut buf = BytesMut::new();
        for m in &msgs {
            buf.extend_from_slice(&a.write_frame(m));
        }
        for m in &msgs {
            let got = b.read_frame(&mut buf).unwrap().expect("frame available");
            prop_assert_eq!(&got, m);
        }
        prop_assert!(b.read_frame(&mut buf).unwrap().is_none());
    }

    /// Arbitrary garbage fed straight into the frame decoder never panics:
    /// every outcome is a clean `Ok`/`Err`, whatever the bytes claim about
    /// sizes or MACs. Draining the buffer after an error must also stay
    /// panic-free — a real peer keeps reading the socket after one bad frame.
    #[test]
    fn frame_ingestion_never_panics(ik in arb_key(), rk in arb_key(), seed in any::<u64>(),
                                    garbage in proptest::collection::vec(any::<u8>(), 0..400)) {
        prop_assume!(ik != rk);
        let (_, mut b) = handshake_pair(ik, rk, seed);
        let mut buf = BytesMut::from(&garbage[..]);
        // Bounded loop: each iteration either consumes bytes, errors, or
        // reports "need more"; none of them may panic.
        for _ in 0..8 {
            match b.read_frame(&mut buf) {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }

    /// Any single-byte corruption in a frame stream is caught by a MAC.
    #[test]
    fn frame_tamper_detected(ik in arb_key(), rk in arb_key(), seed in any::<u64>(),
                             msg in proptest::collection::vec(any::<u8>(), 1..200),
                             pos_seed in any::<usize>()) {
        prop_assume!(ik != rk);
        let (mut a, mut b) = handshake_pair(ik, rk, seed);
        let mut wire = a.write_frame(&msg);
        let pos = pos_seed % wire.len();
        wire[pos] ^= 0x01;
        let mut buf = BytesMut::from(&wire[..]);
        // Either the header MAC or the frame MAC must reject; a corrupted
        // size field may also leave the codec waiting for more bytes —
        // what must NOT happen is a successful decode of wrong bytes.
        match b.read_frame(&mut buf) {
            Err(_) => {}
            Ok(None) => {}
            Ok(Some(decoded)) => prop_assert_eq!(decoded, msg),
        }
    }
}
