//! The RLPx ECIES handshake (EIP-8 message formats).

use enode::NodeId;
use ethcrypto::ecies;
use ethcrypto::keccak::{keccak256, Keccak};
use ethcrypto::secp256k1::{recover, PublicKey, RecoverableSignature, SecretKey};
use rlp::{Rlp, RlpStream};

/// Which side of the handshake we are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// We dialed (send `auth`, expect `ack`).
    Initiator,
    /// We accepted (expect `auth`, send `ack`).
    Recipient,
}

/// Why a handshake failed.
#[derive(Debug, Clone, PartialEq)]
pub enum HandshakeError {
    /// ECIES decryption or MAC failure.
    Decrypt,
    /// Structurally invalid auth/ack body.
    BadMessage(&'static str),
    /// Signature or key recovery failed.
    BadCrypto,
    /// API misuse (wrong role / wrong order) — still surfaced as an error
    /// because remote behaviour can trigger it.
    WrongState,
    /// Message shorter than its length prefix promises.
    Truncated,
}

impl std::fmt::Display for HandshakeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandshakeError::Decrypt => write!(f, "ECIES decryption failed"),
            HandshakeError::BadMessage(m) => write!(f, "bad handshake message: {m}"),
            HandshakeError::BadCrypto => write!(f, "signature/key recovery failed"),
            HandshakeError::WrongState => write!(f, "handshake API used out of order"),
            HandshakeError::Truncated => write!(f, "handshake message truncated"),
        }
    }
}

impl std::error::Error for HandshakeError {}

/// Session secrets derived by both sides at handshake completion.
///
/// `aes` keys a single AES-256-CTR stream per direction; the MAC states are
/// running keccak sponges per the RLPx spec.
pub struct Secrets {
    /// Frame encryption key (AES-256).
    pub aes: [u8; 32],
    /// MAC derivation key.
    pub mac: [u8; 32],
    /// Keccak state MACing what we send.
    pub egress_mac: Keccak,
    /// Keccak state MACing what we receive.
    pub ingress_mac: Keccak,
    /// The peer's node ID, authenticated by the handshake.
    pub peer_id: NodeId,
}

impl std::fmt::Debug for Secrets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Everything but the peer id is key material; never print it.
        f.debug_struct("Secrets")
            .field("peer_id", &self.peer_id)
            .finish_non_exhaustive()
    }
}

const NONCE_LEN: usize = 32;
const AUTH_VSN: u32 = 4;

/// An in-progress handshake. Construct per connection.
pub struct Handshake {
    role: Role,
    static_key: SecretKey,
    ephemeral_key: SecretKey,
    nonce: [u8; 32],
    /// Filled as the exchange progresses.
    remote_static: Option<PublicKey>,
    remote_ephemeral: Option<PublicKey>,
    remote_nonce: Option<[u8; 32]>,
    /// Raw auth/ack messages (size prefix included) — the MAC states are
    /// seeded with them.
    auth_bytes: Option<Vec<u8>>,
    ack_bytes: Option<Vec<u8>>,
}

impl std::fmt::Debug for Handshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keys and nonces stay out of logs; show only exchange progress.
        f.debug_struct("Handshake")
            .field("role", &self.role)
            .field("auth_seen", &self.auth_bytes.is_some())
            .field("ack_seen", &self.ack_bytes.is_some())
            .finish_non_exhaustive()
    }
}

impl Handshake {
    /// Create a handshake for `role` using our static identity key.
    pub fn new<R: rand::Rng + ?Sized>(role: Role, static_key: SecretKey, rng: &mut R) -> Handshake {
        let ephemeral_key = SecretKey::random(rng);
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill(&mut nonce[..]);
        Handshake {
            role,
            static_key,
            ephemeral_key,
            nonce,
            remote_static: None,
            remote_ephemeral: None,
            remote_nonce: None,
            auth_bytes: None,
            ack_bytes: None,
        }
    }

    /// Initiator step 1: build the `auth` message for `remote_id`.
    pub fn write_auth<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        remote_id: &NodeId,
    ) -> Result<Vec<u8>, HandshakeError> {
        if self.role != Role::Initiator {
            return Err(HandshakeError::WrongState);
        }
        let remote_pub = remote_id.to_public_key().ok_or(HandshakeError::BadCrypto)?;
        self.remote_static = Some(remote_pub);

        // token = static-shared-secret ^ nonce, signed with the ephemeral
        // key; the recipient recovers our ephemeral pubkey from it.
        let static_shared = self
            .static_key
            .ecdh(&remote_pub)
            .map_err(|_| HandshakeError::BadCrypto)?;
        let mut token = [0u8; 32];
        for i in 0..32 {
            token[i] = static_shared[i] ^ self.nonce[i];
        }
        let sig = self.ephemeral_key.sign_recoverable(&token);

        let mut body = RlpStream::new_list(4);
        body.append_bytes(&sig.to_bytes());
        body.append(&NodeId::from_secret_key(&self.static_key));
        body.append_bytes(&self.nonce);
        body.append(&AUTH_VSN);
        let plain = body.out();

        let msg = seal_eip8(rng, &remote_pub, &plain)?;
        self.auth_bytes = Some(msg.clone());
        obs::counter_add("rlpx.auth_written", 1);
        Ok(msg)
    }

    /// Recipient step 1: consume `auth`, produce `ack`.
    ///
    /// `auth` must be the complete prefixed message ([`expected_len`] helps
    /// the caller frame it from a TCP stream).
    pub fn read_auth<R: rand::Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        auth: &[u8],
    ) -> Result<Vec<u8>, HandshakeError> {
        if self.role != Role::Recipient {
            return Err(HandshakeError::WrongState);
        }
        let plain = open_eip8(&self.static_key, auth)?;
        let r = Rlp::new(&plain);
        if !r.is_list() {
            return Err(HandshakeError::BadMessage("auth not a list"));
        }
        // Lenient-decode policy (EIP-8): >= 4 fields (sig, id, nonce, vsn),
        // extras tolerated and counted. See DESIGN.md § Wire conformance.
        let count = r
            .item_count()
            .map_err(|_| HandshakeError::BadMessage("rlp"))?;
        if count < 3 {
            return Err(HandshakeError::BadMessage("auth needs >=3 fields"));
        }
        if count > 4 {
            obs::counter_add("wire.extra.auth", 1);
        }
        let sig_bytes: [u8; 65] = r
            .at(0)
            .and_then(|i| i.as_array())
            .map_err(|_| HandshakeError::BadMessage("auth sig"))?;
        let initiator_id: NodeId = r
            .at(1)
            .and_then(|i| i.as_val())
            .map_err(|_| HandshakeError::BadMessage("auth id"))?;
        let nonce: [u8; 32] = r
            .at(2)
            .and_then(|i| i.as_array())
            .map_err(|_| HandshakeError::BadMessage("auth nonce"))?;

        let initiator_pub = initiator_id
            .to_public_key()
            .ok_or(HandshakeError::BadCrypto)?;
        self.remote_static = Some(initiator_pub);
        self.remote_nonce = Some(nonce);

        // Recover the initiator's ephemeral public key from the signature.
        let static_shared = self
            .static_key
            .ecdh(&initiator_pub)
            .map_err(|_| HandshakeError::BadCrypto)?;
        let mut token = [0u8; 32];
        for i in 0..32 {
            token[i] = static_shared[i] ^ nonce[i];
        }
        let sig =
            RecoverableSignature::from_bytes(&sig_bytes).map_err(|_| HandshakeError::BadCrypto)?;
        let remote_ephemeral = recover(&token, &sig).map_err(|_| HandshakeError::BadCrypto)?;
        self.remote_ephemeral = Some(remote_ephemeral);
        self.auth_bytes = Some(auth.to_vec());

        // Build the ack: [ephemeral-pub, nonce, vsn]
        let mut body = RlpStream::new_list(3);
        body.append(&NodeId::from_secret_key(&self.ephemeral_key));
        body.append_bytes(&self.nonce);
        body.append(&AUTH_VSN);
        let plain = body.out();
        let msg = seal_eip8(rng, &initiator_pub, &plain)?;
        self.ack_bytes = Some(msg.clone());
        obs::counter_add("rlpx.auth_read", 1);
        Ok(msg)
    }

    /// Initiator step 2: consume `ack`.
    pub fn read_ack(&mut self, ack: &[u8]) -> Result<(), HandshakeError> {
        if self.role != Role::Initiator {
            return Err(HandshakeError::WrongState);
        }
        let plain = open_eip8(&self.static_key, ack)?;
        let r = Rlp::new(&plain);
        if !r.is_list() {
            return Err(HandshakeError::BadMessage("ack not a list"));
        }
        // Lenient-decode policy (EIP-8): >= 3 fields (ephemeral, nonce,
        // vsn), extras tolerated and counted.
        let count = r
            .item_count()
            .map_err(|_| HandshakeError::BadMessage("rlp"))?;
        if count < 2 {
            return Err(HandshakeError::BadMessage("ack needs >=2 fields"));
        }
        if count > 3 {
            obs::counter_add("wire.extra.ack", 1);
        }
        let ephemeral_id: NodeId = r
            .at(0)
            .and_then(|i| i.as_val())
            .map_err(|_| HandshakeError::BadMessage("ack ephemeral"))?;
        let nonce: [u8; 32] = r
            .at(1)
            .and_then(|i| i.as_array())
            .map_err(|_| HandshakeError::BadMessage("ack nonce"))?;
        self.remote_ephemeral = Some(
            ephemeral_id
                .to_public_key()
                .ok_or(HandshakeError::BadCrypto)?,
        );
        self.remote_nonce = Some(nonce);
        self.ack_bytes = Some(ack.to_vec());
        obs::counter_add("rlpx.ack_read", 1);
        Ok(())
    }

    /// Final step for both sides: derive the session secrets.
    pub fn secrets(&self) -> Result<Secrets, HandshakeError> {
        let remote_ephemeral = self.remote_ephemeral.ok_or(HandshakeError::WrongState)?;
        let remote_nonce = self.remote_nonce.ok_or(HandshakeError::WrongState)?;
        let remote_static = self.remote_static.ok_or(HandshakeError::WrongState)?;
        let auth = self.auth_bytes.as_ref().ok_or(HandshakeError::WrongState)?;
        let ack = self.ack_bytes.as_ref().ok_or(HandshakeError::WrongState)?;

        let ephemeral_shared = self
            .ephemeral_key
            .ecdh(&remote_ephemeral)
            .map_err(|_| HandshakeError::BadCrypto)?;

        // Nonce ordering is (recipient-nonce ‖ initiator-nonce).
        let (init_nonce, recv_nonce) = match self.role {
            Role::Initiator => (self.nonce, remote_nonce),
            Role::Recipient => (remote_nonce, self.nonce),
        };
        let mut nonce_material = Vec::with_capacity(64);
        nonce_material.extend_from_slice(&recv_nonce);
        nonce_material.extend_from_slice(&init_nonce);
        let h_nonce = keccak256(&nonce_material);

        let shared_secret = keccak_pair(&ephemeral_shared, &h_nonce);
        let aes_secret = keccak_pair(&ephemeral_shared, &shared_secret);
        let mac_secret = keccak_pair(&ephemeral_shared, &aes_secret);

        // egress/ingress MAC seeding:
        //   initiator egress  = keccak(mac ^ recv_nonce ‖ auth)
        //   initiator ingress = keccak(mac ^ init_nonce ‖ ack)
        // and mirrored for the recipient.
        let xor_recv = xor32(&mac_secret, &recv_nonce);
        let xor_init = xor32(&mac_secret, &init_nonce);

        let mut mac_auth = Keccak::v256();
        mac_auth.update(&xor_recv);
        mac_auth.update(auth);
        let mut mac_ack = Keccak::v256();
        mac_ack.update(&xor_init);
        mac_ack.update(ack);

        let (egress_mac, ingress_mac) = match self.role {
            Role::Initiator => (mac_auth, mac_ack),
            Role::Recipient => (mac_ack, mac_auth),
        };

        Ok(Secrets {
            aes: aes_secret,
            mac: mac_secret,
            egress_mac,
            ingress_mac,
            peer_id: NodeId::from_public_key(&remote_static),
        })
    }

    /// Our own node ID.
    pub fn local_id(&self) -> NodeId {
        NodeId::from_secret_key(&self.static_key)
    }

    /// Capture the exchange progress for checkpoint/restore. The static
    /// identity key is deliberately absent — the owner persists it with the
    /// node identity and supplies it again to [`Handshake::from_state`].
    pub fn to_state(&self) -> HandshakeState {
        HandshakeState {
            initiator: self.role == Role::Initiator,
            ephemeral_key: self.ephemeral_key.to_bytes(),
            nonce: self.nonce,
            remote_static: self.remote_static.as_ref().map(NodeId::from_public_key),
            remote_ephemeral: self.remote_ephemeral.as_ref().map(NodeId::from_public_key),
            remote_nonce: self.remote_nonce,
            auth_bytes: self.auth_bytes.clone(),
            ack_bytes: self.ack_bytes.clone(),
        }
    }

    /// Rebuild a handshake mid-exchange from [`Handshake::to_state`] output.
    ///
    /// # Panics
    /// Panics if the state carries a key or node id that does not decode —
    /// snapshots are produced by `to_state`, so that is data corruption,
    /// not remote input.
    #[allow(clippy::expect_used)]
    pub fn from_state(static_key: SecretKey, s: HandshakeState) -> Handshake {
        // detlint: allow(R5) -- snapshot ids come from `to_state`, so a non-decoding one is local corruption, not remote input
        let pk = |id: &NodeId| id.to_public_key().expect("corrupt handshake snapshot id");
        Handshake {
            role: if s.initiator {
                Role::Initiator
            } else {
                Role::Recipient
            },
            static_key,
            ephemeral_key: SecretKey::from_bytes(&s.ephemeral_key)
                // detlint: allow(R5) -- key bytes come from `to_state`, so a non-decoding key is local corruption, not remote input
                .expect("corrupt handshake snapshot key"),
            nonce: s.nonce,
            remote_static: s.remote_static.as_ref().map(pk),
            remote_ephemeral: s.remote_ephemeral.as_ref().map(pk),
            remote_nonce: s.remote_nonce,
            auth_bytes: s.auth_bytes,
            ack_bytes: s.ack_bytes,
        }
    }
}

/// Plain-data image of an in-progress [`Handshake`] (minus the static key).
#[derive(Clone)]
pub struct HandshakeState {
    /// True for [`Role::Initiator`].
    pub initiator: bool,
    /// Our ephemeral secret key bytes.
    pub ephemeral_key: [u8; 32],
    /// Our handshake nonce.
    pub nonce: [u8; 32],
    /// Peer static identity, if learned.
    pub remote_static: Option<NodeId>,
    /// Peer ephemeral identity, if learned.
    pub remote_ephemeral: Option<NodeId>,
    /// Peer nonce, if learned.
    pub remote_nonce: Option<[u8; 32]>,
    /// Raw auth message (prefix included), if exchanged.
    pub auth_bytes: Option<Vec<u8>>,
    /// Raw ack message (prefix included), if exchanged.
    pub ack_bytes: Option<Vec<u8>>,
}

impl std::fmt::Debug for HandshakeState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keys and nonces stay out of logs, mirroring `Handshake`'s Debug.
        f.debug_struct("HandshakeState")
            .field("initiator", &self.initiator)
            .field("auth_seen", &self.auth_bytes.is_some())
            .field("ack_seen", &self.ack_bytes.is_some())
            .finish_non_exhaustive()
    }
}

#[allow(clippy::unwrap_used)]
fn keccak_pair(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut h = Keccak::v256();
    h.update(a);
    h.update(b);
    // detlint: allow(R5) -- keccak-256 digests are always exactly 32 bytes
    h.finalize().try_into().unwrap()
}

fn xor32(a: &[u8; 32], b: &[u8; 32]) -> [u8; 32] {
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = a[i] ^ b[i];
    }
    out
}

/// EIP-8 envelope: `size(2, BE) ‖ ECIES ciphertext`, with the size prefix
/// authenticated as ECIES shared MAC data.
fn seal_eip8<R: rand::Rng + ?Sized>(
    rng: &mut R,
    to: &PublicKey,
    plain: &[u8],
) -> Result<Vec<u8>, HandshakeError> {
    let ct_len = plain.len() + ecies::OVERHEAD;
    let prefix = (ct_len as u16).to_be_bytes();
    let ct = ecies::encrypt(rng, to, plain, &prefix).map_err(|_| HandshakeError::BadCrypto)?;
    let mut out = Vec::with_capacity(2 + ct.len());
    out.extend_from_slice(&prefix);
    out.extend_from_slice(&ct);
    Ok(out)
}

fn open_eip8(key: &SecretKey, msg: &[u8]) -> Result<Vec<u8>, HandshakeError> {
    if msg.len() < 2 {
        return Err(HandshakeError::Truncated);
    }
    let size = u16::from_be_bytes([msg[0], msg[1]]) as usize;
    if msg.len() < 2 + size {
        return Err(HandshakeError::Truncated);
    }
    ecies::decrypt(key, &msg[2..2 + size], &msg[..2]).map_err(|_| HandshakeError::Decrypt)
}

/// Length a complete prefixed handshake message will have, given its first
/// two bytes — lets stream drivers know how much to read.
pub fn expected_len(prefix: &[u8; 2]) -> usize {
    2 + u16::from_be_bytes(*prefix) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair() -> (SecretKey, SecretKey) {
        (
            SecretKey::from_bytes(&[0x11u8; 32]).unwrap(),
            SecretKey::from_bytes(&[0x22u8; 32]).unwrap(),
        )
    }

    fn run_handshake() -> (Secrets, Secrets) {
        let mut rng = StdRng::seed_from_u64(42);
        let (ik, rk) = pair();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
        let auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        let ack = resp.read_auth(&mut rng, &auth).unwrap();
        init.read_ack(&ack).unwrap();
        (init.secrets().unwrap(), resp.secrets().unwrap())
    }

    #[test]
    fn both_sides_derive_same_keys() {
        let (si, sr) = run_handshake();
        assert_eq!(si.aes, sr.aes);
        assert_eq!(si.mac, sr.mac);
        // MAC states are crossed: my egress is your ingress.
        let e = si.egress_mac.clone().finalize();
        let i = sr.ingress_mac.clone().finalize();
        assert_eq!(e, i);
        let e2 = sr.egress_mac.clone().finalize();
        let i2 = si.ingress_mac.clone().finalize();
        assert_eq!(e2, i2);
    }

    #[test]
    fn peers_authenticated() {
        let (si, sr) = run_handshake();
        let (ik, rk) = pair();
        assert_eq!(si.peer_id, NodeId::from_secret_key(&rk));
        assert_eq!(sr.peer_id, NodeId::from_secret_key(&ik));
    }

    #[test]
    fn auth_to_wrong_recipient_fails() {
        let mut rng = StdRng::seed_from_u64(7);
        let (ik, rk) = pair();
        let other = SecretKey::from_bytes(&[0x33u8; 32]).unwrap();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut resp = Handshake::new(Role::Recipient, other, &mut rng);
        let auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        assert_eq!(
            resp.read_auth(&mut rng, &auth),
            Err(HandshakeError::Decrypt)
        );
    }

    #[test]
    fn tampered_auth_fails() {
        let mut rng = StdRng::seed_from_u64(8);
        let (ik, rk) = pair();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
        let mut auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        auth[50] ^= 1;
        assert!(resp.read_auth(&mut rng, &auth).is_err());
    }

    #[test]
    fn wrong_role_api_use_rejected() {
        let mut rng = StdRng::seed_from_u64(9);
        let (ik, rk) = pair();
        let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
        assert_eq!(
            resp.write_auth(&mut rng, &NodeId::from_secret_key(&ik)),
            Err(HandshakeError::WrongState)
        );
        assert_eq!(resp.read_ack(&[0u8; 100]), Err(HandshakeError::WrongState));
        assert!(resp.secrets().is_err());
    }

    #[test]
    fn truncated_messages_rejected() {
        let mut rng = StdRng::seed_from_u64(10);
        let (ik, rk) = pair();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
        let auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        assert_eq!(
            resp.read_auth(&mut rng, &auth[..auth.len() - 5]),
            Err(HandshakeError::Truncated)
        );
        assert_eq!(
            resp.read_auth(&mut rng, &auth[..1]),
            Err(HandshakeError::Truncated)
        );
    }

    #[test]
    fn expected_len_matches_messages() {
        let mut rng = StdRng::seed_from_u64(11);
        let (ik, rk) = pair();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        let prefix: [u8; 2] = auth[..2].try_into().unwrap();
        assert_eq!(expected_len(&prefix), auth.len());
    }

    #[test]
    fn handshakes_use_fresh_nonces() {
        let mut rng = StdRng::seed_from_u64(12);
        let (ik, rk) = pair();
        let mut h1 = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut h2 = Handshake::new(Role::Initiator, ik, &mut rng);
        let a1 = h1
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        let a2 = h2
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        assert_ne!(a1, a2);
    }
}
