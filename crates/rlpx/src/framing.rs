//! The RLPx frame cipher: AES-256-CTR payload encryption with per-header
//! and per-frame keccak-state MACs.
//!
//! Frame layout on the wire:
//!
//! ```text
//! header-ciphertext(16) ‖ header-mac(16) ‖ frame-ciphertext(pad16(data)) ‖ frame-mac(16)
//! ```
//!
//! The header's first three bytes carry the frame size big-endian; the rest
//! is a static RLP stub (`[0, 0]`) plus zero padding. One CTR stream per
//! direction runs for the connection lifetime (zero IV, never reset).

use crate::handshake::Secrets;
use bytes::{Buf, BytesMut};
use ethcrypto::aes::{Aes, AesCtr};
use ethcrypto::keccak::Keccak;

/// Frame decode/verify failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Header MAC mismatch.
    BadHeaderMac,
    /// Frame MAC mismatch.
    BadFrameMac,
    /// Frame longer than the 16 MiB sanity cap.
    Oversized,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadHeaderMac => write!(f, "rlpx header MAC mismatch"),
            FrameError::BadFrameMac => write!(f, "rlpx frame MAC mismatch"),
            FrameError::Oversized => write!(f, "rlpx frame exceeds size cap"),
        }
    }
}

impl std::error::Error for FrameError {}

const MAX_FRAME: usize = 16 * 1024 * 1024;

/// One captured keccak sponge, as produced by `Keccak::to_parts`.
pub type MacState = (
    [u64; 25],
    usize,
    [u8; ethcrypto::keccak::MAX_RATE],
    usize,
    usize,
);

/// Plain-data image of a [`FrameCodec`] for checkpoint/restore. Contains
/// live key material — treat a serialized snapshot like a key file.
#[derive(Clone)]
// Not Debug-derived: every field is key material or keystream.
pub struct FrameCodecState {
    /// AES-256-CTR session key.
    pub aes_key: [u8; 32],
    /// MAC derivation key.
    pub mac_key: [u8; 32],
    /// Egress CTR position (`AesCtr::to_parts`).
    pub enc: ([u8; 16], [u8; 16], usize),
    /// Ingress CTR position.
    pub dec: ([u8; 16], [u8; 16], usize),
    /// Egress MAC sponge.
    pub egress_mac: MacState,
    /// Ingress MAC sponge.
    pub ingress_mac: MacState,
    /// Body size parsed from a verified header, awaiting the body bytes.
    pub pending_body: Option<usize>,
}

impl std::fmt::Debug for FrameCodecState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Keys and sponge states are secrets; show only decoder progress.
        f.debug_struct("FrameCodecState")
            .field("pending_body", &self.pending_body)
            .finish_non_exhaustive()
    }
}

/// Symmetric frame codec for one established connection.
pub struct FrameCodec {
    enc: AesCtr,
    dec: AesCtr,
    mac_cipher: Aes,
    egress_mac: Keccak,
    ingress_mac: Keccak,
    /// Decoder state: size parsed from a verified header, awaiting body.
    pending_body: Option<usize>,
    /// Raw session keys, retained so the codec can be checkpointed
    /// (the expanded forms above are one-way).
    aes_key: [u8; 32],
    mac_key: [u8; 32],
}

impl std::fmt::Debug for FrameCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Cipher and MAC state are secrets; show only decoder progress.
        f.debug_struct("FrameCodec")
            .field("pending_body", &self.pending_body)
            .finish_non_exhaustive()
    }
}

impl FrameCodec {
    /// Build from handshake secrets.
    pub fn new(secrets: Secrets) -> FrameCodec {
        let zero_iv = [0u8; 16];
        FrameCodec {
            enc: AesCtr::new(&secrets.aes, &zero_iv),
            dec: AesCtr::new(&secrets.aes, &zero_iv),
            mac_cipher: Aes::new(&secrets.mac),
            egress_mac: secrets.egress_mac,
            ingress_mac: secrets.ingress_mac,
            pending_body: None,
            aes_key: secrets.aes,
            mac_key: secrets.mac,
        }
    }

    /// Capture the full codec state (keys, CTR positions, MAC sponges,
    /// decoder progress) for checkpoint/restore.
    pub fn to_state(&self) -> FrameCodecState {
        FrameCodecState {
            aes_key: self.aes_key,
            mac_key: self.mac_key,
            enc: self.enc.to_parts(),
            dec: self.dec.to_parts(),
            egress_mac: self.egress_mac.to_parts(),
            ingress_mac: self.ingress_mac.to_parts(),
            pending_body: self.pending_body,
        }
    }

    /// Rebuild a codec mid-stream from [`FrameCodec::to_state`] output.
    pub fn from_state(s: FrameCodecState) -> FrameCodec {
        FrameCodec {
            enc: AesCtr::from_parts(&s.aes_key, s.enc),
            dec: AesCtr::from_parts(&s.aes_key, s.dec),
            mac_cipher: Aes::new(&s.mac_key),
            egress_mac: Keccak::from_parts(s.egress_mac),
            ingress_mac: Keccak::from_parts(s.ingress_mac),
            pending_body: s.pending_body,
            aes_key: s.aes_key,
            mac_key: s.mac_key,
        }
    }

    #[allow(clippy::unwrap_used)]
    fn mac_digest(state: &Keccak) -> [u8; 16] {
        let full = state.clone().finalize();
        // detlint: allow(R5) -- keccak256 output is 32 bytes; `..16` is exact
        full[..16].try_into().unwrap()
    }

    /// The spec's `updateMAC`: mix `seed` into `state` through the MAC
    /// cipher and return the new 16-byte tag.
    fn update_mac(mac_cipher: &Aes, state: &mut Keccak, seed: &[u8; 16]) -> [u8; 16] {
        let digest = Self::mac_digest(state);
        let mut block = digest;
        mac_cipher.encrypt_block(&mut block);
        for i in 0..16 {
            block[i] ^= seed[i];
        }
        state.update(&block);
        Self::mac_digest(state)
    }

    /// Encrypt `data` into one complete wire frame.
    pub fn write_frame(&mut self, data: &[u8]) -> Vec<u8> {
        assert!(data.len() < MAX_FRAME, "frame too large");
        // header: size(3) || rlp stub [0xc2, 0x80, 0x80] || zeros
        let mut header = [0u8; 16];
        header[0] = ((data.len() >> 16) & 0xff) as u8;
        header[1] = ((data.len() >> 8) & 0xff) as u8;
        header[2] = (data.len() & 0xff) as u8;
        header[3] = 0xc2;
        header[4] = 0x80;
        header[5] = 0x80;
        self.enc.apply(&mut header);
        let header_mac = Self::update_mac(&self.mac_cipher, &mut self.egress_mac, &header);

        let padded_len = data.len().div_ceil(16) * 16;
        let mut body = vec![0u8; padded_len];
        body[..data.len()].copy_from_slice(data);
        self.enc.apply(&mut body);

        self.egress_mac.update(&body);
        let seed = Self::mac_digest(&self.egress_mac);
        let frame_mac = Self::update_mac(&self.mac_cipher, &mut self.egress_mac, &seed);

        let mut out = Vec::with_capacity(32 + padded_len + 16);
        out.extend_from_slice(&header);
        out.extend_from_slice(&header_mac);
        out.extend_from_slice(&body);
        out.extend_from_slice(&frame_mac);
        obs::counter_add("rlpx.frames_written", 1);
        out
    }

    /// Try to decode one frame from `buf`, consuming its bytes on success.
    /// Returns `Ok(None)` when more bytes are needed.
    pub fn read_frame(&mut self, buf: &mut BytesMut) -> Result<Option<Vec<u8>>, FrameError> {
        // Phase 1: header.
        if self.pending_body.is_none() {
            if buf.len() < 32 {
                return Ok(None);
            }
            #[allow(clippy::unwrap_used)]
            // detlint: allow(R5) -- buf.len() >= 32 checked above; slices are exact
            let header_ct: [u8; 16] = buf[..16].try_into().unwrap();
            #[allow(clippy::unwrap_used)]
            // detlint: allow(R5) -- buf.len() >= 32 checked above; slices are exact
            let claimed_mac: [u8; 16] = buf[16..32].try_into().unwrap();
            let computed = Self::update_mac(&self.mac_cipher, &mut self.ingress_mac, &header_ct);
            if computed != claimed_mac {
                obs::counter_add("rlpx.frame_errors", 1);
                return Err(FrameError::BadHeaderMac);
            }
            let mut header = header_ct;
            self.dec.apply(&mut header);
            let size =
                ((header[0] as usize) << 16) | ((header[1] as usize) << 8) | header[2] as usize;
            if size >= MAX_FRAME {
                return Err(FrameError::Oversized);
            }
            buf.advance(32);
            self.pending_body = Some(size);
        }
        // Phase 2: body.
        let Some(size) = self.pending_body else {
            return Ok(None);
        };
        let padded = size.div_ceil(16) * 16;
        if buf.len() < padded + 16 {
            return Ok(None);
        }
        let body_ct = buf[..padded].to_vec();
        #[allow(clippy::unwrap_used)]
        // detlint: allow(R5) -- buf.len() >= padded + 16 checked above; slice is exact
        let claimed_mac: [u8; 16] = buf[padded..padded + 16].try_into().unwrap();
        self.ingress_mac.update(&body_ct);
        let seed = Self::mac_digest(&self.ingress_mac);
        let computed = Self::update_mac(&self.mac_cipher, &mut self.ingress_mac, &seed);
        if computed != claimed_mac {
            obs::counter_add("rlpx.frame_errors", 1);
            return Err(FrameError::BadFrameMac);
        }
        buf.advance(padded + 16);
        self.pending_body = None;
        let mut body = body_ct;
        self.dec.apply(&mut body);
        body.truncate(size);
        obs::counter_add("rlpx.frames_read", 1);
        Ok(Some(body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handshake::{Handshake, Role};
    use enode::NodeId;
    use ethcrypto::secp256k1::SecretKey;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn codecs() -> (FrameCodec, FrameCodec) {
        let mut rng = StdRng::seed_from_u64(77);
        let ik = SecretKey::from_bytes(&[0x11u8; 32]).unwrap();
        let rk = SecretKey::from_bytes(&[0x22u8; 32]).unwrap();
        let mut init = Handshake::new(Role::Initiator, ik, &mut rng);
        let mut resp = Handshake::new(Role::Recipient, rk, &mut rng);
        let auth = init
            .write_auth(&mut rng, &NodeId::from_secret_key(&rk))
            .unwrap();
        let ack = resp.read_auth(&mut rng, &auth).unwrap();
        init.read_ack(&ack).unwrap();
        (
            FrameCodec::new(init.secrets().unwrap()),
            FrameCodec::new(resp.secrets().unwrap()),
        )
    }

    #[test]
    fn frame_roundtrip() {
        let (mut a, mut b) = codecs();
        let msg = b"hello devp2p world".to_vec();
        let wire = a.write_frame(&msg);
        let mut buf = BytesMut::from(&wire[..]);
        let got = b.read_frame(&mut buf).unwrap().unwrap();
        assert_eq!(got, msg);
        assert!(buf.is_empty());
    }

    #[test]
    fn many_frames_in_sequence() {
        let (mut a, mut b) = codecs();
        let mut buf = BytesMut::new();
        let msgs: Vec<Vec<u8>> = (0..20)
            .map(|i| vec![i as u8; (i * 7 + 1) as usize])
            .collect();
        for m in &msgs {
            buf.extend_from_slice(&a.write_frame(m));
        }
        for m in &msgs {
            let got = b.read_frame(&mut buf).unwrap().unwrap();
            assert_eq!(&got, m);
        }
        assert!(b.read_frame(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_delivery_resumes() {
        let (mut a, mut b) = codecs();
        let msg = vec![0x5au8; 100];
        let wire = a.write_frame(&msg);
        let mut buf = BytesMut::new();
        // drip-feed one byte at a time
        let mut got = None;
        for byte in &wire {
            buf.extend_from_slice(&[*byte]);
            if let Some(frame) = b.read_frame(&mut buf).unwrap() {
                got = Some(frame);
            }
        }
        assert_eq!(got.unwrap(), msg);
    }

    #[test]
    fn bidirectional_streams_independent() {
        let (mut a, mut b) = codecs();
        let wire_ab = a.write_frame(b"a->b");
        let wire_ba = b.write_frame(b"b->a");
        let mut buf_b = BytesMut::from(&wire_ab[..]);
        let mut buf_a = BytesMut::from(&wire_ba[..]);
        assert_eq!(b.read_frame(&mut buf_b).unwrap().unwrap(), b"a->b");
        assert_eq!(a.read_frame(&mut buf_a).unwrap().unwrap(), b"b->a");
    }

    #[test]
    fn corrupt_header_mac_detected() {
        let (mut a, mut b) = codecs();
        let mut wire = a.write_frame(b"payload");
        wire[20] ^= 1; // inside header mac
        let mut buf = BytesMut::from(&wire[..]);
        assert_eq!(b.read_frame(&mut buf), Err(FrameError::BadHeaderMac));
    }

    #[test]
    fn corrupt_body_detected() {
        let (mut a, mut b) = codecs();
        let mut wire = a.write_frame(b"payload payload payload");
        let n = wire.len();
        wire[n - 20] ^= 1; // inside body ciphertext
        let mut buf = BytesMut::from(&wire[..]);
        assert_eq!(b.read_frame(&mut buf), Err(FrameError::BadFrameMac));
    }

    #[test]
    fn reordered_frames_detected() {
        // The chained MAC state makes replay/reorder detectable.
        let (mut a, mut b) = codecs();
        let f1 = a.write_frame(b"first");
        let f2 = a.write_frame(b"second");
        let mut buf = BytesMut::from(&f2[..]);
        buf.extend_from_slice(&f1);
        assert!(b.read_frame(&mut buf).is_err());
    }

    #[test]
    fn empty_frame_roundtrip() {
        let (mut a, mut b) = codecs();
        let wire = a.write_frame(b"");
        let mut buf = BytesMut::from(&wire[..]);
        assert_eq!(b.read_frame(&mut buf).unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn exact_multiple_of_16_no_padding_confusion() {
        let (mut a, mut b) = codecs();
        let msg = vec![0xaau8; 64];
        let wire = a.write_frame(&msg);
        // 32 header + 64 body + 16 mac
        assert_eq!(wire.len(), 32 + 64 + 16);
        let mut buf = BytesMut::from(&wire[..]);
        assert_eq!(b.read_frame(&mut buf).unwrap().unwrap(), msg);
    }
}
