//! RLPx: the encrypted, authenticated TCP transport beneath DEVp2p.
//!
//! After discovery finds a peer, the dialer opens TCP and performs the
//! RLPx handshake (EIP-8 framing):
//!
//! 1. initiator → recipient: `auth` — ECIES-encrypted, containing a
//!    signature that proves possession of the static key and transports the
//!    ephemeral public key, plus a 32-byte nonce;
//! 2. recipient → initiator: `ack` — ECIES-encrypted ephemeral key + nonce;
//! 3. both derive the session secrets from the **ephemeral** ECDH secret
//!    and the two nonces, and switch to the framed cipher: AES-256-CTR
//!    payload encryption with a keccak-state MAC per header and frame.
//!
//! Everything is sans-IO: [`Handshake`] consumes and produces byte blobs,
//! [`FrameCodec`] turns messages into frames and back. The caller moves the
//! bytes (over the simulator's TCP streams, or real sockets).
#![forbid(unsafe_code)]
// Unit tests may panic on impossible states; production code may not.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod framing;
mod handshake;

pub use framing::{FrameCodec, FrameCodecState, FrameError, MacState};
pub use handshake::{expected_len, Handshake, HandshakeError, HandshakeState, Role, Secrets};
