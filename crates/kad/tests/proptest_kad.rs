//! Property tests for the Kademlia substrate: metric laws, ordering, and
//! routing-table invariants.

use enode::{Endpoint, NodeId, NodeRecord};
use kad::{
    log_distance_geth, log_distance_parity, metrics_agree, xor_cmp, Metric, RoutingTable,
    BUCKET_SIZE, MAX_BUCKETS,
};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_hash() -> impl Strategy<Value = [u8; 32]> {
    proptest::array::uniform32(any::<u8>())
}

proptest! {
    /// Both metrics are symmetric and zero iff the hashes are equal.
    #[test]
    fn metric_laws(a in arb_hash(), b in arb_hash()) {
        prop_assert_eq!(log_distance_geth(&a, &b), log_distance_geth(&b, &a));
        prop_assert_eq!(log_distance_parity(&a, &b), log_distance_parity(&b, &a));
        prop_assert_eq!(log_distance_geth(&a, &a), 0);
        prop_assert_eq!(log_distance_parity(&a, &a), 0);
        if a != b {
            prop_assert!(log_distance_geth(&a, &b) > 0);
            prop_assert!(log_distance_parity(&a, &b) > 0);
        }
        // range bounds: both fit the 257-bucket table
        prop_assert!((log_distance_geth(&a, &b) as usize) < MAX_BUCKETS);
        prop_assert!((log_distance_parity(&a, &b) as usize) < MAX_BUCKETS);
    }

    /// Geth's metric equals the bit length of the XOR; Parity's equals the
    /// sum of per-byte bit lengths — definitional cross-checks.
    #[test]
    fn metric_definitions(a in arb_hash(), b in arb_hash()) {
        let mut bitlen = 0u32;
        let mut bytesum = 0u32;
        for i in 0..32 {
            let x = a[i] ^ b[i];
            if x != 0 && bitlen == 0 {
                bitlen = ((31 - i) * 8) as u32 + (8 - x.leading_zeros());
            }
            bytesum += 8 - x.leading_zeros().min(8);
        }
        prop_assert_eq!(log_distance_geth(&a, &b), bitlen);
        prop_assert_eq!(log_distance_parity(&a, &b), bytesum);
    }

    /// Equation 1: the metrics agree exactly when the XOR's set bits form
    /// a suffix (XOR = 2^k − 1).
    #[test]
    fn equation_one(a in arb_hash(), b in arb_hash()) {
        let mut xor = [0u8; 32];
        for i in 0..32 {
            xor[i] = a[i] ^ b[i];
        }
        // is xor of the form 2^k - 1? (big-endian all-ones suffix)
        let mut val: Option<u128> = None;
        // walk bytes big-endian building the value only when small enough
        if xor.iter().take(16).all(|&b| b == 0) {
            let mut v: u128 = 0;
            for &byte in &xor[16..] {
                v = (v << 8) | byte as u128;
            }
            val = Some(v);
        }
        if let Some(v) = val {
            let form = v != 0 && (v & (v + 1)) == 0; // 2^k - 1 test
            prop_assert_eq!(metrics_agree(&a, &b), form || v == 0 && a == b);
        } else {
            // top half nonzero: XOR >= 2^128, can only be 2^k-1 if ALL
            // lower bits are ones — verify via the byte pattern directly.
            let mut seen_partial = false;
            let mut ok = true;
            for &byte in xor.iter() {
                if seen_partial {
                    if byte != 0xff {
                        ok = false;
                        break;
                    }
                } else if byte != 0 {
                    // first nonzero byte must be of form 2^j - 1
                    let b = byte as u16;
                    if (b & (b + 1)) != 0 {
                        ok = false;
                        break;
                    }
                    seen_partial = true;
                }
            }
            prop_assert_eq!(metrics_agree(&a, &b), ok && seen_partial);
        }
    }

    /// xor_cmp is a total order consistent with equality.
    #[test]
    fn xor_cmp_order(t in arb_hash(), a in arb_hash(), b in arb_hash(), c in arb_hash()) {
        use std::cmp::Ordering;
        prop_assert_eq!(xor_cmp(&t, &a, &a), Ordering::Equal);
        prop_assert_eq!(xor_cmp(&t, &a, &b), xor_cmp(&t, &b, &a).reverse());
        // transitivity on a sorted triple
        let mut v = [a, b, c];
        v.sort_by(|x, y| xor_cmp(&t, x, y));
        prop_assert_ne!(xor_cmp(&t, &v[0], &v[1]), Ordering::Greater);
        prop_assert_ne!(xor_cmp(&t, &v[1], &v[2]), Ordering::Greater);
        prop_assert_ne!(xor_cmp(&t, &v[0], &v[2]), Ordering::Greater);
    }
}

fn arb_record() -> impl Strategy<Value = NodeRecord> {
    (proptest::array::uniform32(any::<u8>()), any::<u8>()).prop_map(|(half, last)| {
        let mut id = [0u8; 64];
        id[..32].copy_from_slice(&half);
        id[32] = last;
        NodeRecord::new(
            NodeId(id),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, last), 30303),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Table invariants: size bounds, no self, contains-after-add,
    /// closest() sorted by the active metric.
    #[test]
    fn table_invariants(records in proptest::collection::vec(arb_record(), 1..120),
                        metric_geth in any::<bool>(),
                        target in arb_hash()) {
        let metric = if metric_geth { Metric::GethLog2 } else { Metric::ParityByteSum };
        let local = NodeId([0xEEu8; 64]);
        let mut table = RoutingTable::new(local, metric);
        for (i, r) in records.iter().enumerate() {
            let _ = table.add(*r, i as u64);
        }
        prop_assert!(table.len() <= records.len());
        prop_assert!(table.len() <= MAX_BUCKETS * BUCKET_SIZE);
        prop_assert!(!table.contains(&local));
        for size in table.bucket_sizes() {
            prop_assert!(size <= BUCKET_SIZE);
        }
        let closest = table.closest(&target, 16);
        prop_assert!(closest.len() <= 16);
        for w in closest.windows(2) {
            let da = metric.distance(&target, &w[0].id.kad_hash());
            let db = metric.distance(&target, &w[1].id.kad_hash());
            prop_assert!(da <= db, "closest() not sorted under {metric:?}");
        }
        // remove everything we inserted; table drains
        for r in &records {
            table.remove(&r.id);
        }
        prop_assert!(table.is_empty());
    }
}
