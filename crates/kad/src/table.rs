//! The k-bucket routing table.
//!
//! Buckets are indexed by log distance from the local node's hashed ID.
//! Following Kademlia's eviction policy (§2.1 of the paper), a full bucket
//! **favours old nodes**: the new node is only admitted if the
//! least-recently-active resident fails a liveness check. The table itself
//! is sans-IO — it never sends PINGs; it reports an eviction *candidate* and
//! the caller (the discv4 service) resolves it with
//! [`RoutingTable::confirm_alive`] or [`RoutingTable::evict_and_insert`].

use crate::distance::{xor_cmp, Metric, MAX_BUCKETS};
use enode::{NodeId, NodeRecord};

/// Maximum nodes per bucket (Geth's default `bucketSize = 16`).
pub const BUCKET_SIZE: usize = 16;

/// One resident of a bucket.
#[derive(Debug, Clone)]
pub struct BucketEntry {
    /// The node's record (id + endpoint).
    pub record: NodeRecord,
    /// Logical timestamp of the last observed activity (caller-supplied
    /// monotonic time; the simulator feeds simulated nanoseconds).
    pub last_seen: u64,
    /// Cached `keccak256(id)` — distance math runs on this constantly.
    pub hash: [u8; 32],
    /// The id's first 8 bytes, big-endian — an **order-preserving prefix**
    /// of the full 64-byte id. Equality probes and the `closest()`
    /// tiebreak compare this word first and touch the full id only when
    /// the prefixes collide, so the common case is one u64 compare
    /// instead of a 64-byte memcmp.
    pub fp: u64,
}

/// Order-preserving 8-byte fingerprint of a node id (big-endian prefix):
/// `id_fp(a) < id_fp(b)` ⇒ `a < b`, and equal fingerprints fall back to
/// the full id, so substituting the fingerprint first never changes a
/// comparison's outcome.
fn id_fp(id: &NodeId) -> u64 {
    let mut word = [0u8; 8];
    word.copy_from_slice(&id.0[..8]);
    u64::from_be_bytes(word)
}

/// Result of attempting to add a node.
#[derive(Debug, Clone, PartialEq)]
pub enum AddOutcome {
    /// Inserted into a bucket with spare capacity.
    Added,
    /// Node was already present; its `last_seen` was refreshed and the
    /// endpoint updated.
    Refreshed,
    /// The destination bucket is full. The caller should liveness-check the
    /// returned least-recently-active resident and then call
    /// [`RoutingTable::confirm_alive`] (keep old, drop new) or
    /// [`RoutingTable::evict_and_insert`] (replace).
    BucketFull {
        /// The least-recently-active resident (eviction candidate).
        candidate: NodeRecord,
    },
    /// The node is the local node itself; never stored.
    IsSelf,
}

/// A Kademlia routing table keyed by the configured distance metric.
///
/// Buckets are stored **sparsely**: a sorted vector of `(index, residents)`
/// pairs instead of a dense `Vec` of [`MAX_BUCKETS`] empty vectors. Under
/// the Geth metric a host's residents concentrate in a handful of
/// top-distance buckets, so the dense layout paid ~`MAX_BUCKETS` × 24 bytes
/// of fixed cost per host for slots that stay empty forever — the dominant
/// per-host term at 250k-host scale. Iteration order (ascending bucket
/// index, insertion order within a bucket) is identical to the dense form.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    local_id: NodeId,
    local_hash: [u8; 32],
    metric: Metric,
    /// `(bucket index, residents)`, ascending by index; indices present
    /// only once populated (an emptied bucket keeps its slot).
    buckets: Vec<(u16, Vec<BucketEntry>)>,
}

impl RoutingTable {
    /// Create an empty table for `local_id` using `metric`.
    pub fn new(local_id: NodeId, metric: Metric) -> RoutingTable {
        RoutingTable {
            local_hash: local_id.kad_hash(),
            local_id,
            metric,
            buckets: Vec::new(),
        }
    }

    /// The residents of bucket `idx`, if it was ever populated.
    fn bucket(&self, idx: usize) -> Option<&Vec<BucketEntry>> {
        self.buckets
            .binary_search_by_key(&(idx as u16), |(i, _)| *i)
            .ok()
            .map(|pos| &self.buckets[pos].1)
    }

    /// Mutable residents of bucket `idx`, creating its slot on first use.
    fn bucket_mut(&mut self, idx: usize) -> &mut Vec<BucketEntry> {
        match self
            .buckets
            .binary_search_by_key(&(idx as u16), |(i, _)| *i)
        {
            Ok(pos) => &mut self.buckets[pos].1,
            Err(pos) => {
                self.buckets.insert(pos, (idx as u16, Vec::new()));
                &mut self.buckets[pos].1
            }
        }
    }

    /// The local node's ID.
    pub fn local_id(&self) -> &NodeId {
        &self.local_id
    }

    /// The metric in use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Bucket index for a node.
    pub fn bucket_index(&self, id: &NodeId) -> usize {
        self.metric.distance(&self.local_hash, &id.kad_hash()) as usize
    }

    /// Total number of stored nodes.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|(_, b)| b.len()).sum()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a node is present.
    pub fn contains(&self, id: &NodeId) -> bool {
        let fp = id_fp(id);
        self.bucket(self.bucket_index(id))
            .is_some_and(|b| b.iter().any(|e| e.fp == fp && e.record.id == *id))
    }

    /// Attempt to add (or refresh) a node observed at `now`.
    pub fn add(&mut self, record: NodeRecord, now: u64) -> AddOutcome {
        if record.id == self.local_id {
            return AddOutcome::IsSelf;
        }
        let idx = self.bucket_index(&record.id);
        let fp = id_fp(&record.id);
        let bucket = self.bucket_mut(idx);
        if let Some(entry) = bucket
            .iter_mut()
            .find(|e| e.fp == fp && e.record.id == record.id)
        {
            entry.last_seen = now;
            entry.record = record;
            return AddOutcome::Refreshed;
        }
        if bucket.len() < BUCKET_SIZE {
            let hash = record.id.kad_hash();
            bucket.push(BucketEntry {
                record,
                last_seen: now,
                hash,
                fp,
            });
            return AddOutcome::Added;
        }
        let candidate = bucket
            .iter()
            .min_by_key(|e| e.last_seen)
            .expect("bucket full implies nonempty")
            .record;
        AddOutcome::BucketFull { candidate }
    }

    /// Record that a liveness check on `id` succeeded at `now` (Kademlia
    /// keeps the old node and the new one is dropped).
    pub fn confirm_alive(&mut self, id: &NodeId, now: u64) {
        let idx = self.bucket_index(id);
        let fp = id_fp(id);
        if let Some(entry) = self
            .bucket_mut(idx)
            .iter_mut()
            .find(|e| e.fp == fp && e.record.id == *id)
        {
            entry.last_seen = now;
        }
    }

    /// Evict `dead` (it failed a liveness check) and insert `record` in its
    /// place. No-op insert if the bucket does not actually contain `dead`.
    pub fn evict_and_insert(&mut self, dead: &NodeId, record: NodeRecord, now: u64) {
        self.remove(dead);
        // The replacement belongs in its own bucket, which may differ.
        let _ = self.add(record, now);
    }

    /// Remove a node outright (e.g. repeated dial failures).
    pub fn remove(&mut self, id: &NodeId) {
        let idx = self.bucket_index(id);
        let fp = id_fp(id);
        self.bucket_mut(idx)
            .retain(|e| !(e.fp == fp && e.record.id == *id));
    }

    /// The `k` nodes closest to `target` **according to this table's
    /// metric**, with raw-XOR tiebreaking inside equal log-distance groups
    /// and a final deterministic NodeId tiebreak.
    ///
    /// This is what a node returns in a NEIGHBORS response — and under the
    /// Parity metric the result barely correlates with true XOR closeness,
    /// which is exactly the §6.3 dysfunction.
    ///
    /// The sort key is total — `(metric distance, raw XOR distance,
    /// NodeId)` — so the result is a pure function of the table's
    /// *contents*, independent of bucket iteration or insertion order.
    /// Without the id tiebreak, two entries whose `kad_hash` collide
    /// would be ordered by whatever the underlying storage yields, and a
    /// same-seed crawl could diverge after a BTree/iteration-order
    /// refactor.
    pub fn closest(&self, target: &[u8; 32], k: usize) -> Vec<NodeRecord> {
        let mut all: Vec<(&BucketEntry, u32)> = self
            .entries()
            .map(|e| (e, self.metric.distance(target, &e.hash)))
            .collect();
        // The id tiebreak goes through the order-preserving fingerprint
        // first: same total order as a bare `id.0.cmp`, but almost every
        // comparison resolves on one u64 instead of 64 bytes.
        let by_metric = |(ea, da): &(&BucketEntry, u32), (eb, db): &(&BucketEntry, u32)| {
            da.cmp(db)
                .then_with(|| xor_cmp(target, &ea.hash, &eb.hash))
                .then_with(|| ea.fp.cmp(&eb.fp))
                .then_with(|| ea.record.id.0.cmp(&eb.record.id.0))
        };
        // hotpath -- every FINDNODE answered runs this against a saturated
        // table. The key is a total order over distinct ids, so selecting
        // the k smallest and sorting only those returns the identical
        // sequence a full sort would, in O(n + k log k) comparisons.
        if k < all.len() {
            all.select_nth_unstable_by(k, by_metric);
            all.truncate(k);
        }
        all.sort_unstable_by(by_metric);
        all.into_iter().map(|(e, _)| e.record).collect()
    }

    /// All records currently in the table (ascending bucket index,
    /// insertion order within a bucket — identical to the former dense
    /// layout's iteration order).
    pub fn entries(&self) -> impl Iterator<Item = &BucketEntry> {
        self.buckets.iter().flat_map(|(_, b)| b.iter())
    }

    /// Per-bucket occupancy, for diagnostics and the ablation benches.
    /// Keeps the dense [`MAX_BUCKETS`]-length shape callers index into.
    pub fn bucket_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; MAX_BUCKETS];
        for (idx, bucket) in &self.buckets {
            sizes[*idx as usize] = bucket.len();
        }
        sizes
    }

    /// Export the table contents for checkpoint/restore: `(bucket index,
    /// residents as (record, last_seen))` in storage order. Cached hashes
    /// and fingerprints are derived data and deliberately omitted.
    pub fn export_entries(&self) -> Vec<(u16, Vec<(NodeRecord, u64)>)> {
        self.buckets
            .iter()
            .map(|(idx, b)| (*idx, b.iter().map(|e| (e.record, e.last_seen)).collect()))
            .collect()
    }

    /// Rebuild a table from [`RoutingTable::export_entries`] output,
    /// preserving bucket slots (including emptied ones) and in-bucket
    /// insertion order exactly.
    pub fn from_entries(
        local_id: NodeId,
        metric: Metric,
        entries: Vec<(u16, Vec<(NodeRecord, u64)>)>,
    ) -> RoutingTable {
        let buckets = entries
            .into_iter()
            .map(|(idx, residents)| {
                let b = residents
                    .into_iter()
                    .map(|(record, last_seen)| BucketEntry {
                        fp: id_fp(&record.id),
                        hash: record.id.kad_hash(),
                        record,
                        last_seen,
                    })
                    .collect();
                (idx, b)
            })
            .collect();
        RoutingTable {
            local_hash: local_id.kad_hash(),
            local_id,
            metric,
            buckets,
        }
    }

    /// A uniformly random resident, used for table refresh lookups.
    pub fn random_node<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeRecord> {
        let total = self.len();
        if total == 0 {
            return None;
        }
        let pick = rng.gen_range(0..total);
        self.entries().nth(pick).map(|e| e.record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode::Endpoint;
    use std::net::Ipv4Addr;

    fn record(seed: u8) -> NodeRecord {
        // Derive a valid-looking id deterministically (doesn't need to be a
        // real curve point for table logic).
        let mut id = [0u8; 64];
        for (i, b) in id.iter_mut().enumerate() {
            *b = seed.wrapping_mul(31).wrapping_add(i as u8);
        }
        NodeRecord::new(
            NodeId(id),
            Endpoint::new(Ipv4Addr::new(10, 0, 0, seed), 30303),
        )
    }

    fn table() -> RoutingTable {
        RoutingTable::new(NodeId([0xEEu8; 64]), Metric::GethLog2)
    }

    #[test]
    fn add_and_contains() {
        let mut t = table();
        let r = record(1);
        assert_eq!(t.add(r, 10), AddOutcome::Added);
        assert!(t.contains(&r.id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn re_add_refreshes() {
        let mut t = table();
        let mut r = record(1);
        t.add(r, 10);
        r.endpoint.tcp_port = 40404; // endpoint change propagates
        assert_eq!(t.add(r, 20), AddOutcome::Refreshed);
        assert_eq!(t.len(), 1);
        let entry = t.entries().next().unwrap();
        assert_eq!(entry.last_seen, 20);
        assert_eq!(entry.record.endpoint.tcp_port, 40404);
    }

    #[test]
    fn self_never_stored() {
        let mut t = table();
        let me = NodeRecord::new(*t.local_id(), Endpoint::new(Ipv4Addr::LOCALHOST, 1));
        assert_eq!(t.add(me, 1), AddOutcome::IsSelf);
        assert!(t.is_empty());
    }

    #[test]
    fn bucket_full_returns_lru_candidate() {
        let mut t = table();
        // Fill one specific bucket by brute-force search for ids in it.
        let mut in_bucket = Vec::new();
        let mut seed = 0u16;
        let target_bucket = {
            // find the bucket of the first record and collect others mapping
            // to the same bucket
            let first = record(0);
            t.bucket_index(&first.id)
        };
        while in_bucket.len() < BUCKET_SIZE + 1 && seed < 10000 {
            let mut id = [0u8; 64];
            id[0] = (seed >> 8) as u8;
            id[1] = seed as u8;
            id[63] = 0x55;
            let r = NodeRecord::new(NodeId(id), Endpoint::new(Ipv4Addr::LOCALHOST, 1));
            if t.bucket_index(&r.id) == target_bucket {
                in_bucket.push(r);
            }
            seed += 1;
        }
        assert!(
            in_bucket.len() > BUCKET_SIZE,
            "couldn't build a full bucket"
        );
        for (i, r) in in_bucket.iter().take(BUCKET_SIZE).enumerate() {
            assert_eq!(t.add(*r, i as u64), AddOutcome::Added);
        }
        let overflow = in_bucket[BUCKET_SIZE];
        match t.add(overflow, 99) {
            AddOutcome::BucketFull { candidate } => {
                // oldest (last_seen = 0) is the eviction candidate
                assert_eq!(candidate.id, in_bucket[0].id);
                // confirm-alive path keeps the old node
                t.confirm_alive(&candidate.id, 100);
                assert!(t.contains(&candidate.id));
                assert!(!t.contains(&overflow.id));
                // now the candidate is fresh; the next LRU is in_bucket[1]
                match t.add(overflow, 101) {
                    AddOutcome::BucketFull { candidate: c2 } => {
                        assert_eq!(c2.id, in_bucket[1].id);
                        // eviction path replaces
                        t.evict_and_insert(&c2.id, overflow, 102);
                        assert!(!t.contains(&c2.id));
                        assert!(t.contains(&overflow.id));
                    }
                    other => panic!("expected BucketFull, got {other:?}"),
                }
            }
            other => panic!("expected BucketFull, got {other:?}"),
        }
    }

    #[test]
    fn closest_orders_by_metric() {
        let mut t = table();
        for s in 0..50u8 {
            t.add(record(s), s as u64);
        }
        let target = record(200).id.kad_hash();
        let got = t.closest(&target, 16);
        assert_eq!(got.len(), 16);
        // verify sorted by geth distance with xor tiebreak
        for w in got.windows(2) {
            let da = Metric::GethLog2.distance(&target, &w[0].id.kad_hash());
            let db = Metric::GethLog2.distance(&target, &w[1].id.kad_hash());
            assert!(da <= db);
        }
    }

    #[test]
    fn closest_with_fewer_than_k() {
        let mut t = table();
        t.add(record(1), 1);
        t.add(record(2), 1);
        let got = t.closest(&[0u8; 32], 16);
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn self_distance_is_zero_and_bucket_index_is_valid() {
        // distance(x, x) = 0 under both metrics, so the self bucket index
        // is 0 — in range, never a panic — and `add` still refuses to
        // store the local node (the IsSelf guard, not an index trick).
        for metric in [Metric::GethLog2, Metric::ParityByteSum] {
            let local = NodeId([0xEEu8; 64]);
            let mut t = RoutingTable::new(local, metric);
            assert_eq!(t.bucket_index(&local), 0, "{metric:?}");
            let me = NodeRecord::new(local, Endpoint::new(Ipv4Addr::LOCALHOST, 1));
            assert_eq!(t.add(me, 1), AddOutcome::IsSelf);
            assert!(t.is_empty());
            // A populated table queried AT the local node's own hash must
            // not misbehave either: plain metric ordering, no panics.
            for s in 0..20u8 {
                t.add(record(s), s as u64);
            }
            let local_hash = local.kad_hash();
            let got = t.closest(&local_hash, 5);
            assert_eq!(got.len(), 5);
            for w in got.windows(2) {
                let da = metric.distance(&local_hash, &w[0].id.kad_hash());
                let db = metric.distance(&local_hash, &w[1].id.kad_hash());
                assert!(da <= db);
            }
        }
    }

    #[test]
    fn closest_is_independent_of_insertion_order() {
        // `closest` must be a pure function of table *contents*: the same
        // record set inserted in any order (and with different activity
        // timestamps) yields the identical NEIGHBORS ordering. This is
        // what keeps same-seed crawls reproducible across storage/
        // iteration-order refactors.
        for metric in [Metric::GethLog2, Metric::ParityByteSum] {
            // Admission itself is order-dependent once a bucket fills (a
            // full bucket favours residents), so build the stored set
            // first, then re-insert exactly that set in reverse order:
            // bucket membership is content-determined, so both tables end
            // up with identical contents.
            let mut forward = RoutingTable::new(NodeId([0xEEu8; 64]), metric);
            let mut stored = Vec::new();
            for (i, r) in (0..60u8).map(record).enumerate() {
                if forward.add(r, i as u64) == AddOutcome::Added {
                    stored.push(r);
                }
            }
            let mut reverse = RoutingTable::new(NodeId([0xEEu8; 64]), metric);
            for (i, r) in stored.iter().rev().enumerate() {
                assert_eq!(reverse.add(*r, 1000 + i as u64), AddOutcome::Added);
            }
            let target = record(200).id.kad_hash();
            assert_eq!(
                forward.closest(&target, 16),
                reverse.closest(&target, 16),
                "{metric:?}"
            );
        }
    }

    #[test]
    fn closest_ties_broken_by_xor_then_node_id() {
        // Under ParityByteSum, distinct hashes frequently collide on the
        // metric distance; the result must then follow raw XOR closeness,
        // with NodeId as the final total-order guard. Verify the full
        // returned ordering against an independently computed sort key.
        let mut t = RoutingTable::new(NodeId([0xEEu8; 64]), Metric::ParityByteSum);
        for s in 0..80u8 {
            t.add(record(s), s as u64);
        }
        let target = record(123).id.kad_hash();
        let got = t.closest(&target, 32);
        let mut expected: Vec<NodeRecord> = t.entries().map(|e| e.record).collect();
        expected.sort_by(|a, b| {
            let (ha, hb) = (a.id.kad_hash(), b.id.kad_hash());
            Metric::ParityByteSum
                .distance(&target, &ha)
                .cmp(&Metric::ParityByteSum.distance(&target, &hb))
                .then_with(|| xor_cmp(&target, &ha, &hb))
                .then_with(|| a.id.0.cmp(&b.id.0))
        });
        expected.truncate(32);
        assert_eq!(got, expected);
    }

    #[test]
    fn remove_deletes() {
        let mut t = table();
        let r = record(9);
        t.add(r, 1);
        t.remove(&r.id);
        assert!(!t.contains(&r.id));
    }

    #[test]
    fn random_node_some_when_nonempty() {
        use rand::SeedableRng;
        let mut t = table();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(t.random_node(&mut rng).is_none());
        t.add(record(1), 1);
        assert!(t.random_node(&mut rng).is_some());
    }
}
