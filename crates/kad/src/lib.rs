//! Kademlia-style routing for RLPx node discovery.
//!
//! RLPx adapts Kademlia (Maymounkov & Mazières 2002) for node discovery
//! only (no data storage). The differences the paper highlights (§2.1):
//!
//! 1. no store/retrieve — discovery and routing only;
//! 2. 512-bit node IDs (secp256k1 public keys) instead of 160-bit;
//! 3. IDs double as public keys for the encrypted TCP transport;
//! 4. XOR distance is computed over the **Keccak-256 hash** of the ID;
//! 5. the metric is `⌊log₂(hash(a) ⊕ hash(b))⌋`, giving **257** buckets.
//!
//! This crate implements the routing table, the iterative FIND_NODE lookup,
//! and — crucially for reproducing §6.3 — **both** log-distance metrics
//! found in the wild:
//!
//! * [`Metric::GethLog2`] — the correct `⌊log₂⌋` of the 256-bit XOR;
//! * [`Metric::ParityByteSum`] — Parity's incorrect per-byte bit-length sum
//!   (Appendix A of the paper), which concentrates all random pairs into a
//!   narrow band of "distances" and cripples its usefulness for routing.
#![forbid(unsafe_code)]

mod distance;
mod lookup;
mod table;

pub use distance::{
    log_distance_geth, log_distance_parity, metrics_agree, xor_cmp, Metric, MAX_BUCKETS,
};
pub use lookup::{Lookup, LookupState, LookupStatus};
pub use table::{AddOutcome, BucketEntry, RoutingTable, BUCKET_SIZE};
