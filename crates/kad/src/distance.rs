//! The two node-distance metrics observed on the 2018 Ethereum network.

use enode::NodeId;

/// Number of distinct bucket indices under the correct metric: distances
/// run 0 (identical hash) through 256, inclusive.
pub const MAX_BUCKETS: usize = 257;

/// Which log-distance implementation a node runs (§6.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Geth's correct metric: `⌊log₂(H(a) ⊕ H(b))⌋ + 1` expressed as
    /// "bit length of the XOR", i.e. `256 - leading_zeros`. Identical
    /// hashes give 0.
    GethLog2,
    /// Parity's incorrect metric (pre-fix): the **sum over all 32 bytes** of
    /// each XOR byte's bit length. Under it a random pair lands near 224
    /// with tiny variance, so bucket indices stop reflecting prefix
    /// closeness at all.
    ParityByteSum,
}

impl Metric {
    /// Compute this metric between two 32-byte hashes.
    pub fn distance(&self, a: &[u8; 32], b: &[u8; 32]) -> u32 {
        match self {
            Metric::GethLog2 => log_distance_geth(a, b),
            Metric::ParityByteSum => log_distance_parity(a, b),
        }
    }

    /// Compute this metric between two node IDs (hashing them first, as both
    /// clients do).
    pub fn node_distance(&self, a: &NodeId, b: &NodeId) -> u32 {
        self.distance(&a.kad_hash(), &b.kad_hash())
    }
}

/// Geth's log-distance: the bit length of `a ⊕ b` (0 when equal, 256 when
/// the top bit differs).
pub fn log_distance_geth(a: &[u8; 32], b: &[u8; 32]) -> u32 {
    for i in 0..32 {
        let x = a[i] ^ b[i];
        if x != 0 {
            let bits_below = ((31 - i) * 8) as u32;
            return bits_below + (8 - x.leading_zeros());
        }
    }
    0
}

/// Parity's buggy distance (paper Appendix A): sum of per-byte bit lengths
/// of the XOR.
pub fn log_distance_parity(a: &[u8; 32], b: &[u8; 32]) -> u32 {
    let mut ret = 0u32;
    for i in 0..32 {
        let mut v = a[i] ^ b[i];
        while v != 0 {
            v >>= 1;
            ret += 1;
        }
    }
    ret
}

/// Compare two hashes by raw XOR distance to a target (the tiebreaker used
/// when sorting lookup results — log distance alone is too coarse).
pub fn xor_cmp(target: &[u8; 32], a: &[u8; 32], b: &[u8; 32]) -> std::cmp::Ordering {
    for i in 0..32 {
        let da = target[i] ^ a[i];
        let db = target[i] ^ b[i];
        if da != db {
            return da.cmp(&db);
        }
    }
    std::cmp::Ordering::Equal
}

/// The paper's Equation (1): the two metrics agree exactly when the XOR
/// value is of the form 2^k − 1 (all set bits contiguous from the bottom).
/// Exposed for tests and the Fig 11 experiment.
pub fn metrics_agree(a: &[u8; 32], b: &[u8; 32]) -> bool {
    log_distance_geth(a, b) == log_distance_parity(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(byte_idx: usize, value: u8) -> [u8; 32] {
        let mut out = [0u8; 32];
        out[byte_idx] = value;
        out
    }

    #[test]
    fn geth_distance_zero_for_equal() {
        let a = [0xabu8; 32];
        assert_eq!(log_distance_geth(&a, &a), 0);
        assert_eq!(log_distance_parity(&a, &a), 0);
    }

    #[test]
    fn geth_distance_top_bit() {
        let zero = [0u8; 32];
        assert_eq!(log_distance_geth(&zero, &h(0, 0x80)), 256);
        assert_eq!(log_distance_geth(&zero, &h(0, 0x01)), 249);
        assert_eq!(log_distance_geth(&zero, &h(31, 0x01)), 1);
        assert_eq!(log_distance_geth(&zero, &h(31, 0x02)), 2);
    }

    #[test]
    fn parity_distance_sums_bytes() {
        let zero = [0u8; 32];
        // one byte 0xff -> bit length 8
        assert_eq!(log_distance_parity(&zero, &h(5, 0xff)), 8);
        // two bytes: 0x80 (8) + 0x01 (1) = 9
        let mut b = [0u8; 32];
        b[0] = 0x80;
        b[31] = 0x01;
        assert_eq!(log_distance_parity(&zero, &b), 9);
        // all bytes 0xff -> 256
        assert_eq!(log_distance_parity(&zero, &[0xffu8; 32]), 256);
    }

    #[test]
    fn equation_one_agreement_condition() {
        let zero = [0u8; 32];
        // XOR = 2^k - 1 patterns agree...
        let mut x = [0u8; 32];
        x[31] = 0x0f; // 2^4 - 1
        assert!(metrics_agree(&zero, &x));
        let mut y = [0u8; 32];
        y[30] = 0xff;
        y[31] = 0xff; // 2^16 - 1
        assert!(metrics_agree(&zero, &y));
        // ...everything else disagrees
        let mut z = [0u8; 32];
        z[31] = 0x05; // 0b101: geth 3, parity 3 — wait, bitlen(0b101)=3 both!
                      // single-byte XOR always agrees because bitlen == log2+1 there; the
                      // divergence needs multiple nonzero bytes:
        assert!(metrics_agree(&zero, &z));
        let mut w = [0u8; 32];
        w[0] = 0x01; // geth: 249
        w[31] = 0x01; // parity adds 1 more
        assert!(!metrics_agree(&zero, &w));
    }

    #[test]
    fn parity_random_pairs_concentrate_near_224() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let mut sum = 0u64;
        let trials = 2000;
        for _ in 0..trials {
            let a: [u8; 32] = rng.gen();
            let b: [u8; 32] = rng.gen();
            sum += log_distance_parity(&a, &b) as u64;
        }
        let mean = sum as f64 / trials as f64;
        // E[bitlen(uniform byte)] = 1793/256 ≈ 7.0039; ×32 ≈ 224.1
        assert!((mean - 224.1).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn geth_random_pairs_concentrate_at_top() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let mut at_256 = 0;
        let trials = 2000;
        for _ in 0..trials {
            let a: [u8; 32] = rng.gen();
            let b: [u8; 32] = rng.gen();
            if log_distance_geth(&a, &b) == 256 {
                at_256 += 1;
            }
        }
        // Half of random pairs differ in the top bit.
        let frac = at_256 as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn xor_cmp_orders_by_closeness() {
        let target = [0u8; 32];
        let near = h(31, 0x01);
        let far = h(0, 0x01);
        assert_eq!(xor_cmp(&target, &near, &far), std::cmp::Ordering::Less);
        assert_eq!(xor_cmp(&target, &far, &near), std::cmp::Ordering::Greater);
        assert_eq!(xor_cmp(&target, &near, &near), std::cmp::Ordering::Equal);
    }

    #[test]
    fn metric_enum_dispatch() {
        let zero = [0u8; 32];
        let x = h(0, 0x80);
        assert_eq!(Metric::GethLog2.distance(&zero, &x), 256);
        assert_eq!(Metric::ParityByteSum.distance(&zero, &x), 8);
    }
}
