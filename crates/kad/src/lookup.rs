//! The iterative FIND_NODE lookup (§2.1).
//!
//! A lookup walks the network toward a target ID: query the α closest known
//! nodes, merge their NEIGHBORS responses, re-query the now-closest
//! unqueried nodes, and stop when the closest `k` set stops improving.
//! Sans-IO: the caller pumps [`Lookup::next_queries`] / feeds
//! [`Lookup::on_response`] / [`Lookup::on_failure`].

use crate::distance::xor_cmp;
use enode::{NodeId, NodeRecord};
use std::collections::BTreeSet;

/// Concurrency factor α (both Geth and the Kademlia paper use 3).
pub const ALPHA: usize = 3;

/// Result-set size k (Geth's `bucketSize`).
pub const K: usize = 16;

/// Progress state of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupStatus {
    /// More queries can be issued.
    InProgress,
    /// Converged: the closest-k set is fully queried (or no nodes remain).
    Done,
}

#[derive(Debug, Clone)]
struct Candidate {
    record: NodeRecord,
    hash: [u8; 32],
    queried: bool,
    failed: bool,
}

/// An in-flight iterative lookup toward `target`.
#[derive(Debug, Clone)]
pub struct Lookup {
    target_hash: [u8; 32],
    candidates: Vec<Candidate>,
    seen: BTreeSet<NodeId>,
    in_flight: usize,
    queries_sent: usize,
}

impl Lookup {
    /// Start a lookup toward the given **hashed** target, seeded with the
    /// closest nodes from the local routing table.
    pub fn new(target_hash: [u8; 32], seeds: Vec<NodeRecord>) -> Lookup {
        let mut lookup = Lookup {
            target_hash,
            candidates: Vec::new(),
            seen: BTreeSet::new(),
            in_flight: 0,
            queries_sent: 0,
        };
        for s in seeds {
            lookup.insert(s);
        }
        lookup
    }

    /// The hashed target.
    pub fn target(&self) -> &[u8; 32] {
        &self.target_hash
    }

    /// Total FIND_NODE queries issued so far.
    pub fn queries_sent(&self) -> usize {
        self.queries_sent
    }

    fn insert(&mut self, record: NodeRecord) -> bool {
        if !self.seen.insert(record.id) {
            return false;
        }
        let hash = record.id.kad_hash();
        let pos = self
            .candidates
            .binary_search_by(|c| xor_cmp(&self.target_hash, &c.hash, &hash))
            .unwrap_or_else(|p| p);
        self.candidates.insert(
            pos,
            Candidate {
                record,
                hash,
                queried: false,
                failed: false,
            },
        );
        true
    }

    /// Nodes to query next: the closest unqueried candidates, up to α minus
    /// what is already in flight. Marks them queried.
    pub fn next_queries(&mut self) -> Vec<NodeRecord> {
        let budget = ALPHA.saturating_sub(self.in_flight);
        let mut out = Vec::new();
        // Only walk the closest-K frontier; Kademlia does not query the tail.
        let frontier: Vec<usize> = self
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.failed)
            .take(K)
            .filter(|(_, c)| !c.queried)
            .map(|(i, _)| i)
            .take(budget)
            .collect();
        for i in frontier {
            self.candidates[i].queried = true;
            self.in_flight += 1;
            self.queries_sent += 1;
            out.push(self.candidates[i].record);
        }
        out
    }

    /// Merge a NEIGHBORS response from a queried node. Returns how many new
    /// candidates it contributed.
    pub fn on_response(&mut self, from: &NodeId, neighbors: Vec<NodeRecord>) -> usize {
        self.settle(from);
        let mut new = 0;
        for n in neighbors {
            if self.insert(n) {
                new += 1;
            }
        }
        new
    }

    /// Record that a queried node timed out.
    pub fn on_failure(&mut self, from: &NodeId) {
        self.settle(from);
        if let Some(c) = self.candidates.iter_mut().find(|c| c.record.id == *from) {
            c.failed = true;
        }
    }

    fn settle(&mut self, from: &NodeId) {
        if self
            .candidates
            .iter()
            .any(|c| c.record.id == *from && c.queried)
        {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
    }

    /// Whether the lookup has converged.
    pub fn status(&self) -> LookupStatus {
        if self.in_flight > 0 {
            return LookupStatus::InProgress;
        }
        let any_unqueried_in_frontier = self
            .candidates
            .iter()
            .filter(|c| !c.failed)
            .take(K)
            .any(|c| !c.queried);
        if any_unqueried_in_frontier {
            LookupStatus::InProgress
        } else {
            LookupStatus::Done
        }
    }

    /// The closest `k` successfully-contactable results.
    pub fn closest(&self, k: usize) -> Vec<NodeRecord> {
        self.candidates
            .iter()
            .filter(|c| !c.failed)
            .take(k)
            .map(|c| c.record)
            .collect()
    }

    /// Every node learned during the lookup (for the crawler, which wants
    /// *all* discovered nodes, not just the k closest).
    pub fn all_seen(&self) -> Vec<NodeRecord> {
        self.candidates.iter().map(|c| c.record).collect()
    }

    /// Capture the lookup for checkpoint/restore. Candidate hashes and the
    /// `seen` set are derived data and deliberately omitted.
    pub fn to_state(&self) -> LookupState {
        LookupState {
            target_hash: self.target_hash,
            candidates: self
                .candidates
                .iter()
                .map(|c| (c.record, c.queried, c.failed))
                .collect(),
            in_flight: self.in_flight,
            queries_sent: self.queries_sent,
        }
    }

    /// Rebuild a lookup mid-walk from [`Lookup::to_state`] output. The
    /// candidate vector is restored verbatim (it is already sorted by XOR
    /// distance), so tie ordering survives the round trip.
    pub fn from_state(s: LookupState) -> Lookup {
        let mut seen = BTreeSet::new();
        let candidates = s
            .candidates
            .into_iter()
            .map(|(record, queried, failed)| {
                seen.insert(record.id);
                Candidate {
                    hash: record.id.kad_hash(),
                    record,
                    queried,
                    failed,
                }
            })
            .collect();
        Lookup {
            target_hash: s.target_hash,
            candidates,
            seen,
            in_flight: s.in_flight,
            queries_sent: s.queries_sent,
        }
    }
}

/// Plain-data image of a [`Lookup`] for checkpoint/restore.
#[derive(Debug, Clone)]
pub struct LookupState {
    /// The hashed lookup target.
    pub target_hash: [u8; 32],
    /// `(record, queried, failed)` in frontier (XOR-sorted) order.
    pub candidates: Vec<(NodeRecord, bool, bool)>,
    /// Queries currently awaiting a response.
    pub in_flight: usize,
    /// Total queries issued so far.
    pub queries_sent: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use enode::Endpoint;
    use std::net::Ipv4Addr;

    fn rec(tag: u16) -> NodeRecord {
        let mut id = [0u8; 64];
        id[0] = (tag >> 8) as u8;
        id[1] = tag as u8;
        NodeRecord::new(NodeId(id), Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 30303))
    }

    #[test]
    fn queries_respect_alpha() {
        let seeds: Vec<_> = (0..10).map(rec).collect();
        let mut lk = Lookup::new([0u8; 32], seeds);
        let q1 = lk.next_queries();
        assert_eq!(q1.len(), ALPHA);
        // nothing more until responses arrive
        assert!(lk.next_queries().is_empty());
        assert_eq!(lk.status(), LookupStatus::InProgress);
    }

    #[test]
    fn responses_release_slots_and_add_candidates() {
        let seeds: Vec<_> = (0..3).map(rec).collect();
        let mut lk = Lookup::new([0u8; 32], seeds);
        let q = lk.next_queries();
        assert_eq!(q.len(), 3);
        let new = lk.on_response(&q[0].id, (100..105).map(rec).collect());
        assert_eq!(new, 5);
        let q2 = lk.next_queries();
        assert_eq!(q2.len(), 1); // one slot freed
        assert!(!q2.contains(&q[0]));
    }

    #[test]
    fn duplicate_neighbors_not_recounted() {
        let mut lk = Lookup::new([0u8; 32], vec![rec(1)]);
        let q = lk.next_queries();
        assert_eq!(lk.on_response(&q[0].id, vec![rec(2), rec(2), rec(1)]), 1);
    }

    #[test]
    fn converges_when_frontier_queried() {
        let seeds: Vec<_> = (0..2).map(rec).collect();
        let mut lk = Lookup::new([0u8; 32], seeds);
        loop {
            let qs = lk.next_queries();
            if qs.is_empty() && lk.status() == LookupStatus::Done {
                break;
            }
            for q in qs {
                lk.on_response(&q.id, vec![]);
            }
        }
        assert_eq!(lk.status(), LookupStatus::Done);
        assert_eq!(lk.queries_sent(), 2);
    }

    #[test]
    fn failures_remove_from_results() {
        let mut lk = Lookup::new([0u8; 32], vec![rec(1), rec(2), rec(3)]);
        let q = lk.next_queries();
        lk.on_failure(&q[0].id);
        lk.on_response(&q[1].id, vec![]);
        lk.on_response(&q[2].id, vec![]);
        while lk.status() == LookupStatus::InProgress {
            for q in lk.next_queries() {
                lk.on_response(&q.id, vec![]);
            }
        }
        let closest = lk.closest(16);
        assert_eq!(closest.len(), 2);
        assert!(!closest.iter().any(|r| r.id == q[0].id));
        // but all_seen still includes it (the crawler logs every sighting)
        assert_eq!(lk.all_seen().len(), 3);
    }

    #[test]
    fn results_sorted_by_xor_distance() {
        let target = [0u8; 32];
        let seeds: Vec<_> = (0..30).map(rec).collect();
        let mut lk = Lookup::new(target, seeds);
        while lk.status() == LookupStatus::InProgress {
            for q in lk.next_queries() {
                lk.on_response(&q.id, vec![]);
            }
        }
        let got = lk.closest(16);
        for w in got.windows(2) {
            assert_ne!(
                xor_cmp(&target, &w[0].id.kad_hash(), &w[1].id.kad_hash()),
                std::cmp::Ordering::Greater
            );
        }
    }
}
