//! detlint — the workspace's determinism & panic-safety linter.
//!
//! A from-scratch, dependency-free static-analysis pass that walks every
//! `.rs` file and `Cargo.toml` in the repository and enforces the twelve
//! rules the paper reproduction depends on (see [`rules::Rule`] or run
//! `cargo run -p detlint -- --explain R1`):
//!
//! * **R1** no wall-clock time outside the allowlist;
//! * **R2** no ambient randomness — seeded `StdRng` only;
//! * **R3** no `HashMap`/`HashSet` without an order-insensitivity
//!   justification;
//! * **R4** no `unsafe`, and `#![forbid(unsafe_code)]` in every crate root;
//! * **R5** no `unwrap`/`expect` in non-test code of attacker-facing
//!   crates;
//! * **R6** only offline-approved dependencies in any manifest;
//! * **R7** lenient EIP-8 decoding — strictness must be justified;
//! * **R8** no shared mutable state (statics, `thread_local!` cells);
//! * **R9** every RNG construction derives from a threaded seed parameter;
//! * **R10** protocol crates never import simulation/measurement layers;
//! * **R11** `// shard-state` types hold no `Rc`/`RefCell`/raw pointers;
//! * **R12** no allocation in `// hotpath` functions.
//!
//! R1–R7 are token rules: detlint masks comments and string/char literal
//! bodies (so their contents can never trigger a rule), then scans
//! identifier tokens — a deliberate trade: a few constructs are
//! over-approximated (any mention of `HashMap` counts, not just iteration),
//! which keeps the tool dependency-free and impossible to silently bypass
//! via macro tricks. R8–R12 run on a second level: an item-level parse
//! ([`parser`]) of each file's `use`/`static`/type/fn/impl structure, plus
//! a workspace dependency graph ([`graph`]) built from every manifest.
//! Escape hatches are explicit, greppable comments carrying a mandatory
//! justification.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod rules;
pub mod scan;
pub mod semantic;

pub use rules::Rule;
pub use scan::{scan_manifest_source, scan_rust_source, scan_workspace, Violation, WorkspaceScan};

use std::path::{Path, PathBuf};

/// Walk up from `start` to the enclosing Cargo workspace root (the first
/// ancestor whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(current) = dir {
        let manifest = current.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|line| line.trim() == "[workspace]") {
                return Some(current.to_path_buf());
            }
        }
        dir = current.parent();
    }
    None
}

/// Scan the workspace and partition against its checked-in baseline.
/// Returns `(new_violations, baselined_violations)`.
pub fn check(root: &Path) -> std::io::Result<(Vec<Violation>, Vec<Violation>)> {
    let violations = scan_workspace(root)?;
    let baseline = baseline::load(&root.join(baseline::BASELINE_FILE))?;
    Ok(baseline::partition(violations, &baseline))
}

/// Scan the workspace into a full [`report::Report`]: violations split
/// against the baseline plus the R11 shard-state inventory.
pub fn check_report(root: &Path) -> std::io::Result<report::Report> {
    let scanned = scan::scan_workspace_full(root)?;
    let baseline = baseline::load(&root.join(baseline::BASELINE_FILE))?;
    let (new, baselined) = baseline::partition(scanned.violations, &baseline);
    Ok(report::Report {
        new,
        baselined,
        shard_state: scanned.shard_state,
    })
}
