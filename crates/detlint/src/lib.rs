//! detlint — the workspace's determinism & panic-safety linter.
//!
//! A from-scratch, dependency-free static-analysis pass that walks every
//! `.rs` file and `Cargo.toml` in the repository and enforces the six rules
//! the paper reproduction depends on (see [`rules::Rule`] or run
//! `cargo run -p detlint -- --explain R1`):
//!
//! * **R1** no wall-clock time outside the allowlist;
//! * **R2** no ambient randomness — seeded `StdRng` only;
//! * **R3** no `HashMap`/`HashSet` without an order-insensitivity
//!   justification;
//! * **R4** no `unsafe`, and `#![forbid(unsafe_code)]` in every crate root;
//! * **R5** no `unwrap`/`expect` in non-test code of attacker-facing
//!   crates;
//! * **R6** only offline-approved dependencies in any manifest.
//!
//! detlint does not parse Rust. It masks comments and string/char literal
//! bodies (so their contents can never trigger a rule), then scans
//! identifier tokens — a deliberate trade: a few constructs are
//! over-approximated (any mention of `HashMap` counts, not just iteration),
//! which keeps the tool ~1k lines, dependency-free, and impossible to
//! silently bypass via macro tricks. Escape hatches are explicit,
//! greppable comments carrying a mandatory justification.
#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod scan;

pub use rules::Rule;
pub use scan::{scan_workspace, Violation};

use std::path::{Path, PathBuf};

/// Walk up from `start` to the enclosing Cargo workspace root (the first
/// ancestor whose `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(current) = dir {
        let manifest = current.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|line| line.trim() == "[workspace]") {
                return Some(current.to_path_buf());
            }
        }
        dir = current.parent();
    }
    None
}

/// Scan the workspace and partition against its checked-in baseline.
/// Returns `(new_violations, baselined_violations)`.
pub fn check(root: &Path) -> std::io::Result<(Vec<Violation>, Vec<Violation>)> {
    let violations = scan_workspace(root)?;
    let baseline = baseline::load(&root.join(baseline::BASELINE_FILE))?;
    Ok(baseline::partition(violations, &baseline))
}
