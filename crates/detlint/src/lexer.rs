//! A small Rust source masker.
//!
//! detlint does not parse Rust; it scans tokens. To do that soundly it must
//! never see the *contents* of comments, string/char literals, or doc
//! comments — the word `HashMap` inside an error message is not a
//! violation. [`mask`] rewrites a source file so that:
//!
//! * every comment byte becomes a space (line comments are additionally
//!   recorded verbatim, because detlint annotations live in them);
//! * every string/char-literal *body* becomes spaces (the delimiting quotes
//!   survive, so token boundaries stay put);
//! * newlines survive everywhere, so a position in the masked text is on
//!   the same line as in the original file.
//!
//! Handled literal shapes: `"…"`, `b"…"`, `c"…"`, `r"…"`/`r#"…"#`/…,
//! `br#"…"#`, `cr#"…"#`, `'x'`, `'\n'`, `'\u{1F600}'` — and lifetimes
//! (`'a`) are correctly *not* treated as char literals. Block comments
//! nest, as in real Rust.

/// One `//` comment, with the line (1-based) it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    pub line: usize,
    /// Full comment text including the leading `//`.
    pub text: String,
}

/// Result of [`mask`]: scannable code plus the comments that were removed.
#[derive(Debug, Clone)]
pub struct MaskedFile {
    /// The source with comment and literal bodies blanked to spaces.
    /// Same number of lines as the input.
    pub code: String,
    /// All `//` comments, in file order.
    pub line_comments: Vec<LineComment>,
}

/// Blank out comments and literal bodies; see module docs.
pub fn mask(source: &str) -> MaskedFile {
    Masker {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        code: String::with_capacity(source.len()),
        line_comments: Vec::new(),
    }
    .run()
}

struct Masker {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    code: String,
    line_comments: Vec<LineComment>,
}

impl Masker {
    fn run(mut self) -> MaskedFile {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_body(0),
                '\'' => self.char_or_lifetime(),
                'r' | 'b' | 'c' => {
                    if !self.string_prefix() {
                        self.keep(c);
                    }
                }
                _ => self.keep(c),
            }
        }
        MaskedFile {
            code: self.code,
            line_comments: self.line_comments,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Emit the current char unchanged and advance.
    fn keep(&mut self, c: char) {
        if c == '\n' {
            self.line += 1;
        }
        self.code.push(c);
        self.pos += 1;
    }

    /// Advance one char, emitting a space (or the newline itself).
    fn blank(&mut self) {
        let c = self.chars[self.pos];
        if c == '\n' {
            self.line += 1;
            self.code.push('\n');
        } else {
            self.code.push(' ');
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek(0).is_some_and(|c| c != '\n') {
            self.blank();
        }
        let mut text: String = self.chars[start..self.pos].iter().collect();
        // CRLF sources leave the `\r` on the comment tail; strip it so
        // annotation directives (`-- why\r`) parse identically to LF files.
        if text.ends_with('\r') {
            text.pop();
        }
        self.line_comments.push(LineComment { line, text });
    }

    fn block_comment(&mut self) {
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.blank();
                self.blank();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.blank();
                self.blank();
                if depth == 0 {
                    return;
                }
            } else {
                self.blank();
            }
        }
    }

    /// Try to consume a literal with an `r`/`b`/`c`/`br`/`cr` prefix
    /// starting at the current position. Returns false if this is an
    /// ordinary identifier (e.g. `r#raw_ident` or the variable `b`).
    fn string_prefix(&mut self) -> bool {
        // A prefix only starts a literal if it is not the tail of a wider
        // identifier (`attr"` inside `my_attr"x"` can't happen in valid
        // Rust, but be safe).
        if self.pos > 0 {
            let prev = self.chars[self.pos - 1];
            if prev.is_alphanumeric() || prev == '_' {
                return false;
            }
        }
        let mut len = 1;
        let two: String = self.chars[self.pos..(self.pos + 2).min(self.chars.len())]
            .iter()
            .collect();
        if two == "br" || two == "cr" {
            len = 2;
        }
        let raw = self.peek(len - 1) == Some('r');
        // Count `#`s after the prefix (raw strings only).
        let mut hashes = 0;
        while raw && self.peek(len + hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(len + hashes) != Some('"') {
            return false;
        }
        if !raw && hashes > 0 {
            return false;
        }
        // Emit the prefix and hashes unchanged, then the string body.
        for _ in 0..len + hashes {
            let c = self.chars[self.pos];
            self.keep(c);
        }
        if raw {
            self.raw_string_body(hashes);
        } else {
            self.string_body(0);
        }
        true
    }

    /// Consume `"…"` (cursor on the opening quote), blanking the body.
    /// `_hashes` is unused for cooked strings but keeps the signature
    /// parallel with [`raw_string_body`].
    fn string_body(&mut self, _hashes: usize) {
        self.keep('"');
        while let Some(c) = self.peek(0) {
            match c {
                '"' => {
                    self.keep('"');
                    return;
                }
                '\\' => {
                    self.blank();
                    if self.peek(0).is_some() {
                        self.blank();
                    }
                }
                _ => self.blank(),
            }
        }
    }

    /// Consume a raw string body terminated by `"` + `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        self.keep('"');
        while let Some(c) = self.peek(0) {
            if c == '"' {
                let closed = (0..hashes).all(|k| self.peek(1 + k) == Some('#'));
                if closed {
                    self.keep('"');
                    for _ in 0..hashes {
                        self.keep('#');
                    }
                    return;
                }
            }
            self.blank();
        }
    }

    /// Distinguish `'x'` / `'\n'` (char literals: blank the body) from
    /// lifetimes `'a` (kept as-is).
    fn char_or_lifetime(&mut self) {
        match self.peek(1) {
            Some('\\') => {
                // Escaped char literal: consume until the closing quote.
                self.keep('\'');
                while let Some(c) = self.peek(0) {
                    match c {
                        '\'' => {
                            self.keep('\'');
                            return;
                        }
                        '\\' => {
                            self.blank();
                            if self.peek(0).is_some() {
                                self.blank();
                            }
                        }
                        _ => self.blank(),
                    }
                }
            }
            Some(_) if self.peek(2) == Some('\'') && self.peek(1) != Some('\'') => {
                // 'x' — one-char literal.
                self.keep('\'');
                self.blank();
                self.keep('\'');
            }
            _ => {
                // Lifetime ('a) or stray quote: emit and move on.
                self.keep('\'');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_blanked_and_recorded() {
        let m = mask("let x = 1; // HashMap here\nlet y = 2;\n");
        assert!(!m.code.contains("HashMap"));
        assert_eq!(m.line_comments.len(), 1);
        assert_eq!(m.line_comments[0].line, 1);
        assert!(m.line_comments[0].text.contains("HashMap here"));
        assert!(m.code.contains("let y = 2;"));
    }

    #[test]
    fn block_comments_nest() {
        let m = mask("a /* x /* HashMap */ y */ b");
        assert!(!m.code.contains("HashMap"));
        assert!(m.code.starts_with('a'));
        assert!(m.code.ends_with('b'));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let m = mask(r#"let s = "HashMap"; let t = b"unsafe";"#);
        assert!(!m.code.contains("HashMap"));
        assert!(!m.code.contains("unsafe"));
        assert!(m.code.contains("let t ="));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let m = mask(r###"let s = r#"say "HashMap""#; let x = 1;"###);
        assert!(!m.code.contains("HashMap"));
        assert!(m.code.contains("let x = 1;"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask(r#"let s = "a\"HashMap"; let x = 1;"#);
        assert!(!m.code.contains("HashMap"));
        assert!(m.code.contains("let x = 1;"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let m = mask("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(m.code.contains("'a str"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let m = mask("let c = 'h'; let q = '\\''; let n = '\\n';");
        assert!(m.code.contains("let c = ' ';"));
        assert!(!m.code.contains('h'));
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let m = mask("let r#match = 1; let x = r#match;");
        assert!(m.code.contains("r#match"));
    }

    #[test]
    fn newlines_in_strings_preserve_line_numbers() {
        let m = mask("let s = \"a\nb\";\nlet x = 1; // note\n");
        assert_eq!(m.code.matches('\n').count(), 3);
        assert_eq!(m.line_comments[0].line, 3);
    }

    #[test]
    fn multibyte_chars_survive() {
        let m = mask("let s = \"héllo wörld\"; let x = 1;");
        assert!(m.code.contains("let x = 1;"));
    }

    #[test]
    fn crlf_comments_lose_the_carriage_return() {
        let m = mask("// detlint: allow(R5) -- why\r\nlet x = 1;\r\n");
        assert_eq!(m.line_comments.len(), 1);
        assert_eq!(m.line_comments[0].text, "// detlint: allow(R5) -- why");
        // The \r stays in the masked code (blanked like any other char),
        // so char positions keep lining up with the source.
        assert_eq!(m.code.matches('\n').count(), 2);
    }

    #[test]
    fn tab_indented_comments_are_recorded() {
        let m = mask("\t\t// detlint: allow(R5) -- tabbed in\nlet x = 1;\n");
        assert_eq!(m.line_comments.len(), 1);
        assert_eq!(m.line_comments[0].line, 1);
        assert_eq!(
            m.line_comments[0].text,
            "// detlint: allow(R5) -- tabbed in"
        );
    }

    #[test]
    fn comment_on_last_line_without_newline_is_recorded() {
        let m = mask("let x = 1; // trailing note");
        assert_eq!(m.line_comments.len(), 1);
        assert_eq!(m.line_comments[0].text, "// trailing note");
        let m = mask("// whole file is one comment, no newline");
        assert_eq!(m.line_comments.len(), 1);
    }
}
