//! CLI for detlint. Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p detlint                 # scan, exit 1 on new violations
//! cargo run -p detlint -- --explain R3 # print a rule's rationale
//! cargo run -p detlint -- --root PATH  # scan a different tree
//! ```
#![forbid(unsafe_code)]

use detlint::{baseline, rules, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for rule in rules::ALL {
                    println!("{}  {}", rule.id(), rule.title());
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = iter.next() else {
                    eprintln!("--explain requires a rule id (R1..R6)");
                    return ExitCode::FAILURE;
                };
                let Some(rule) = Rule::parse(id) else {
                    eprintln!("unknown rule `{id}` (expected R1..R6)");
                    return ExitCode::FAILURE;
                };
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--root" => {
                let Some(path) = iter.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                };
                root = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("detlint: cannot determine working directory: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match detlint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("detlint: no Cargo workspace found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let (new, baselined) = match detlint::check(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("detlint: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    for violation in &new {
        println!("{violation}");
    }
    if new.is_empty() {
        println!(
            "detlint: OK ({} baselined violation{})",
            baselined.len(),
            if baselined.len() == 1 { "" } else { "s" },
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "detlint: {} new violation{} (rules explained via --explain <rule>; \
             baseline: {})",
            new.len(),
            if new.len() == 1 { "" } else { "s" },
            baseline::BASELINE_FILE,
        );
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "detlint — determinism & panic-safety linter for this workspace\n\
         \n\
         USAGE:\n\
         \x20   cargo run -p detlint [-- OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --explain <R1..R6>  print a rule's rationale and escape hatch\n\
         \x20   --list-rules        one-line summary of every rule\n\
         \x20   --root <path>       workspace root (default: walk up from cwd)\n\
         \x20   --help              this text\n\
         \n\
         Exit status is 0 when no violations are found beyond the checked-in\n\
         baseline file ({}), 1 otherwise.",
        baseline::BASELINE_FILE,
    );
}
