//! CLI for detlint. Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p detlint                     # scan, exit 1 on new violations
//! cargo run -p detlint -- --explain R3     # print a rule's rationale
//! cargo run -p detlint -- --json           # machine-readable report, exit 0
//! cargo run -p detlint -- --report r.json  # summarize a saved report, gate
//! cargo run -p detlint -- --root PATH      # scan a different tree
//! ```
#![forbid(unsafe_code)]

use detlint::{baseline, report, rules, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut report_path: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--list-rules" => {
                for rule in rules::ALL {
                    println!("{}  {}", rule.id(), rule.title());
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(id) = iter.next() else {
                    eprintln!("--explain requires a rule id (R1..R12)");
                    return ExitCode::FAILURE;
                };
                let Some(rule) = Rule::parse(id) else {
                    eprintln!("unknown rule `{id}` (expected R1..R12)");
                    return ExitCode::FAILURE;
                };
                println!("{}", rule.explain());
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--report" => {
                let Some(path) = iter.next() else {
                    eprintln!("--report requires a path to a --json report file");
                    return ExitCode::FAILURE;
                };
                report_path = Some(PathBuf::from(path));
            }
            "--root" => {
                let Some(path) = iter.next() else {
                    eprintln!("--root requires a path");
                    return ExitCode::FAILURE;
                };
                root = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    // --report consumes a previously written --json file; no scan happens.
    if let Some(path) = report_path {
        return run_report(&path);
    }

    let root = match root {
        Some(root) => root,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(err) => {
                    eprintln!("detlint: cannot determine working directory: {err}");
                    return ExitCode::FAILURE;
                }
            };
            match detlint::find_workspace_root(&cwd) {
                Some(root) => root,
                None => {
                    eprintln!("detlint: no Cargo workspace found above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if json {
        // Machine-readable mode always exits 0: the report itself carries
        // the verdict, and the CI gate (`--report`) reads it back. This
        // keeps `detlint --json > a && detlint --json > b && cmp a b`
        // usable as a determinism check even on a dirty tree.
        let full = match detlint::check_report(&root) {
            Ok(full) => full,
            Err(err) => {
                eprintln!("detlint: scan failed: {err}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report::render_json(&full));
        return ExitCode::SUCCESS;
    }

    let (new, baselined) = match detlint::check(&root) {
        Ok(result) => result,
        Err(err) => {
            eprintln!("detlint: scan failed: {err}");
            return ExitCode::FAILURE;
        }
    };

    for violation in &new {
        println!("{violation}");
    }
    if new.is_empty() {
        println!(
            "detlint: OK ({} baselined violation{})",
            baselined.len(),
            if baselined.len() == 1 { "" } else { "s" },
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "detlint: {} new violation{} (rules explained via --explain <rule>; \
             baseline: {})",
            new.len(),
            if new.len() == 1 { "" } else { "s" },
            baseline::BASELINE_FILE,
        );
        ExitCode::FAILURE
    }
}

/// Read a saved `--json` report, print the per-rule summary table, and exit
/// 1 listing the offending codes if any new violations are recorded.
fn run_report(path: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("detlint: cannot read report {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc = match report::parse_json(&text) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!(
                "detlint: report {} is not valid JSON: {err}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let parsed = match report::read_report(&doc) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("detlint: report {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report::render_summary(&parsed));
    if parsed.offending.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!("detlint: {} new violation(s):", parsed.offending.len());
        for (code, file, line) in &parsed.offending {
            println!("  {code} {file}:{line}");
        }
        ExitCode::FAILURE
    }
}

fn print_help() {
    println!(
        "detlint — determinism & panic-safety linter for this workspace\n\
         \n\
         USAGE:\n\
         \x20   cargo run -p detlint [-- OPTIONS]\n\
         \n\
         OPTIONS:\n\
         \x20   --explain <R1..R12> print a rule's rationale and escape hatch\n\
         \x20   --list-rules        one-line summary of every rule\n\
         \x20   --json              emit the machine-readable report (format {}) \n\
         \x20                       on stdout and exit 0; CI gates via --report\n\
         \x20   --report <path>     read a saved --json report, print the\n\
         \x20                       per-rule summary, exit 1 on new violations\n\
         \x20   --root <path>       workspace root (default: walk up from cwd)\n\
         \x20   --help              this text\n\
         \n\
         Exit status is 0 when no violations are found beyond the checked-in\n\
         baseline file ({}), 1 otherwise.",
        report::FORMAT_VERSION,
        baseline::BASELINE_FILE,
    );
}
