//! Baseline handling: a checked-in file of grandfathered violations.
//!
//! The policy of this workspace is an **empty baseline** — the file exists
//! so that the mechanism is exercised and so that an emergency grandfather
//! is a one-line diff with an audit trail, not a tool change.
//!
//! # Format (version 2)
//!
//! ```text
//! # comments and blank lines are ignored
//! version 2
//! R3.hash_collection crates/x/src/a.rs `HashMap` has randomized ...
//! ```
//!
//! The first non-comment line must be the `version 2` directive; every
//! following non-comment line is a [`Violation::baseline_key`]
//! (`{code} {path} {message}`). Version 1 files keyed on `{rule} {path}
//! {message}` and carried no directive — they are rejected loudly so a
//! stale baseline can never silently grandfather the wrong findings.

use crate::scan::Violation;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "detlint.baseline";

/// The baseline format this build reads and writes.
pub const BASELINE_VERSION: u64 = 2;

/// Load baseline keys from `path`. A missing file is an empty baseline, as
/// is a file containing only comments. Any entry lines must be preceded by
/// a matching `version 2` directive; a missing or mismatched directive is
/// an [`io::ErrorKind::InvalidData`] error with a migration hint.
pub fn load(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(err) => return Err(err),
    };
    parse(&text).map_err(|message| io::Error::new(io::ErrorKind::InvalidData, message))
}

fn parse(text: &str) -> Result<BTreeSet<String>, String> {
    let mut keys = BTreeSet::new();
    let mut version: Option<u64> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("version") {
            let rest = rest.trim();
            if version.is_some() {
                return Err(format!("line {}: duplicate version directive", idx + 1));
            }
            let parsed: u64 = rest
                .parse()
                .map_err(|_| format!("line {}: malformed version directive `{line}`", idx + 1))?;
            if parsed != BASELINE_VERSION {
                return Err(format!(
                    "baseline is format version {parsed}, this detlint reads version \
                     {BASELINE_VERSION}; re-generate the entries as \
                     `{{code}} {{path}} {{message}}` keys (codes like R3.hash_collection \
                     — run detlint and copy the `[code]` suffix of each finding)"
                ));
            }
            version = Some(parsed);
            continue;
        }
        if version.is_none() {
            return Err(format!(
                "line {}: baseline entry before a `version {BASELINE_VERSION}` directive \
                 — this is a pre-version (v1) baseline keyed on `{{rule}} {{path}} \
                 {{message}}`; migrate each entry to `{{code}} {{path}} {{message}}` \
                 and add `version {BASELINE_VERSION}` as the first non-comment line",
                idx + 1
            ));
        }
        if !looks_like_key(line) {
            return Err(format!(
                "line {}: `{line}` is not a baseline key (expected \
                 `Rn.slug path message`)",
                idx + 1
            ));
        }
        keys.insert(line.to_string());
    }
    Ok(keys)
}

/// A key must start with a diagnostic code: `R`, digits, `.`, a slug, then
/// a space before the path.
fn looks_like_key(line: &str) -> bool {
    let Some(rest) = line.strip_prefix('R') else {
        return false;
    };
    let digits = rest.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return false;
    }
    let Some(rest) = rest[digits..].strip_prefix('.') else {
        return false;
    };
    let slug = rest
        .chars()
        .take_while(|c| c.is_ascii_lowercase() || *c == '_')
        .count();
    slug > 0 && rest[slug..].starts_with(' ')
}

/// Split violations into (new, baselined) against the loaded keys.
pub fn partition(
    violations: Vec<Violation>,
    baseline: &BTreeSet<String>,
) -> (Vec<Violation>, Vec<Violation>) {
    violations
        .into_iter()
        .partition(|violation| !baseline.contains(&violation.baseline_key()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn violation(msg: &str) -> Violation {
        Violation {
            rule: Rule::R3,
            code: "R3.hash_collection",
            path: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: msg.to_string(),
        }
    }

    #[test]
    fn missing_baseline_is_empty() {
        let set = load(Path::new("/nonexistent/detlint.baseline")).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn comment_only_baseline_is_empty() {
        assert!(parse("# nothing grandfathered\n\n").unwrap().is_empty());
        assert!(parse("").unwrap().is_empty());
    }

    #[test]
    fn versioned_entries_load() {
        let keys =
            parse("# header\nversion 2\nR3.hash_collection crates/x/src/a.rs probe-only map\n")
                .unwrap();
        assert_eq!(keys.len(), 1);
        assert!(keys.contains("R3.hash_collection crates/x/src/a.rs probe-only map"));
    }

    #[test]
    fn v1_baseline_fails_loudly_with_migration_hint() {
        let err = parse("R3 crates/x/src/a.rs old-style key\n").unwrap_err();
        assert!(err.contains("version 2"), "{err}");
        assert!(err.contains("migrate"), "{err}");
    }

    #[test]
    fn wrong_version_fails_loudly() {
        let err = parse("version 1\nR3.hash_collection a.rs msg\n").unwrap_err();
        assert!(err.contains("format version 1"), "{err}");
        let err = parse("version two\n").unwrap_err();
        assert!(err.contains("malformed version directive"), "{err}");
    }

    #[test]
    fn non_key_entry_fails_loudly() {
        let err = parse("version 2\nnot a key at all\n").unwrap_err();
        assert!(err.contains("not a baseline key"), "{err}");
    }

    #[test]
    fn partition_respects_keys() {
        let grandfathered = violation("old debt");
        let fresh = violation("new debt");
        let mut baseline = BTreeSet::new();
        baseline.insert(grandfathered.baseline_key());
        let (new, old) = partition(vec![grandfathered, fresh], &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].message, "new debt");
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].message, "old debt");
    }
}
