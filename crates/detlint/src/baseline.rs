//! Baseline handling: a checked-in file of grandfathered violations.
//!
//! The policy of this workspace is an **empty baseline** — the file exists
//! so that the mechanism is exercised and so that an emergency grandfather
//! is a one-line diff with an audit trail, not a tool change.

use crate::scan::Violation;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

/// Default baseline filename at the workspace root.
pub const BASELINE_FILE: &str = "detlint.baseline";

/// Load baseline keys from `path`. A missing file is an empty baseline.
/// Lines starting with `#` and blank lines are ignored; every other line is
/// a [`Violation::baseline_key`].
pub fn load(path: &Path) -> io::Result<BTreeSet<String>> {
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(err) => return Err(err),
    };
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Split violations into (new, baselined) against the loaded keys.
pub fn partition(
    violations: Vec<Violation>,
    baseline: &BTreeSet<String>,
) -> (Vec<Violation>, Vec<Violation>) {
    violations
        .into_iter()
        .partition(|violation| !baseline.contains(&violation.baseline_key()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn violation(msg: &str) -> Violation {
        Violation {
            rule: Rule::R3,
            path: "crates/x/src/a.rs".to_string(),
            line: 7,
            message: msg.to_string(),
        }
    }

    #[test]
    fn missing_baseline_is_empty() {
        let set = load(Path::new("/nonexistent/detlint.baseline")).unwrap();
        assert!(set.is_empty());
    }

    #[test]
    fn partition_respects_keys() {
        let grandfathered = violation("old debt");
        let fresh = violation("new debt");
        let mut baseline = BTreeSet::new();
        baseline.insert(grandfathered.baseline_key());
        let (new, old) = partition(vec![grandfathered, fresh], &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].message, "new debt");
        assert_eq!(old.len(), 1);
        assert_eq!(old[0].message, "old debt");
    }
}
