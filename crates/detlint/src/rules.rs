//! The thirteen determinism, panic-safety, wire-policy & parallelism rules.

use std::fmt;

/// A detlint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No wall-clock time outside the allowlist.
    R1,
    /// No ambient randomness; seeded `StdRng` only.
    R2,
    /// No unordered-map types without an order-insensitivity justification.
    R3,
    /// No `unsafe`, and every crate root must `#![forbid(unsafe_code)]`.
    R4,
    /// No `unwrap`/`expect` in non-test code of attacker-facing crates.
    R5,
    /// Only offline-approved dependencies in any manifest.
    R6,
    /// Strict trailing-data rejection in protocol decoders needs a
    /// `// conformance: strict -- <why>` justification.
    R7,
    /// No shared mutable state: `static mut`, interior-mutability
    /// statics, or `thread_local!` cells outside `crates/obs/`.
    R8,
    /// RNG stream discipline: every RNG constructed from a seed that
    /// flows in through a function parameter, never pinned ambiently.
    R9,
    /// Layering: protocol crates never import the simulation/crawler
    /// layers, and `obs` depends on nothing in-workspace.
    R10,
    /// `// shard-state` types must contain no `Rc`/`RefCell`/raw-pointer
    /// fields, directly or through in-workspace field types.
    R11,
    /// No allocation/formatting (`format!`, `to_string`, `Vec::new`,
    /// `vec![]`, non-`Payload` `.clone()`) inside `// hotpath` fns.
    R12,
    /// No fat-keyed ordered maps (`BTreeMap`/`BTreeSet` keyed by `NodeId`
    /// or `HostAddr`) inside `// hotpath` fns — intern to compact ids.
    R13,
}

/// All rules, in order.
pub const ALL: [Rule; 13] = [
    Rule::R1,
    Rule::R2,
    Rule::R3,
    Rule::R4,
    Rule::R5,
    Rule::R6,
    Rule::R7,
    Rule::R8,
    Rule::R9,
    Rule::R10,
    Rule::R11,
    Rule::R12,
    Rule::R13,
];

impl Rule {
    /// Short identifier, e.g. `R3`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::R10 => "R10",
            Rule::R11 => "R11",
            Rule::R12 => "R12",
            Rule::R13 => "R13",
        }
    }

    /// Parse `R1`..`R13` (case-insensitive).
    pub fn parse(text: &str) -> Option<Rule> {
        match text.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            "R10" => Some(Rule::R10),
            "R11" => Some(Rule::R11),
            "R12" => Some(Rule::R12),
            "R13" => Some(Rule::R13),
            _ => None,
        }
    }

    /// Stable diagnostic code for a malformed/unjustified annotation of
    /// this rule (the non-annotation codes live at each check site).
    pub fn annotation_code(self) -> &'static str {
        match self {
            Rule::R1 => "R1.annotation",
            Rule::R2 => "R2.annotation",
            Rule::R3 => "R3.annotation",
            Rule::R4 => "R4.annotation",
            Rule::R5 => "R5.annotation",
            Rule::R6 => "R6.annotation",
            Rule::R7 => "R7.annotation",
            Rule::R8 => "R8.annotation",
            Rule::R9 => "R9.annotation",
            Rule::R10 => "R10.annotation",
            Rule::R11 => "R11.annotation",
            Rule::R12 => "R12.annotation",
            Rule::R13 => "R13.annotation",
        }
    }

    /// One-line summary.
    pub fn title(self) -> &'static str {
        match self {
            Rule::R1 => "no wall-clock time outside the allowlist",
            Rule::R2 => "no ambient randomness; seeded StdRng only",
            Rule::R3 => "no HashMap/HashSet without an order-insensitivity justification",
            Rule::R4 => "no unsafe code; every crate root must forbid it",
            Rule::R5 => "no unwrap/expect in non-test code of attacker-facing crates",
            Rule::R6 => "only offline-approved dependencies in manifests",
            Rule::R7 => "strict trailing-data rejection needs a conformance justification",
            Rule::R8 => "no shared mutable state (static mut, interior-mutability statics)",
            Rule::R9 => "RNG seeds must flow in through parameters, never be pinned ambiently",
            Rule::R10 => {
                "protocol crates never import netsim/nodefinder/bench; obs imports nothing"
            }
            Rule::R11 => "shard-state types carry no Rc/RefCell/raw-pointer fields",
            Rule::R12 => "no allocation or formatting inside hotpath functions",
            Rule::R13 => "no BTreeMap/BTreeSet keyed by NodeId/HostAddr inside hotpath functions",
        }
    }

    /// Full explanation printed by `detlint --explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1 => {
                "R1: no wall-clock time outside the allowlist.\n\
                 \n\
                 The paper's experiments are replayed in a discrete-event simulator whose\n\
                 only clock is virtual (`Sim::now()`). A single `Instant::now()` or\n\
                 `SystemTime` read makes results depend on host load and wall time, which\n\
                 breaks bit-for-bit reproducibility of every table and figure.\n\
                 \n\
                 Flags: the identifiers `Instant` and `SystemTime`.\n\
                 Allowlist: vendor/criterion (benchmarks measure wall time by definition)\n\
                 and crates/obs/src/profile.rs — the self-profiler's wall-clock\n\
                 quarantine. Its readings attribute dispatch cost per shard/kind/host\n\
                 and are exported only to results/obs_profile.json; they never reach\n\
                 sim state, and a tier-1 test proves byte-identical sim outputs with\n\
                 the profiler on vs off.\n\
                 Escape hatch: `// detlint: allow(R1) -- <why>` on the same or previous line.\n\
                 Hard ban: under crates/obs/ (profile.rs aside) the escape hatch is not\n\
                 honored — trace records are sim-time-stamped by contract, and the\n\
                 annotation itself is flagged there."
            }
            Rule::R2 => {
                "R2: no ambient randomness; seeded StdRng only.\n\
                 \n\
                 Every random choice must flow from the experiment seed (SEED env var,\n\
                 default 1804) through an explicitly passed `StdRng`. Ambient entropy\n\
                 (`thread_rng()`, `rand::random()`, `from_entropy()`, `OsRng`) gives each\n\
                 run a different node population and crawl schedule, making regressions\n\
                 indistinguishable from noise. The vendored rand deliberately does not\n\
                 provide these constructors, so this rule is also enforced by the compiler;\n\
                 detlint keeps flagging them so the error message names the policy.\n\
                 \n\
                 Flags: `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, and\n\
                 `rand::random`.\n\
                 Escape hatch: `// detlint: allow(R2) -- <why>` (expect scrutiny in review)."
            }
            Rule::R3 => {
                "R3: no HashMap/HashSet without an order-insensitivity justification.\n\
                 \n\
                 std's hash maps randomize iteration order per process, so any code that\n\
                 iterates one can smuggle nondeterminism into event ordering, neighbor\n\
                 selection, or serialized output. The default is BTreeMap/BTreeSet, whose\n\
                 iteration order is total and stable.\n\
                 \n\
                 Flags: the identifiers `HashMap` and `HashSet` anywhere in code.\n\
                 Escape hatch: `// detlint: order-insensitive -- <why>` on the same or\n\
                 previous line, stating why iteration order cannot reach observable\n\
                 behavior (e.g. the map is only probed, never iterated)."
            }
            Rule::R4 => {
                "R4: no unsafe code; every crate root must forbid it.\n\
                 \n\
                 This workspace parses attacker-controlled bytes from the public network.\n\
                 Memory-safety bugs in that position are remote vulnerabilities, and the\n\
                 paper artifact has no performance need that justifies them. Each crate\n\
                 root (src/lib.rs) must carry `#![forbid(unsafe_code)]` so the compiler\n\
                 rejects unsafe even if a future edit removes the workspace lint.\n\
                 \n\
                 Flags: the `unsafe` keyword, and any src/lib.rs missing the forbid header.\n\
                 Escape hatch: none — change the design instead."
            }
            Rule::R5 => {
                "R5: no unwrap/expect in non-test code of attacker-facing crates.\n\
                 \n\
                 rlp, discv4, rlpx, devp2p and ethwire decode bytes that arrive from\n\
                 arbitrary peers. A reachable panic is a remote denial-of-service on a\n\
                 real deployment and an aborted campaign in the simulator. Decoders must\n\
                 return `Result` and let the caller log-and-drop, matching how the\n\
                 NodeFinder crawler survives the malformed traffic the paper reports.\n\
                 \n\
                 Flags: `.unwrap(` / `.expect(` in those crates' src/, outside #[cfg(test)]\n\
                 regions and #[test] functions.\n\
                 Escape hatch: `// detlint: allow(R5) -- <why>` for cases proved\n\
                 unreachable (e.g. infallible conversions on fixed-size arrays)."
            }
            Rule::R6 => {
                "R6: only offline-approved dependencies in manifests.\n\
                 \n\
                 The build must succeed with no network and no registry cache, so every\n\
                 dependency must resolve inside this repository: a path dependency, a\n\
                 `workspace = true` inheritance, or one of the approved names vendored\n\
                 under vendor/ (rand, proptest, criterion, bytes, serde, serde_derive,\n\
                 serde_json). Git dependencies are always rejected; a version-only\n\
                 dependency on anything else would try to reach a registry.\n\
                 \n\
                 Flags: git deps, registry deps outside the approved set, and path deps\n\
                 escaping the repository root.\n\
                 Escape hatch: none — vendor a stand-in instead (see vendor/README.md)."
            }
            Rule::R7 => {
                "R7: strict trailing-data rejection needs a conformance justification.\n\
                 \n\
                 EIP-8 made lenient decoding the network's compatibility contract: protocol\n\
                 decoders must tolerate extra trailing list elements (counting them through\n\
                 the wire.extra.* observables) so newer clients can extend messages without\n\
                 being dropped by older ones. A decoder that hard-rejects trailing data is\n\
                 therefore an interop liability by default, and each such site must say why\n\
                 strictness is the right call there. The conformance crate's golden vectors\n\
                 pin the tolerated shapes; this rule keeps new code honest about the policy.\n\
                 \n\
                 Flags, in the protocol crates' src/ outside test code: the identifier\n\
                 `ensure_exact`, construction of `RlpError::TrailingBytes` (match arms that\n\
                 merely inspect the error are exempt), and an `item_count` call compared\n\
                 with `!=` on the same line (use a `< n` reject / `> n` tolerate-and-count\n\
                 split instead).\n\
                 Escape hatch: `// conformance: strict -- <why>` on the same or previous\n\
                 line — the annotation doubles as in-source documentation of the\n\
                 strictness decision. `// detlint: allow(R7) -- <why>` also works but the\n\
                 conformance form is preferred."
            }
            Rule::R8 => {
                "R8: no shared mutable state (static mut, interior-mutability statics).\n\
                 \n\
                 ROADMAP item 1 shards the deterministic netsim across threads with the\n\
                 contract that shard-count must not change exports. Any global a host\n\
                 callback can mutate — a `static mut`, a `static` whose type has interior\n\
                 mutability (Cell, RefCell, Mutex, RwLock, OnceLock, atomics, ...), or a\n\
                 `thread_local!` cell — turns into cross-shard coupling (divergent traces)\n\
                 or silent per-shard forking (divergent caches) the moment the event loop\n\
                 is partitioned. State must live in a struct that is explicitly owned by\n\
                 one shard and handed across boundaries on purpose.\n\
                 \n\
                 Flags, in src/ outside test code: `static mut` declarations; `static`\n\
                 declarations whose type names an interior-mutability container; and\n\
                 `thread_local!` entries holding `Cell`/`RefCell`/`UnsafeCell` outside\n\
                 crates/obs/ (the observability recorder is thread-local by design —\n\
                 per-shard recorders merge at barrier epochs).\n\
                 Escape hatch: `// detlint: allow(R8) -- <why>` for state proved\n\
                 value-deterministic (e.g. a memo cache of a pure function, or a\n\
                 write-once table of constants where every writer computes the same\n\
                 value)."
            }
            Rule::R9 => {
                "R9: RNG seeds must flow in through parameters, never be pinned ambiently.\n\
                 \n\
                 Extends R2 from call-site tokens to constructor dataflow. R2 bans\n\
                 entropy that differs across runs; R9 bans seeds that cannot be\n\
                 *threaded*: an RNG built from a literal or module-level constant inside\n\
                 library code is a hidden second stream that ignores `SimConfig.seed`,\n\
                 so two worlds with different experiment seeds share it (correlated\n\
                 draws), and a sharded netsim cannot give each shard a derived stream.\n\
                 Every RNG constructor argument must be reachable from a function\n\
                 parameter (e.g. `config.seed`, a `seed: u64` argument, or a local\n\
                 computed from one).\n\
                 \n\
                 Flags, in library src/ (bin targets, examples and test code are\n\
                 experiment roots and exempt): `seed_from_u64(...)` / `from_seed(...)`\n\
                 whose argument contains no identifier derived from a parameter of the\n\
                 enclosing fn — a numeric literal or SCREAMING_CASE constant is reported\n\
                 as a pinned seed, any other underived identifier as an ambient seed.\n\
                 Escape hatch: `// detlint: allow(R9) -- <why>` (e.g. conformance golden\n\
                 vectors, whose fixed seeds are the fixture format)."
            }
            Rule::R10 => {
                "R10: protocol crates never import netsim/nodefinder/bench; obs imports\n\
                 nothing in-workspace.\n\
                 \n\
                 The layering that keeps the stack testable and shardable: protocol\n\
                 crates (rlp, enode, kad, discv4, rlpx, devp2p, ethwire) are pure\n\
                 byte-in/byte-out libraries that any driver — simulator, conformance\n\
                 harness, or a future real-socket runner — can host; the simulation and\n\
                 crawler layers sit above them. `obs` is the root of the tree: every\n\
                 crate may emit into it, so an obs dependency on anything in-workspace\n\
                 would be a cycle and would let instrumentation reach back into\n\
                 behaviour. Enforced from the workspace graph: Cargo.toml dependency\n\
                 edges (dev-dependencies included) plus resolved `use` imports.\n\
                 \n\
                 Flags: a protocol crate whose manifest or sources reach netsim,\n\
                 nodefinder or bench; any in-workspace dependency or import in obs.\n\
                 Escape hatch: none — layering is architecture, not a per-site call;\n\
                 move the code instead."
            }
            Rule::R11 => {
                "R11: shard-state types carry no Rc/RefCell/raw-pointer fields.\n\
                 \n\
                 Types annotated `// shard-state` are the inventory of state that\n\
                 ROADMAP item 1 will move across shard boundaries. `Rc` clones are not\n\
                 atomic, `RefCell` borrows are not Sync, and raw pointers carry no\n\
                 ownership story — any of them inside shard-state is a data race or a\n\
                 double-free waiting for the parallel refactor. The rule checks the\n\
                 annotated type's fields and, transitively, every field type that\n\
                 resolves to an in-workspace definition, so wrapping the Rc one struct\n\
                 deeper does not hide it. The full inventory (every annotated type,\n\
                 every field, flagged or clean) is emitted in the --json report so the\n\
                 migration has a checked worklist of what must become Arc or\n\
                 message-passing.\n\
                 \n\
                 Flags: a `// shard-state` type with a field whose type (direct or via\n\
                 in-workspace types) names `Rc`, `RefCell`, `UnsafeCell`, `*const` or\n\
                 `*mut`.\n\
                 Escape hatch: `// detlint: allow(R11) -- <why>` on the field, stating\n\
                 the migration plan (the field stays in the JSON inventory, marked\n\
                 justified)."
            }
            Rule::R12 => {
                "R12: no allocation or formatting inside hotpath functions.\n\
                 \n\
                 Functions annotated `// hotpath` — the netsim dispatch loop, the timer\n\
                 wheel's push/pop, the obs interned-id emission path — run once per\n\
                 simulated event, millions of times per run. PR 4 bought its 5.8x by\n\
                 removing exactly the constructs this rule now forbids from creeping\n\
                 back: per-event heap allocation and string formatting dominate those\n\
                 profiles long before algorithmic cost does.\n\
                 \n\
                 Flags, inside `// hotpath` fns: `format!`, `.to_string()`,\n\
                 `Vec::new()`, `vec![...]`, and `.clone()` on anything not known to be\n\
                 a `Payload` (whose clone is a reference-count bump by design; detlint\n\
                 tracks `Payload`-typed parameters and `let` ascriptions).\n\
                 Escape hatch: `// detlint: allow(R12) -- <why>` (e.g. a cold error\n\
                 path inside a hot fn)."
            }
            Rule::R13 => {
                "R13: no BTreeMap/BTreeSet keyed by NodeId/HostAddr inside hotpath\n\
                 functions.\n\
                 \n\
                 A `BTreeMap<NodeId, _>` probe walks a comparison chain of 64-byte\n\
                 memcmps; on the crawler and netsim hot paths that chain runs once per\n\
                 simulated event. PR 9 interned node ids into world-scoped `u32`\n\
                 compact ids (`enode::Interner`) and converted the hot tables to dense\n\
                 vec-indexed layouts (`nodefinder::dense`, netsim's `AddrIndex`), with\n\
                 the boundary rule that wire and exports still only ever see the full\n\
                 id. This rule keeps fat-keyed ordered maps from creeping back into\n\
                 the paths that were converted: name a type, not a profile, and the\n\
                 regression is caught at lint time instead of at the 250k-host tier.\n\
                 \n\
                 Flags, inside `// hotpath` fns: a `BTreeMap<K, _>` or `BTreeSet<K>`\n\
                 token whose first type argument is `NodeId` or `HostAddr`.\n\
                 Escape hatch: mark the fn `// hotpath: fat-key -- <why>` (stating why\n\
                 a fat-keyed tree is correct there, e.g. a cold diagnostic path that\n\
                 must iterate in NodeId order), or `// detlint: allow(R13) -- <why>`\n\
                 on the flagged line."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_parse() {
        for rule in ALL {
            assert_eq!(Rule::parse(rule.id()), Some(rule));
            assert_eq!(Rule::parse(&rule.id().to_lowercase()), Some(rule));
        }
        assert_eq!(Rule::parse("R14"), None);
        assert_eq!(Rule::parse("R0"), None);
    }

    #[test]
    fn every_rule_documents_itself() {
        for rule in ALL {
            assert!(rule.explain().starts_with(rule.id()));
            assert!(!rule.title().is_empty());
            assert!(rule.annotation_code().starts_with(rule.id()));
        }
    }
}
