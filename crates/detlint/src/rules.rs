//! The seven determinism, panic-safety & wire-policy rules.

use std::fmt;

/// A detlint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No wall-clock time outside the allowlist.
    R1,
    /// No ambient randomness; seeded `StdRng` only.
    R2,
    /// No unordered-map types without an order-insensitivity justification.
    R3,
    /// No `unsafe`, and every crate root must `#![forbid(unsafe_code)]`.
    R4,
    /// No `unwrap`/`expect` in non-test code of attacker-facing crates.
    R5,
    /// Only offline-approved dependencies in any manifest.
    R6,
    /// Strict trailing-data rejection in protocol decoders needs a
    /// `// conformance: strict -- <why>` justification.
    R7,
}

/// All rules, in order.
pub const ALL: [Rule; 7] = [
    Rule::R1,
    Rule::R2,
    Rule::R3,
    Rule::R4,
    Rule::R5,
    Rule::R6,
    Rule::R7,
];

impl Rule {
    /// Short identifier, e.g. `R3`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
        }
    }

    /// Parse `R1`..`R7` (case-insensitive).
    pub fn parse(text: &str) -> Option<Rule> {
        match text.trim().to_ascii_uppercase().as_str() {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            _ => None,
        }
    }

    /// One-line summary.
    pub fn title(self) -> &'static str {
        match self {
            Rule::R1 => "no wall-clock time outside the allowlist",
            Rule::R2 => "no ambient randomness; seeded StdRng only",
            Rule::R3 => "no HashMap/HashSet without an order-insensitivity justification",
            Rule::R4 => "no unsafe code; every crate root must forbid it",
            Rule::R5 => "no unwrap/expect in non-test code of attacker-facing crates",
            Rule::R6 => "only offline-approved dependencies in manifests",
            Rule::R7 => "strict trailing-data rejection needs a conformance justification",
        }
    }

    /// Full explanation printed by `detlint --explain <rule>`.
    pub fn explain(self) -> &'static str {
        match self {
            Rule::R1 => {
                "R1: no wall-clock time outside the allowlist.\n\
                 \n\
                 The paper's experiments are replayed in a discrete-event simulator whose\n\
                 only clock is virtual (`Sim::now()`). A single `Instant::now()` or\n\
                 `SystemTime` read makes results depend on host load and wall time, which\n\
                 breaks bit-for-bit reproducibility of every table and figure.\n\
                 \n\
                 Flags: the identifiers `Instant` and `SystemTime`.\n\
                 Allowlist: vendor/criterion (benchmarks measure wall time by definition).\n\
                 Escape hatch: `// detlint: allow(R1) -- <why>` on the same or previous line.\n\
                 Hard ban: under crates/obs/ the escape hatch is not honored — trace\n\
                 records are sim-time-stamped by contract, and the annotation itself\n\
                 is flagged there."
            }
            Rule::R2 => {
                "R2: no ambient randomness; seeded StdRng only.\n\
                 \n\
                 Every random choice must flow from the experiment seed (SEED env var,\n\
                 default 1804) through an explicitly passed `StdRng`. Ambient entropy\n\
                 (`thread_rng()`, `rand::random()`, `from_entropy()`, `OsRng`) gives each\n\
                 run a different node population and crawl schedule, making regressions\n\
                 indistinguishable from noise. The vendored rand deliberately does not\n\
                 provide these constructors, so this rule is also enforced by the compiler;\n\
                 detlint keeps flagging them so the error message names the policy.\n\
                 \n\
                 Flags: `thread_rng`, `from_entropy`, `OsRng`, `getrandom`, and\n\
                 `rand::random`.\n\
                 Escape hatch: `// detlint: allow(R2) -- <why>` (expect scrutiny in review)."
            }
            Rule::R3 => {
                "R3: no HashMap/HashSet without an order-insensitivity justification.\n\
                 \n\
                 std's hash maps randomize iteration order per process, so any code that\n\
                 iterates one can smuggle nondeterminism into event ordering, neighbor\n\
                 selection, or serialized output. The default is BTreeMap/BTreeSet, whose\n\
                 iteration order is total and stable.\n\
                 \n\
                 Flags: the identifiers `HashMap` and `HashSet` anywhere in code.\n\
                 Escape hatch: `// detlint: order-insensitive -- <why>` on the same or\n\
                 previous line, stating why iteration order cannot reach observable\n\
                 behavior (e.g. the map is only probed, never iterated)."
            }
            Rule::R4 => {
                "R4: no unsafe code; every crate root must forbid it.\n\
                 \n\
                 This workspace parses attacker-controlled bytes from the public network.\n\
                 Memory-safety bugs in that position are remote vulnerabilities, and the\n\
                 paper artifact has no performance need that justifies them. Each crate\n\
                 root (src/lib.rs) must carry `#![forbid(unsafe_code)]` so the compiler\n\
                 rejects unsafe even if a future edit removes the workspace lint.\n\
                 \n\
                 Flags: the `unsafe` keyword, and any src/lib.rs missing the forbid header.\n\
                 Escape hatch: none — change the design instead."
            }
            Rule::R5 => {
                "R5: no unwrap/expect in non-test code of attacker-facing crates.\n\
                 \n\
                 rlp, discv4, rlpx, devp2p and ethwire decode bytes that arrive from\n\
                 arbitrary peers. A reachable panic is a remote denial-of-service on a\n\
                 real deployment and an aborted campaign in the simulator. Decoders must\n\
                 return `Result` and let the caller log-and-drop, matching how the\n\
                 NodeFinder crawler survives the malformed traffic the paper reports.\n\
                 \n\
                 Flags: `.unwrap(` / `.expect(` in those crates' src/, outside #[cfg(test)]\n\
                 regions and #[test] functions.\n\
                 Escape hatch: `// detlint: allow(R5) -- <why>` for cases proved\n\
                 unreachable (e.g. infallible conversions on fixed-size arrays)."
            }
            Rule::R6 => {
                "R6: only offline-approved dependencies in manifests.\n\
                 \n\
                 The build must succeed with no network and no registry cache, so every\n\
                 dependency must resolve inside this repository: a path dependency, a\n\
                 `workspace = true` inheritance, or one of the approved names vendored\n\
                 under vendor/ (rand, proptest, criterion, bytes, serde, serde_derive,\n\
                 serde_json). Git dependencies are always rejected; a version-only\n\
                 dependency on anything else would try to reach a registry.\n\
                 \n\
                 Flags: git deps, registry deps outside the approved set, and path deps\n\
                 escaping the repository root.\n\
                 Escape hatch: none — vendor a stand-in instead (see vendor/README.md)."
            }
            Rule::R7 => {
                "R7: strict trailing-data rejection needs a conformance justification.\n\
                 \n\
                 EIP-8 made lenient decoding the network's compatibility contract: protocol\n\
                 decoders must tolerate extra trailing list elements (counting them through\n\
                 the wire.extra.* observables) so newer clients can extend messages without\n\
                 being dropped by older ones. A decoder that hard-rejects trailing data is\n\
                 therefore an interop liability by default, and each such site must say why\n\
                 strictness is the right call there. The conformance crate's golden vectors\n\
                 pin the tolerated shapes; this rule keeps new code honest about the policy.\n\
                 \n\
                 Flags, in the protocol crates' src/ outside test code: the identifier\n\
                 `ensure_exact`, construction of `RlpError::TrailingBytes` (match arms that\n\
                 merely inspect the error are exempt), and an `item_count` call compared\n\
                 with `!=` on the same line (use a `< n` reject / `> n` tolerate-and-count\n\
                 split instead).\n\
                 Escape hatch: `// conformance: strict -- <why>` on the same or previous\n\
                 line — the annotation doubles as in-source documentation of the\n\
                 strictness decision. `// detlint: allow(R7) -- <why>` also works but the\n\
                 conformance form is preferred."
            }
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_through_parse() {
        for rule in ALL {
            assert_eq!(Rule::parse(rule.id()), Some(rule));
            assert_eq!(Rule::parse(&rule.id().to_lowercase()), Some(rule));
        }
        assert_eq!(Rule::parse("R9"), None);
    }

    #[test]
    fn every_rule_documents_itself() {
        for rule in ALL {
            assert!(rule.explain().starts_with(rule.id()));
            assert!(!rule.title().is_empty());
        }
    }
}
