//! The workspace dependency graph: crates, their `Cargo.toml` edges, and
//! the layering rule (R10) checked on top of it.
//!
//! Built from every manifest the scanner collects: `[package] name` plus
//! the `[dependencies]` / `[dev-dependencies]` sections, with
//! `workspace = true` inheritance resolved against the root manifest's
//! `[workspace.dependencies]` table and `path` dependencies normalized to
//! repo-relative directories. The graph feeds two consumers:
//!
//! * [`WorkspaceGraph::layering_violations`] — R10's manifest half;
//! * [`WorkspaceGraph::cycles`] — a structural sanity check exercised by
//!   the graph's own tests (cargo would also reject a cycle, but detlint
//!   runs before cargo and reports the offending edge, not a solver error).
//!
//! The `use`-import half of R10 lives in [`crate::semantic`], keyed on the
//! same crate lists defined here; a test in `crates/detlint/tests` proves
//! those lists match `Cargo.toml` reality for every workspace member.

use crate::rules::Rule;
use crate::scan::Violation;
use std::collections::BTreeMap;

/// Protocol-layer crates: pure byte-in/byte-out libraries that must be
/// hostable by any driver (rule R10).
pub const PROTOCOL_CRATES: [&str; 7] =
    ["rlp", "enode", "kad", "discv4", "rlpx", "devp2p", "ethwire"];

/// Upper layers the protocol crates must never reach (rule R10).
pub const UPPER_LAYERS: [&str; 3] = ["netsim", "nodefinder", "bench"];

/// Every workspace member under `crates/` (the obs import check and the
/// layering-matrix test key on this list).
pub const WORKSPACE_CRATES: [&str; 17] = [
    "adversary",
    "analysis",
    "bench",
    "conformance",
    "detlint",
    "devp2p",
    "discv4",
    "enode",
    "ethcrypto",
    "ethpop",
    "ethwire",
    "kad",
    "netsim",
    "nodefinder",
    "obs",
    "rlp",
    "rlpx",
];

/// Where a dependency declaration points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepSource {
    /// Repo-relative directory the `path` resolves to.
    Path(String),
    /// `workspace = true`, not yet resolved against the root table.
    Workspace,
    /// Bare or `version = …` registry dependency.
    Registry,
    Git,
    Unknown,
}

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    pub name: String,
    /// 1-based line of the declaration in its `Cargo.toml`.
    pub line: usize,
    /// Declared under `[dev-dependencies]`.
    pub dev: bool,
    pub source: DepSource,
}

/// One workspace member.
#[derive(Debug, Clone)]
pub struct CrateNode {
    pub name: String,
    /// Repo-relative directory (`crates/rlp`), empty for the root package.
    pub dir: String,
    /// Repo-relative manifest path.
    pub manifest: String,
    pub deps: Vec<Dep>,
}

/// The crate-level dependency graph of the workspace.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceGraph {
    /// Keyed by package name.
    pub crates: BTreeMap<String, CrateNode>,
    /// Repo-relative dir → package name, for resolving path deps.
    dir_index: BTreeMap<String, String>,
}

impl WorkspaceGraph {
    /// Build from `(repo-relative manifest path, source)` pairs, as
    /// collected by the workspace scanner.
    pub fn from_manifests(manifests: &[(String, String)]) -> WorkspaceGraph {
        let mut graph = WorkspaceGraph::default();
        let mut workspace_deps: BTreeMap<String, DepSource> = BTreeMap::new();
        for (path, source) in manifests {
            let parsed = parse_manifest(path, source);
            for dep in &parsed.workspace_deps {
                workspace_deps.insert(dep.name.clone(), dep.source.clone());
            }
            if let Some(name) = parsed.package_name {
                let dir = match path.rfind('/') {
                    Some(idx) => path[..idx].to_string(),
                    None => String::new(),
                };
                graph.dir_index.insert(dir.clone(), name.clone());
                graph.crates.insert(
                    name.clone(),
                    CrateNode {
                        name,
                        dir,
                        manifest: path.clone(),
                        deps: parsed.deps,
                    },
                );
            }
        }
        // Resolve `workspace = true` inheritance now that the root table is
        // fully known.
        for node in graph.crates.values_mut() {
            for dep in &mut node.deps {
                if dep.source == DepSource::Workspace {
                    if let Some(inherited) = workspace_deps.get(&dep.name) {
                        dep.source = inherited.clone();
                    }
                }
            }
        }
        graph
    }

    /// Builder for synthetic graphs in tests.
    pub fn add_crate(&mut self, name: &str, dir: &str) {
        self.dir_index.insert(dir.to_string(), name.to_string());
        self.crates.insert(
            name.to_string(),
            CrateNode {
                name: name.to_string(),
                dir: dir.to_string(),
                manifest: if dir.is_empty() {
                    "Cargo.toml".to_string()
                } else {
                    format!("{dir}/Cargo.toml")
                },
                deps: Vec::new(),
            },
        );
    }

    /// Builder for synthetic edges in tests: a path dep from `from` to the
    /// directory of `to`.
    pub fn add_path_dep(&mut self, from: &str, to: &str, line: usize, dev: bool) {
        let to_dir = self
            .crates
            .get(to)
            .map(|n| n.dir.clone())
            .unwrap_or_default();
        if let Some(node) = self.crates.get_mut(from) {
            node.deps.push(Dep {
                name: to.to_string(),
                line,
                dev,
                source: DepSource::Path(to_dir),
            });
        }
    }

    /// The in-workspace crate a dependency resolves to, if any: by resolved
    /// path directory first, by package name as a fallback.
    pub fn resolve_dep(&self, dep: &Dep) -> Option<&CrateNode> {
        if let DepSource::Path(dir) = &dep.source {
            if let Some(name) = self.dir_index.get(dir) {
                return self.crates.get(name);
            }
        }
        self.crates.get(&dep.name)
    }

    /// In-workspace dependency edges of `name` (dev edges included).
    pub fn resolved_deps(&self, name: &str) -> Vec<(&CrateNode, &Dep)> {
        let Some(node) = self.crates.get(name) else {
            return Vec::new();
        };
        node.deps
            .iter()
            .filter_map(|dep| self.resolve_dep(dep).map(|target| (target, dep)))
            .collect()
    }

    /// Dependency cycles among workspace crates (non-dev edges; cargo
    /// permits dev-dependency cycles). Each cycle is reported once, as the
    /// path of crate names with the repeated crate first and last.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            InStack,
            Done,
        }
        fn visit(
            graph: &WorkspaceGraph,
            name: &str,
            state: &mut BTreeMap<String, State>,
            stack: &mut Vec<String>,
            cycles: &mut Vec<Vec<String>>,
        ) {
            state.insert(name.to_string(), State::InStack);
            stack.push(name.to_string());
            for (target, dep) in graph.resolved_deps(name) {
                if dep.dev {
                    continue;
                }
                match state.get(target.name.as_str()) {
                    Some(State::InStack) => {
                        let from = stack.iter().position(|n| n == &target.name).unwrap_or(0);
                        let mut cycle = stack[from..].to_vec();
                        cycle.push(target.name.clone());
                        cycles.push(cycle);
                    }
                    None => {
                        visit(graph, &target.name, state, stack, cycles);
                    }
                    Some(State::Done) => {}
                }
            }
            stack.pop();
            state.insert(name.to_string(), State::Done);
        }

        let mut state: BTreeMap<String, State> = BTreeMap::new();
        let mut cycles = Vec::new();
        for name in self.crates.keys() {
            if !matches!(state.get(name.as_str()), Some(State::Done)) {
                let mut stack = Vec::new();
                visit(self, name, &mut state, &mut stack, &mut cycles);
            }
        }
        cycles
    }

    /// R10's manifest half: protocol crates must not depend on the upper
    /// layers, and obs must not depend on any `crates/` member.
    pub fn layering_violations(&self) -> Vec<Violation> {
        let mut violations = Vec::new();
        for &protocol in &PROTOCOL_CRATES {
            let Some(node) = self.crates.get(protocol) else {
                continue;
            };
            for (target, dep) in self.resolved_deps(protocol) {
                if UPPER_LAYERS.contains(&target.name.as_str()) {
                    violations.push(Violation {
                        rule: Rule::R10,
                        code: "R10.layer_dep",
                        path: node.manifest.clone(),
                        line: dep.line,
                        message: format!(
                            "protocol crate `{protocol}` depends on upper layer \
                             `{}` (see --explain R10)",
                            target.name
                        ),
                    });
                }
            }
        }
        if let Some(node) = self.crates.get("obs") {
            for (target, dep) in self.resolved_deps("obs") {
                if target.dir.starts_with("crates/") {
                    violations.push(Violation {
                        rule: Rule::R10,
                        code: "R10.obs_dep",
                        path: node.manifest.clone(),
                        line: dep.line,
                        message: format!(
                            "obs must depend on nothing in-workspace, found `{}` \
                             (see --explain R10)",
                            target.name
                        ),
                    });
                }
            }
        }
        violations
    }
}

struct ParsedManifest {
    package_name: Option<String>,
    deps: Vec<Dep>,
    /// Entries of a `[workspace.dependencies]` table (root manifest only).
    workspace_deps: Vec<Dep>,
}

/// Extract the package name and dependency edges from one manifest. This is
/// a structural reader, not a validator — R6 judges the entries separately.
fn parse_manifest(path: &str, source: &str) -> ParsedManifest {
    let manifest_dir = match path.rfind('/') {
        Some(idx) => &path[..idx],
        None => "",
    };

    #[derive(PartialEq)]
    enum Section {
        Other,
        Package,
        Deps {
            dev: bool,
            workspace_table: bool,
        },
        SingleDep {
            name: String,
            dev: bool,
            workspace_table: bool,
        },
    }
    let mut section = Section::Other;
    let mut parsed = ParsedManifest {
        package_name: None,
        deps: Vec::new(),
        workspace_deps: Vec::new(),
    };

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let name = line.trim_start_matches('[').trim_end_matches(']').trim();
            section = if name == "package" {
                Section::Package
            } else if name.ends_with("dependencies") {
                Section::Deps {
                    dev: name.contains("dev-dependencies"),
                    workspace_table: name.starts_with("workspace."),
                }
            } else if let Some((head, dep)) = name.rsplit_once('.') {
                if head.ends_with("dependencies") {
                    Section::SingleDep {
                        name: dep.trim_matches('"').to_string(),
                        dev: head.contains("dev-dependencies"),
                        workspace_table: head.starts_with("workspace."),
                    }
                } else {
                    Section::Other
                }
            } else {
                Section::Other
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        match &section {
            Section::Other => {}
            Section::Package => {
                if key == "name" {
                    parsed.package_name = Some(value.trim_matches('"').to_string());
                }
            }
            Section::Deps {
                dev,
                workspace_table,
            } => {
                let (dep_name, sub_key) = match key.split_once('.') {
                    Some((name, sub)) => (name.trim_matches('"'), Some(sub.trim())),
                    None => (key.trim_matches('"'), None),
                };
                let source = classify_source(manifest_dir, sub_key, value);
                push_dep(
                    &mut parsed,
                    *workspace_table,
                    dep_name.to_string(),
                    line_no,
                    *dev,
                    source,
                );
            }
            Section::SingleDep {
                name,
                dev,
                workspace_table,
            } => {
                // Multi-line table: only source-defining keys create/refine
                // the edge; the first one seen wins.
                if matches!(key, "workspace" | "path" | "git" | "version") {
                    let source = classify_source(manifest_dir, Some(key), value);
                    push_dep(
                        &mut parsed,
                        *workspace_table,
                        name.clone(),
                        line_no,
                        *dev,
                        source,
                    );
                }
            }
        }
    }
    parsed
}

fn push_dep(
    parsed: &mut ParsedManifest,
    workspace_table: bool,
    name: String,
    line: usize,
    dev: bool,
    source: DepSource,
) {
    let out = if workspace_table {
        &mut parsed.workspace_deps
    } else {
        &mut parsed.deps
    };
    if let Some(existing) = out.iter_mut().find(|d| d.name == name) {
        // Refine an Unknown edge from an earlier key of the same table.
        if existing.source == DepSource::Unknown {
            existing.source = source;
        }
        return;
    }
    out.push(Dep {
        name,
        line,
        dev,
        source,
    });
}

fn classify_source(manifest_dir: &str, sub_key: Option<&str>, value: &str) -> DepSource {
    match sub_key {
        Some("workspace") => DepSource::Workspace,
        Some("path") => DepSource::Path(normalize_path(manifest_dir, value.trim_matches('"'))),
        Some("git") => DepSource::Git,
        Some("version") => DepSource::Registry,
        Some(_) => DepSource::Unknown,
        None => {
            if value.starts_with('{') {
                let table = value.trim_start_matches('{').trim_end_matches('}');
                for part in split_inline(table) {
                    let Some((key, val)) = part.split_once('=') else {
                        continue;
                    };
                    let (key, val) = (key.trim(), val.trim());
                    match key {
                        "workspace" => return DepSource::Workspace,
                        "path" => {
                            return DepSource::Path(normalize_path(
                                manifest_dir,
                                val.trim_matches('"'),
                            ))
                        }
                        "git" => return DepSource::Git,
                        "version" => return DepSource::Registry,
                        _ => {}
                    }
                }
                DepSource::Unknown
            } else {
                DepSource::Registry
            }
        }
    }
}

/// Normalize `manifest_dir` + `rel` into a repo-relative directory;
/// components that escape the root are clamped (R6 rejects them anyway).
fn normalize_path(manifest_dir: &str, rel: &str) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let rel = rel.replace('\\', "/");
    for component in manifest_dir.split('/').chain(rel.split('/')) {
        match component {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    parts.join("/")
}

/// Drop a trailing `# comment` (respecting quoted strings).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split an inline TOML table body on commas outside quotes/brackets.
fn split_inline(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut depth = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => depth += 1,
            ']' if !in_string => depth = depth.saturating_sub(1),
            ',' if !in_string && depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_edges_resolve_paths_and_workspace_inheritance() {
        let root = "\
[workspace]
members = [\"crates/*\"]

[workspace.dependencies]
rand = { path = \"vendor/rand\" }

[package]
name = \"root-pkg\"

[dependencies]
rlp = { path = \"crates/rlp\" }
";
        let rlp = "\
[package]
name = \"rlp\"

[dependencies]
bytes = { path = \"../../vendor/bytes\" }
rand.workspace = true
";
        let graph = WorkspaceGraph::from_manifests(&[
            ("Cargo.toml".to_string(), root.to_string()),
            ("crates/rlp/Cargo.toml".to_string(), rlp.to_string()),
        ]);
        let rlp_node = graph.crates.get("rlp").expect("rlp parsed");
        assert_eq!(rlp_node.dir, "crates/rlp");
        let bytes = rlp_node.deps.iter().find(|d| d.name == "bytes").unwrap();
        assert_eq!(bytes.source, DepSource::Path("vendor/bytes".to_string()));
        let rand = rlp_node.deps.iter().find(|d| d.name == "rand").unwrap();
        assert_eq!(rand.source, DepSource::Path("vendor/rand".to_string()));
        // root-pkg's dep on rlp resolves to the workspace member.
        let edges = graph.resolved_deps("root-pkg");
        assert!(edges.iter().any(|(t, _)| t.name == "rlp"));
    }

    #[test]
    fn layering_flags_protocol_to_upper_edges() {
        let mut graph = WorkspaceGraph::default();
        graph.add_crate("rlp", "crates/rlp");
        graph.add_crate("netsim", "crates/netsim");
        graph.add_path_dep("rlp", "netsim", 7, false);
        let violations = graph.layering_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].code, "R10.layer_dep");
        assert_eq!(violations[0].path, "crates/rlp/Cargo.toml");
        assert_eq!(violations[0].line, 7);
    }

    #[test]
    fn obs_must_not_depend_in_workspace() {
        let mut graph = WorkspaceGraph::default();
        graph.add_crate("obs", "crates/obs");
        graph.add_crate("rlp", "crates/rlp");
        graph.add_path_dep("obs", "rlp", 3, false);
        let violations = graph.layering_violations();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].code, "R10.obs_dep");
    }

    #[test]
    fn cycle_detection_reports_the_loop_and_ignores_dev_edges() {
        let mut graph = WorkspaceGraph::default();
        graph.add_crate("a", "crates/a");
        graph.add_crate("b", "crates/b");
        graph.add_crate("c", "crates/c");
        graph.add_path_dep("a", "b", 1, false);
        graph.add_path_dep("b", "c", 1, false);
        graph.add_path_dep("c", "a", 1, false);
        let cycles = graph.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].first(), cycles[0].last());
        assert_eq!(cycles[0].len(), 4);

        // A dev-dependency back-edge is not a cycle (cargo allows it).
        let mut graph = WorkspaceGraph::default();
        graph.add_crate("a", "crates/a");
        graph.add_crate("b", "crates/b");
        graph.add_path_dep("a", "b", 1, false);
        graph.add_path_dep("b", "a", 1, true);
        assert!(graph.cycles().is_empty());
    }
}
