//! Semantic rules over the item table: R8 (shared mutable state), R9 (RNG
//! stream discipline), R10's `use`-import half, R11 (shard-state field
//! audit), R12 (hot-path allocation lint) and R13 (hot-path fat-keyed
//! ordered maps).
//!
//! These rules see structure — declarations, fn bodies, field types — where
//! R1–R7 see tokens. They still over-approximate deliberately: R9's
//! dataflow is a linear walk of `let` bindings, not an SSA graph, and R11's
//! type resolution is by unique name, not by import resolution. Both err on
//! the side of asking for an explicit justification.

use crate::graph::{PROTOCOL_CRATES, UPPER_LAYERS, WORKSPACE_CRATES};
use crate::parser::{FnDef, ItemTable, Tok};
use crate::rules::Rule;
use crate::scan::{Allowances, Violation};
use std::collections::BTreeSet;

/// Types with interior mutability through a shared reference: a `static`
/// holding one is writable global state (rule R8).
const INTERIOR_MUT: [&str; 9] = [
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "LazyCell",
    "Mutex",
    "RwLock",
    "OnceLock",
    "LazyLock",
];

/// The single-threaded subset flagged inside `thread_local!` blocks.
const CELL_LIKE: [&str; 5] = ["Cell", "RefCell", "UnsafeCell", "OnceCell", "LazyCell"];

/// Field types that must not appear in `// shard-state` types (rule R11).
const SHARD_BANNED: [&str; 3] = ["Rc", "RefCell", "UnsafeCell"];

/// RNG constructors whose argument R9 traces to a parameter.
const SEEDED_CTORS: [&str; 2] = ["seed_from_u64", "from_seed"];

/// True for `crates/<name>/src/…` and the root package's `src/…` — the
/// library code the parallelism rules govern. Vendored stand-ins, tests/,
/// benches/ and examples/ directories fall outside.
pub fn in_library_src(path: &str) -> bool {
    match path.strip_prefix("crates/") {
        Some(rest) => match rest.split_once('/') {
            Some((_, rest)) => rest.starts_with("src/"),
            None => false,
        },
        None => path.starts_with("src/"),
    }
}

/// Binary targets and `main.rs` are experiment roots: they pin concrete
/// seeds on purpose (rule R9 exempts them).
fn is_experiment_root(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("src/main.rs")
}

fn interior_marker(ty: &[String]) -> Option<&str> {
    ty.iter().find_map(|word| {
        INTERIOR_MUT
            .iter()
            .find(|&&m| m == word)
            .copied()
            .or_else(|| {
                if word.starts_with("Atomic") && word.len() > "Atomic".len() {
                    Some("Atomic*")
                } else {
                    None
                }
            })
    })
}

fn cell_marker(ty: &[String]) -> Option<&str> {
    ty.iter()
        .find_map(|word| CELL_LIKE.iter().find(|&&m| m == word).copied())
}

/// Render type tokens back into a readable string (`Rc < [ u8 ] >` →
/// `Rc<[u8]>`): spaces only between adjacent words and after commas.
pub fn render_type(ty: &[String]) -> String {
    let mut out = String::new();
    let mut prev_word = false;
    let mut prev_comma = false;
    for tok in ty {
        let word = tok
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if (word && prev_word) || prev_comma {
            out.push(' ');
        }
        out.push_str(tok);
        prev_word = word;
        prev_comma = tok == ",";
    }
    out
}

// ---------------------------------------------------------------------------
// R8: shared mutable state
// ---------------------------------------------------------------------------

pub fn check_r8(
    path: &str,
    table: &ItemTable,
    allowances: &Allowances,
    in_test: &dyn Fn(usize) -> bool,
    violations: &mut Vec<Violation>,
) {
    if !in_library_src(path) {
        return;
    }
    let in_obs = path.starts_with("crates/obs/");
    for decl in &table.statics {
        if in_test(decl.pos) {
            continue;
        }
        let allowed = allowances.allows(decl.line, Rule::R8);
        if decl.is_mut {
            if !allowed {
                violations.push(Violation {
                    rule: Rule::R8,
                    code: "R8.static_mut",
                    path: path.to_string(),
                    line: decl.line,
                    message: format!(
                        "`static mut {}` is shared mutable state; a sharded \
                         netsim cannot replay it deterministically (see \
                         --explain R8)",
                        decl.name
                    ),
                });
            }
            continue;
        }
        if decl.thread_local {
            if in_obs {
                // The observability recorder is thread-local by design:
                // per-shard recorders merge at barrier epochs.
                continue;
            }
            if let Some(marker) = cell_marker(&decl.ty) {
                if !allowed {
                    violations.push(Violation {
                        rule: Rule::R8,
                        code: "R8.thread_local_cell",
                        path: path.to_string(),
                        line: decl.line,
                        message: format!(
                            "`thread_local! {}: {}` holds `{marker}` outside \
                             crates/obs/; per-shard copies fork silently (see \
                             --explain R8)",
                            decl.name,
                            render_type(&decl.ty)
                        ),
                    });
                }
            }
        } else if let Some(marker) = interior_marker(&decl.ty) {
            if !allowed {
                violations.push(Violation {
                    rule: Rule::R8,
                    code: "R8.interior_mut",
                    path: path.to_string(),
                    line: decl.line,
                    message: format!(
                        "`static {}: {}` has interior mutability (`{marker}`); \
                         shared mutable state (see --explain R8)",
                        decl.name,
                        render_type(&decl.ty)
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R9: RNG stream discipline
// ---------------------------------------------------------------------------

pub fn check_r9(
    path: &str,
    table: &ItemTable,
    toks: &[Tok],
    allowances: &Allowances,
    in_test: &dyn Fn(usize) -> bool,
    violations: &mut Vec<Violation>,
) {
    if !in_library_src(path) || is_experiment_root(path) {
        return;
    }
    for fn_def in &table.fns {
        let Some(body) = fn_def.body else {
            continue;
        };
        if in_test(fn_def.pos) || in_test(body.pos) {
            continue;
        }
        let seed_ok = seed_ok_idents(fn_def, toks, body.tok_lo, body.tok_hi);
        let mut i = body.tok_lo;
        while i < body.tok_hi {
            let t = &toks[i];
            if t.word
                && SEEDED_CTORS.contains(&t.text.as_str())
                && is_punct(toks, i + 1, '(')
                && word_before(toks, i) != Some("fn")
            {
                let end = skip_balanced(toks, i + 1, body.tok_hi, '(', ')');
                let args: Vec<&Tok> = toks[i + 2..end.saturating_sub(1)].iter().collect();
                let derived = args
                    .iter()
                    .any(|a| a.word && seed_ok.contains(a.text.as_str()));
                if !derived && !allowances.allows(t.line, Rule::R9) {
                    let ambient = args.iter().find(|a| {
                        a.word
                            && a.text
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_ascii_lowercase())
                    });
                    match ambient {
                        Some(arg) => violations.push(Violation {
                            rule: Rule::R9,
                            code: "R9.ambient_seed",
                            path: path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}` seed `{}` does not derive from a parameter \
                                 of `{}`; thread it from SimConfig (see \
                                 --explain R9)",
                                t.text, arg.text, fn_def.name
                            ),
                        }),
                        None => violations.push(Violation {
                            rule: Rule::R9,
                            code: "R9.literal_seed",
                            path: path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}` pins a literal/constant seed inside `{}`; \
                                 library code must take the seed as a parameter \
                                 (see --explain R9)",
                                t.text, fn_def.name
                            ),
                        }),
                    }
                }
                i = end;
                continue;
            }
            i += 1;
        }
    }
}

/// The set of identifiers known to derive from the fn's parameters: the
/// parameters themselves (plus `self`), `let` bindings whose right-hand
/// side mentions a derived identifier (processed in order), and closure
/// parameters.
fn seed_ok_idents(fn_def: &FnDef, toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut ok: BTreeSet<String> = fn_def
        .params
        .iter()
        .flat_map(|p| p.names.iter().cloned())
        .collect();
    ok.insert("self".to_string());

    // Pass 1: closure parameter lists anywhere in the body. This runs
    // before the `let` pass because a closure usually sits on a `let` RHS
    // (`let seal = |plain, seed| { … };`) whose scan consumes it whole.
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if !t.word && t.text == "|" && !is_punct(toks, i + 1, '|') {
            let mut j = i + 1;
            let mut names = Vec::new();
            let mut closed = false;
            while j < hi && j - i < 64 {
                let p = &toks[j];
                if p.word {
                    names.push(p.text.clone());
                } else {
                    match p.text.as_str() {
                        "|" => {
                            closed = true;
                            break;
                        }
                        "," | ":" | "&" | "(" | ")" | "[" | "]" | "<" | ">" | "_" | "'" => {}
                        _ => break,
                    }
                }
                j += 1;
            }
            if closed {
                ok.extend(names.into_iter().filter(|n| n != "mut" && n != "ref"));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }

    // Pass 2: `let` derivation chains, in statement order.
    let mut i = lo;
    while i < hi {
        let t = &toks[i];
        if t.word && t.text == "let" {
            // Pattern words until a top-level `=` (or `;` for `let x;`).
            let mut j = i + 1;
            let mut depth = 0isize;
            let mut pattern = Vec::new();
            while j < hi {
                let p = &toks[j];
                if p.word {
                    if p.text != "mut" && p.text != "ref" {
                        pattern.push(p.text.clone());
                    }
                } else {
                    match p.text.chars().next().unwrap_or(' ') {
                        '(' | '[' | '<' => depth += 1,
                        ')' | ']' => depth -= 1,
                        '>' if !(j > 0 && is_punct(toks, j - 1, '-')) => depth -= 1,
                        '=' if depth <= 0 && !is_punct(toks, j + 1, '=') => break,
                        ';' | '{' if depth <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            // RHS until the statement ends; if it mentions a derived
            // identifier, the whole pattern becomes derived.
            let mut derived = false;
            let mut depth = 0isize;
            while j < hi {
                let p = &toks[j];
                if p.word && ok.contains(p.text.as_str()) {
                    derived = true;
                }
                if !p.word {
                    match p.text.chars().next().unwrap_or(' ') {
                        '(' | '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        ';' if depth <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if derived {
                ok.extend(pattern);
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    ok
}

// ---------------------------------------------------------------------------
// R10: use-import half
// ---------------------------------------------------------------------------

pub fn check_r10_uses(path: &str, table: &ItemTable, violations: &mut Vec<Violation>) {
    let Some(rest) = path.strip_prefix("crates/") else {
        return;
    };
    let Some((crate_name, rest)) = rest.split_once('/') else {
        return;
    };
    if !rest.starts_with("src/") {
        return;
    }
    if PROTOCOL_CRATES.contains(&crate_name) {
        for use_decl in &table.uses {
            if UPPER_LAYERS.contains(&use_decl.root.as_str()) {
                violations.push(Violation {
                    rule: Rule::R10,
                    code: "R10.layer_use",
                    path: path.to_string(),
                    line: use_decl.line,
                    message: format!(
                        "protocol crate `{crate_name}` imports upper layer \
                         `{}` (see --explain R10)",
                        use_decl.root
                    ),
                });
            }
        }
    }
    if crate_name == "obs" {
        for use_decl in &table.uses {
            // A bin target importing its own crate's lib (`use obs::…`
            // in src/bin/obsctl.rs) is self-reference, not layering.
            if use_decl.root == "obs" {
                continue;
            }
            if WORKSPACE_CRATES.contains(&use_decl.root.as_str()) {
                violations.push(Violation {
                    rule: Rule::R10,
                    code: "R10.obs_use",
                    path: path.to_string(),
                    line: use_decl.line,
                    message: format!(
                        "obs must import nothing in-workspace, found `{}` \
                         (see --explain R10)",
                        use_decl.root
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// R11: shard-state field audit + inventory
// ---------------------------------------------------------------------------

/// One file's parsed items plus its annotation allowances, as collected by
/// the scanner; the R11 pass works across all of them.
#[derive(Debug)]
pub struct FileItems<'a> {
    pub path: &'a str,
    pub table: &'a ItemTable,
    pub allowances: &'a Allowances,
}

/// Inventory entry: a `// shard-state` type and the audit of its fields.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardType {
    pub path: String,
    pub line: usize,
    pub name: String,
    pub fields: Vec<ShardField>,
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShardField {
    pub name: String,
    pub ty: String,
    pub line: usize,
    /// The banned construct reached through this field, if any.
    pub banned: Option<String>,
    /// `Type.field: ty` chain when the construct is inherited from an
    /// in-workspace field type rather than named directly.
    pub via: Option<String>,
    /// A `// detlint: allow(R11)` justification covers the construct
    /// (either on this field or where the inner field declares it).
    pub justified: bool,
}

struct Banned {
    marker: String,
    via: Option<String>,
    justified: bool,
}

/// Audit every `// shard-state` type across `files`; returns the inventory
/// (all annotated types, flagged or clean) and pushes violations for
/// unjustified banned fields.
pub fn check_r11(files: &[FileItems<'_>], violations: &mut Vec<Violation>) -> Vec<ShardType> {
    let mut inventory = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        for ty in &file.table.types {
            if !ty.shard_state {
                continue;
            }
            let mut fields = Vec::new();
            for field in &ty.fields {
                let mut visited = BTreeSet::new();
                visited.insert((file_idx, ty.name.clone()));
                let banned = field_banned(files, file_idx, field, &mut visited);
                let locally_justified = file.allowances.allows(field.line, Rule::R11);
                let (marker, via, justified) = match banned {
                    Some(b) => (Some(b.marker), b.via, b.justified || locally_justified),
                    None => (None, None, false),
                };
                if let Some(marker) = &marker {
                    if !justified {
                        let via_note = via
                            .as_deref()
                            .map(|v| format!(" via `{v}`"))
                            .unwrap_or_default();
                        violations.push(Violation {
                            rule: Rule::R11,
                            code: "R11.shard_field",
                            path: file.path.to_string(),
                            line: field.line,
                            message: format!(
                                "shard-state type `{}` field `{}: {}` contains \
                                 `{marker}`{via_note}; not safe to move across \
                                 shard boundaries (see --explain R11)",
                                ty.name,
                                field.name,
                                render_type(&field.ty)
                            ),
                        });
                    }
                }
                fields.push(ShardField {
                    name: field.name.clone(),
                    ty: render_type(&field.ty),
                    line: field.line,
                    banned: marker,
                    via,
                    justified,
                });
            }
            inventory.push(ShardType {
                path: file.path.to_string(),
                line: ty.line,
                name: ty.name.clone(),
                fields,
            });
        }
    }
    inventory.sort();
    inventory
}

/// Does `field`'s type reach a banned construct, directly or through an
/// in-workspace type? Resolution is by unique type name, same-crate first.
fn field_banned(
    files: &[FileItems<'_>],
    file_idx: usize,
    field: &crate::parser::FieldDef,
    visited: &mut BTreeSet<(usize, String)>,
) -> Option<Banned> {
    // Direct: the type tokens name a banned container or a raw pointer.
    for (i, word) in field.ty.iter().enumerate() {
        if SHARD_BANNED.contains(&word.as_str()) {
            return Some(Banned {
                marker: word.clone(),
                via: None,
                justified: false,
            });
        }
        if word == "*"
            && field
                .ty
                .get(i + 1)
                .is_some_and(|w| w == "const" || w == "mut")
        {
            return Some(Banned {
                marker: format!("*{}", field.ty[i + 1]),
                via: None,
                justified: false,
            });
        }
    }
    // Transitive: resolve capitalized type words in-workspace and recurse.
    for word in &field.ty {
        if !word.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            continue;
        }
        let Some((target_idx, target_ty)) = resolve_type(files, file_idx, word) else {
            continue;
        };
        let key = (target_idx, target_ty.name.clone());
        if !visited.insert(key) {
            continue;
        }
        for inner in &target_ty.fields {
            if let Some(banned) = field_banned(files, target_idx, inner, visited) {
                let inner_justified =
                    banned.justified || files[target_idx].allowances.allows(inner.line, Rule::R11);
                let chain = format!(
                    "{}.{}: {}",
                    target_ty.name,
                    inner.name,
                    render_type(&inner.ty)
                );
                return Some(Banned {
                    marker: banned.marker,
                    via: Some(banned.via.unwrap_or(chain)),
                    justified: inner_justified,
                });
            }
        }
    }
    None
}

/// Find the definition of `name`: same crate first, then a unique match
/// anywhere in the workspace. Ambiguous cross-crate names stay unresolved
/// (silently tolerated — the over-approximation R11 accepts).
fn resolve_type<'a>(
    files: &'a [FileItems<'_>],
    from_idx: usize,
    name: &str,
) -> Option<(usize, &'a crate::parser::TypeDef)> {
    let crate_dir = |path: &str| -> String {
        match path.strip_prefix("crates/") {
            Some(rest) => match rest.split_once('/') {
                Some((krate, _)) => format!("crates/{krate}/"),
                None => String::new(),
            },
            None => String::new(),
        }
    };
    let from_crate = crate_dir(files[from_idx].path);
    let mut matches: Vec<(usize, &crate::parser::TypeDef)> = Vec::new();
    for (idx, file) in files.iter().enumerate() {
        for ty in &file.table.types {
            if ty.name == name {
                matches.push((idx, ty));
            }
        }
    }
    let same_crate: Vec<&(usize, &crate::parser::TypeDef)> = matches
        .iter()
        .filter(|(idx, _)| !from_crate.is_empty() && crate_dir(files[*idx].path) == from_crate)
        .collect();
    match same_crate.len() {
        1 => Some(*same_crate[0]),
        0 if matches.len() == 1 => Some(matches[0]),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// R12: hot-path allocation lint
// ---------------------------------------------------------------------------

pub fn check_r12(
    path: &str,
    table: &ItemTable,
    toks: &[Tok],
    allowances: &Allowances,
    violations: &mut Vec<Violation>,
) {
    for fn_def in &table.fns {
        if !fn_def.hotpath {
            continue;
        }
        let Some(body) = fn_def.body else {
            continue;
        };
        let payload_idents = payload_idents(fn_def, toks, body.tok_lo, body.tok_hi);
        let mut push = |code: &'static str, line: usize, message: String| {
            if !allowances.allows(line, Rule::R12) {
                violations.push(Violation {
                    rule: Rule::R12,
                    code,
                    path: path.to_string(),
                    line,
                    message,
                });
            }
        };
        let mut i = body.tok_lo;
        while i < body.tok_hi {
            let t = &toks[i];
            if t.word {
                match t.text.as_str() {
                    "format" if is_punct(toks, i + 1, '!') => {
                        push(
                            "R12.format",
                            t.line,
                            format!(
                                "`format!` allocates in hotpath fn `{}` (see \
                                 --explain R12)",
                                fn_def.name
                            ),
                        );
                    }
                    "vec" if is_punct(toks, i + 1, '!') => {
                        push(
                            "R12.vec_macro",
                            t.line,
                            format!(
                                "`vec![…]` allocates in hotpath fn `{}` (see \
                                 --explain R12)",
                                fn_def.name
                            ),
                        );
                    }
                    "Vec"
                        if is_punct(toks, i + 1, ':')
                            && is_punct(toks, i + 2, ':')
                            && word_at(toks, i + 3) == Some("new") =>
                    {
                        push(
                            "R12.vec_new",
                            t.line,
                            format!(
                                "`Vec::new()` allocates in hotpath fn `{}`; reuse \
                                 a buffer (see --explain R12)",
                                fn_def.name
                            ),
                        );
                    }
                    "to_string" if preceded_by_dot(toks, i) && is_punct(toks, i + 1, '(') => {
                        push(
                            "R12.to_string",
                            t.line,
                            format!(
                                "`.to_string()` allocates in hotpath fn `{}` \
                                 (see --explain R12)",
                                fn_def.name
                            ),
                        );
                    }
                    "clone" if preceded_by_dot(toks, i) && is_punct(toks, i + 1, '(') => {
                        let receiver = (i >= 2)
                            .then(|| &toks[i - 2])
                            .filter(|r| r.word)
                            .map(|r| r.text.clone());
                        let exempt = receiver
                            .as_deref()
                            .is_some_and(|r| payload_idents.contains(r));
                        if !exempt {
                            push(
                                "R12.clone",
                                t.line,
                                format!(
                                    "`.clone()` on `{}` (not a known Payload) in \
                                     hotpath fn `{}` (see --explain R12)",
                                    receiver.as_deref().unwrap_or("<expr>"),
                                    fn_def.name
                                ),
                            );
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
}

/// Fat key types whose BTree comparisons are multi-word memcmp chains on
/// a per-event path (rule R13): the 64-byte node id and the transport
/// address. Intern to `CompactId` / pack to a scalar instead.
const FAT_KEYS: [&str; 2] = ["NodeId", "HostAddr"];

/// R13: no `BTreeMap`/`BTreeSet` keyed by `NodeId`/`HostAddr` inside
/// `// hotpath` fns. Every probe of such a map walks a comparison chain
/// of fat-key memcmps; the hot tables were converted to compact-id dense
/// layouts in PR 9 and this rule keeps the fat-keyed form from creeping
/// back. The `// hotpath: fat-key -- <why>` marker variant waives the
/// rule for a whole fn; `// detlint: allow(R13) -- <why>` waives one line.
pub fn check_r13(
    path: &str,
    table: &ItemTable,
    toks: &[Tok],
    allowances: &Allowances,
    violations: &mut Vec<Violation>,
) {
    for fn_def in &table.fns {
        if !fn_def.hotpath || fn_def.hotpath_fatkey {
            continue;
        }
        let Some(body) = fn_def.body else {
            continue;
        };
        let mut i = body.tok_lo;
        while i < body.tok_hi {
            if let Some(container @ ("BTreeMap" | "BTreeSet")) = word_at(toks, i) {
                if is_punct(toks, i + 1, '<') {
                    if let Some(key) = first_type_arg(toks, i + 2, body.tok_hi) {
                        if FAT_KEYS.contains(&key) {
                            let line = toks[i].line;
                            if !allowances.allows(line, Rule::R13) {
                                violations.push(Violation {
                                    rule: Rule::R13,
                                    code: match container {
                                        "BTreeMap" => "R13.btreemap",
                                        _ => "R13.btreeset",
                                    },
                                    path: path.to_string(),
                                    line,
                                    message: format!(
                                        "`{container}<{key}, …>` in hotpath fn `{}` probes \
                                         fat keys; intern to CompactId (see --explain R13)",
                                        fn_def.name
                                    ),
                                });
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }
}

/// The last path segment of the first type argument starting at `i` (just
/// past the `<`): skips `&` borrows and `path::` qualifiers, so
/// `BTreeMap<enode::NodeId, u64>` resolves to `NodeId`.
fn first_type_arg(toks: &[Tok], mut i: usize, hi: usize) -> Option<&str> {
    while i < hi && is_punct(toks, i, '&') {
        i += 1;
    }
    let mut last = None;
    while i < hi {
        match word_at(toks, i) {
            Some(w) => {
                last = Some(w);
                i += 1;
            }
            None => break,
        }
        if is_punct(toks, i, ':') && is_punct(toks, i + 1, ':') {
            i += 2;
        } else {
            break;
        }
    }
    last
}

/// Identifiers known to hold a `Payload` (whose clone is a refcount bump):
/// parameters ascribed `Payload` and `let name: Payload = …` bindings.
fn payload_idents(fn_def: &FnDef, toks: &[Tok], lo: usize, hi: usize) -> BTreeSet<String> {
    let mut idents: BTreeSet<String> = fn_def
        .params
        .iter()
        .filter(|p| p.ty.iter().any(|w| w == "Payload"))
        .flat_map(|p| p.names.iter().cloned())
        .collect();
    let mut i = lo;
    while i < hi {
        if word_at(toks, i) == Some("let") {
            let mut j = i + 1;
            if word_at(toks, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = word_at(toks, j) {
                if is_punct(toks, j + 1, ':') {
                    let name = name.to_string();
                    let mut k = j + 2;
                    while k < hi && !is_punct(toks, k, '=') && !is_punct(toks, k, ';') {
                        if word_at(toks, k) == Some("Payload") {
                            idents.insert(name.clone());
                            break;
                        }
                        k += 1;
                    }
                }
            }
        }
        i += 1;
    }
    idents
}

// ---------------------------------------------------------------------------
// Token helpers (shared with the parser's conventions)
// ---------------------------------------------------------------------------

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| !t.word && t.text.starts_with(c))
}

fn word_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .and_then(|t| if t.word { Some(t.text.as_str()) } else { None })
}

fn word_before(toks: &[Tok], i: usize) -> Option<&str> {
    i.checked_sub(1).and_then(|j| word_at(toks, j))
}

fn preceded_by_dot(toks: &[Tok], i: usize) -> bool {
    i.checked_sub(1).is_some_and(|j| is_punct(toks, j, '.'))
}

fn skip_balanced(toks: &[Tok], mut i: usize, hi: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    while i < hi {
        if is_punct(toks, i, open) {
            depth += 1;
        } else if is_punct(toks, i, close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}
