//! The workspace scanner: walks every `.rs` and `Cargo.toml` under the
//! repository root and applies rules R1–R12.
//!
//! R1–R7 are token rules evaluated directly here; R8–R12 are semantic
//! rules evaluated in [`crate::semantic`] over the item table each file
//! parse produces, plus the workspace graph ([`crate::graph`]) built from
//! every manifest.

use crate::graph::WorkspaceGraph;
use crate::lexer::{self, LineComment};
use crate::parser::{self, ItemTable, Tok};
use crate::rules::Rule;
use crate::semantic::{self, FileItems, ShardType};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Files (by repo-relative prefix) where R1 wall-clock reads are sanctioned.
/// `obs::profile` is the self-profiler's wall-clock quarantine: the ONLY
/// first-party file allowed to read `Instant`. Its readings feed a side
/// table exported to `results/obs_profile.json` and never reach sim state
/// (`tests/observability.rs` proves byte-identical outputs with the
/// profiler on vs off). The allowlist is checked before the no-escape
/// ban below, so this entry punches a deliberate, single-file hole in it.
const R1_ALLOWLIST: [&str; 2] = ["vendor/criterion/", "crates/obs/src/profile.rs"];

/// Paths where R1 is a hard ban: the `allow(R1)` escape hatch is not
/// honored and the annotation itself is a violation. The observability
/// layer stamps every trace record with sim-time; a single wall-clock
/// read there would silently break byte-identical trace replay.
const R1_NO_ESCAPE: [&str; 1] = ["crates/obs/"];

/// Crates whose `src/` must be panic-free (rule R5): they decode bytes that
/// arrive from arbitrary remote peers.
const R5_SCOPE: [&str; 5] = [
    "crates/rlp/src/",
    "crates/discv4/src/",
    "crates/rlpx/src/",
    "crates/devp2p/src/",
    "crates/ethwire/src/",
];

/// Crates whose `src/` decoders fall under the EIP-8 lenient-decode policy
/// (rule R7): strict trailing-data rejection there must be justified. Same
/// crates as R5 plus enode, whose Endpoint/NodeRecord decoders are nested
/// inside every discv4 packet.
const R7_SCOPE: [&str; 6] = [
    "crates/rlp/src/",
    "crates/discv4/src/",
    "crates/rlpx/src/",
    "crates/devp2p/src/",
    "crates/ethwire/src/",
    "crates/enode/src/",
];

/// Registry-style dependency names that are approved because an offline
/// stand-in is vendored in-repo (rule R6).
const APPROVED_DEPS: [&str; 7] = [
    "rand",
    "proptest",
    "criterion",
    "bytes",
    "serde",
    "serde_derive",
    "serde_json",
];

/// Directory names never descended into.
const SKIP_DIRS: [&str; 2] = ["target", ".git"];

/// Repo-relative directory prefixes never scanned: detlint's own fixture
/// corpus deliberately violates every rule and must not contaminate the
/// workspace verdict.
const SKIP_PREFIXES: [&str; 1] = ["crates/detlint/fixtures"];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub rule: Rule,
    /// Stable diagnostic code (`R8.static_mut`), the identity CI and the
    /// baseline key on.
    pub code: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {} [{}]",
            self.rule, self.path, self.line, self.message, self.code
        )
    }
}

impl Violation {
    /// Baseline identity (format 2): code + path + message, line number
    /// excluded so unrelated edits above a baselined site don't
    /// un-baseline it.
    pub fn baseline_key(&self) -> String {
        format!("{} {} {}", self.code, self.path, self.message)
    }
}

/// A full workspace scan: the sorted violations plus the R11 shard-state
/// inventory.
#[derive(Debug, Clone)]
pub struct WorkspaceScan {
    pub violations: Vec<Violation>,
    pub shard_state: Vec<ShardType>,
}

/// One parsed `.rs` file, retained for the cross-file passes (R11's type
/// resolution needs every file's item table at once).
struct FileRecord {
    path: String,
    table: ItemTable,
    allowances: Allowances,
}

/// Scan the workspace rooted at `root`, returning all violations sorted by
/// path, line, rule.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    Ok(scan_workspace_full(root)?.violations)
}

/// Scan the workspace and also return the shard-state inventory.
pub fn scan_workspace_full(root: &Path) -> io::Result<WorkspaceScan> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();

    let mut violations = Vec::new();
    let mut lib_roots = Vec::new();
    let mut manifests = Vec::new();
    let mut records = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if SKIP_PREFIXES
            .iter()
            .any(|prefix| rel_str.starts_with(prefix))
        {
            continue;
        }
        if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
            check_manifest(&rel_str, &source, &mut violations);
            manifests.push((rel_str, source));
            continue;
        }
        if rel_str.ends_with("src/lib.rs") {
            lib_roots.push((rel_str.clone(), source.clone()));
        }
        records.push(check_rust_file(&rel_str, &source, &mut violations));
    }
    for (rel_str, source) in lib_roots {
        check_forbid_header(&rel_str, &source, &mut violations);
    }

    // Workspace graph: R10's manifest half.
    let graph = WorkspaceGraph::from_manifests(&manifests);
    violations.extend(graph.layering_violations());

    // R11 works across all item tables at once (transitive field types).
    let file_items: Vec<FileItems<'_>> = records
        .iter()
        .map(|r| FileItems {
            path: &r.path,
            table: &r.table,
            allowances: &r.allowances,
        })
        .collect();
    let shard_state = semantic::check_r11(&file_items, &mut violations);

    violations.sort();
    Ok(WorkspaceScan {
        violations,
        shard_state,
    })
}

/// Scan a single Rust source as the fixture harness does: token rules,
/// item rules, and a file-local R11 pass. `path` scopes the path-sensitive
/// rules exactly as in a workspace scan.
pub fn scan_rust_source(path: &str, source: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    let record = check_rust_file(path, source, &mut violations);
    let file_items = [FileItems {
        path: &record.path,
        table: &record.table,
        allowances: &record.allowances,
    }];
    semantic::check_r11(&file_items, &mut violations);
    violations.sort();
    violations
}

/// Scan a single manifest source (rule R6). `path` must be the manifest's
/// would-be repo-relative path, since path deps resolve against it.
pub fn scan_manifest_source(path: &str, source: &str) -> Vec<Violation> {
    let mut violations = Vec::new();
    check_manifest(path, source, &mut violations);
    violations.sort();
    violations
}

fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// Per-line allowances parsed from `// detlint:` comments. An annotation
/// applies to its own line (trailing form) and the next line (preceding
/// form).
#[derive(Debug)]
pub struct Allowances {
    by_line: BTreeMap<usize, BTreeSet<Rule>>,
}

impl Allowances {
    pub fn allows(&self, line: usize, rule: Rule) -> bool {
        self.by_line
            .get(&line)
            .is_some_and(|set| set.contains(&rule))
    }
}

fn parse_annotations(
    path: &str,
    comments: &[LineComment],
    violations: &mut Vec<Violation>,
) -> Allowances {
    let mut by_line: BTreeMap<usize, BTreeSet<Rule>> = BTreeMap::new();
    for comment in comments {
        let body = comment.text.trim_start_matches('/').trim();
        // `// conformance: strict -- <why>` is R7's dedicated escape hatch:
        // it both suppresses the finding and documents the policy decision.
        if let Some(directive) = body.strip_prefix("conformance:") {
            let directive = directive.trim();
            let (spec, reason) = match directive.split_once("--") {
                Some((spec, reason)) => (spec.trim(), reason.trim()),
                None => (directive, ""),
            };
            if spec != "strict" {
                violations.push(Violation {
                    rule: Rule::R7,
                    code: "R7.annotation",
                    path: path.to_string(),
                    line: comment.line,
                    message: format!(
                        "unrecognized conformance annotation `{directive}` \
                         (expected `strict -- <why>`)"
                    ),
                });
            } else if reason.is_empty() {
                violations.push(Violation {
                    rule: Rule::R7,
                    code: "R7.annotation",
                    path: path.to_string(),
                    line: comment.line,
                    message: "conformance annotation without a justification \
                              (append ` -- <why>`)"
                        .to_string(),
                });
            } else {
                for line in [comment.line, comment.line + 1] {
                    by_line.entry(line).or_default().insert(Rule::R7);
                }
            }
            continue;
        }
        let Some(directive) = body.strip_prefix("detlint:") else {
            continue;
        };
        let directive = directive.trim();
        let (spec, reason) = match directive.split_once("--") {
            Some((spec, reason)) => (spec.trim(), reason.trim()),
            None => (directive, ""),
        };
        let rule = if spec == "order-insensitive" {
            Some(Rule::R3)
        } else {
            spec.strip_prefix("allow(")
                .and_then(|rest| rest.strip_suffix(')'))
                .and_then(Rule::parse)
        };
        let Some(rule) = rule else {
            violations.push(Violation {
                rule: Rule::R3,
                code: "R3.annotation",
                path: path.to_string(),
                line: comment.line,
                message: format!(
                    "unrecognized detlint annotation `{directive}` (expected \
                     `order-insensitive -- <why>` or `allow(Rn) -- <why>`)"
                ),
            });
            continue;
        };
        // R4 (memory safety), R6 (offline build) and R10 (layering) have no
        // per-site escape: they are architectural, not judgment calls.
        if rule == Rule::R4 || rule == Rule::R6 || rule == Rule::R10 {
            violations.push(Violation {
                rule,
                code: rule.annotation_code(),
                path: path.to_string(),
                line: comment.line,
                message: format!("rule {rule} has no annotation escape hatch"),
            });
            continue;
        }
        if rule == Rule::R1 && R1_NO_ESCAPE.iter().any(|prefix| path.starts_with(prefix)) {
            violations.push(Violation {
                rule,
                code: "R1.no_escape",
                path: path.to_string(),
                line: comment.line,
                message: "rule R1 has no annotation escape hatch under crates/obs/ \
                          (trace records are sim-time-stamped by contract)"
                    .to_string(),
            });
            continue;
        }
        if reason.is_empty() {
            violations.push(Violation {
                rule,
                code: rule.annotation_code(),
                path: path.to_string(),
                line: comment.line,
                message: "detlint annotation without a justification \
                          (append ` -- <why>`)"
                    .to_string(),
            });
            continue;
        }
        for line in [comment.line, comment.line + 1] {
            by_line.entry(line).or_default().insert(rule);
        }
    }
    Allowances { by_line }
}

// ---------------------------------------------------------------------------
// Rust-file checks (R1–R5)
// ---------------------------------------------------------------------------

/// An identifier token in the masked code.
struct Token {
    word: String,
    line: usize,
    /// Char indices into the masked text.
    start: usize,
    end: usize,
}

fn tokenize(masked: &[char]) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < masked.len() {
        let c = masked[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < masked.len() && (masked[i].is_alphanumeric() || masked[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                word: masked[start..i].iter().collect(),
                line,
                start,
                end: i,
            });
        } else {
            i += 1;
        }
    }
    tokens
}

fn next_nonspace(masked: &[char], mut i: usize) -> Option<char> {
    while i < masked.len() {
        let c = masked[i];
        if !c.is_whitespace() {
            return Some(c);
        }
        i += 1;
    }
    None
}

fn prev_nonspace(masked: &[char], start: usize) -> Option<char> {
    masked[..start]
        .iter()
        .rev()
        .find(|c| !c.is_whitespace())
        .copied()
}

/// True if the chars immediately before `start` (ignoring whitespace) spell
/// `suffix`, e.g. `suffix = "rand::"`.
fn preceded_by(masked: &[char], start: usize, suffix: &str) -> bool {
    let mut want = suffix.chars().rev();
    let mut i = start;
    let mut current = want.next();
    while let Some(expected) = current {
        if i == 0 {
            return false;
        }
        i -= 1;
        let c = masked[i];
        if c.is_whitespace() {
            continue;
        }
        if c != expected {
            return false;
        }
        current = want.next();
    }
    true
}

/// True if a `!=` operator appears between `from` and the end of its line.
fn neq_on_rest_of_line(masked: &[char], from: usize) -> bool {
    let mut i = from;
    while i < masked.len() && masked[i] != '\n' {
        if masked[i] == '!' && masked.get(i + 1) == Some(&'=') {
            return true;
        }
        i += 1;
    }
    false
}

fn check_rust_file(path: &str, source: &str, violations: &mut Vec<Violation>) -> FileRecord {
    let masked_file = lexer::mask(source);
    let masked: Vec<char> = masked_file.code.chars().collect();
    let allowances = parse_annotations(path, &masked_file.line_comments, violations);
    let tokens = tokenize(&masked);
    let test_regions = find_test_regions(&masked);
    let in_test_region = |pos: usize| {
        test_regions
            .iter()
            .any(|&(start, end)| pos >= start && pos < end)
    };
    let r1_allowlisted = R1_ALLOWLIST.iter().any(|prefix| path.starts_with(prefix));
    let r1_no_escape = R1_NO_ESCAPE.iter().any(|prefix| path.starts_with(prefix));
    let r5_in_scope = R5_SCOPE.iter().any(|prefix| path.starts_with(prefix));
    let r7_in_scope = R7_SCOPE.iter().any(|prefix| path.starts_with(prefix));

    let mut push = |rule: Rule, code: &'static str, line: usize, message: String| {
        violations.push(Violation {
            rule,
            code,
            path: path.to_string(),
            line,
            message,
        });
    };

    for token in &tokens {
        match token.word.as_str() {
            "Instant" | "SystemTime"
                if !r1_allowlisted
                    && (r1_no_escape || !allowances.allows(token.line, Rule::R1)) =>
            {
                push(
                    Rule::R1,
                    "R1.wall_clock",
                    token.line,
                    format!(
                        "wall-clock type `{}` (simulation time must come from the \
                         virtual clock; see --explain R1)",
                        token.word
                    ),
                );
            }
            "thread_rng" | "from_entropy" | "OsRng" | "getrandom"
                if !allowances.allows(token.line, Rule::R2) =>
            {
                push(
                    Rule::R2,
                    "R2.ambient_entropy",
                    token.line,
                    format!(
                        "ambient entropy source `{}` (all randomness must flow from \
                         the experiment seed; see --explain R2)",
                        token.word
                    ),
                );
            }
            "random"
                if preceded_by(&masked, token.start, "rand::")
                    && !allowances.allows(token.line, Rule::R2) =>
            {
                push(
                    Rule::R2,
                    "R2.ambient_entropy",
                    token.line,
                    "ambient entropy source `rand::random` (see --explain R2)".to_string(),
                );
            }
            "HashMap" | "HashSet" if !allowances.allows(token.line, Rule::R3) => {
                push(
                    Rule::R3,
                    "R3.hash_collection",
                    token.line,
                    format!(
                        "`{}` has randomized iteration order; use BTreeMap/BTreeSet \
                         or justify with `// detlint: order-insensitive -- <why>`",
                        token.word
                    ),
                );
            }
            "unsafe" => {
                push(
                    Rule::R4,
                    "R4.unsafe_code",
                    token.line,
                    "`unsafe` is banned workspace-wide (see --explain R4)".to_string(),
                );
            }
            "unwrap" | "expect"
                if r5_in_scope
                    && !in_test_region(token.start)
                    && prev_nonspace(&masked, token.start) == Some('.')
                    && next_nonspace(&masked, token.end) == Some('(')
                    && !allowances.allows(token.line, Rule::R5) =>
            {
                push(
                    Rule::R5,
                    "R5.panic_escape",
                    token.line,
                    format!(
                        "`.{}()` in attacker-facing decode path; return Result \
                         instead (see --explain R5)",
                        token.word
                    ),
                );
            }
            "ensure_exact"
                if r7_in_scope
                    && !in_test_region(token.start)
                    && !allowances.allows(token.line, Rule::R7) =>
            {
                push(
                    Rule::R7,
                    "R7.ensure_exact",
                    token.line,
                    "`ensure_exact` rejects trailing data; EIP-8 policy is \
                     tolerate-and-count — justify with `// conformance: strict \
                     -- <why>` (see --explain R7)"
                        .to_string(),
                );
            }
            // Constructing the strict error imposes the policy; a match arm
            // (`TrailingBytes =>`) or variant declaration (no leading `::`)
            // merely handles or defines it.
            "TrailingBytes"
                if r7_in_scope
                    && !in_test_region(token.start)
                    && preceded_by(&masked, token.start, "::")
                    && next_nonspace(&masked, token.end) != Some('=')
                    && !allowances.allows(token.line, Rule::R7) =>
            {
                push(
                    Rule::R7,
                    "R7.trailing_bytes",
                    token.line,
                    "constructing `TrailingBytes` hard-rejects trailing data; \
                     justify with `// conformance: strict -- <why>` \
                     (see --explain R7)"
                        .to_string(),
                );
            }
            "item_count"
                if r7_in_scope
                    && !in_test_region(token.start)
                    && neq_on_rest_of_line(&masked, token.end)
                    && !allowances.allows(token.line, Rule::R7) =>
            {
                push(
                    Rule::R7,
                    "R7.item_count",
                    token.line,
                    "exact `item_count` check (`!=`) rejects EIP-8 extra list \
                     elements; use a `<` reject / `>` tolerate-and-count split, \
                     or justify with `// conformance: strict -- <why>` \
                     (see --explain R7)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }

    // Item-level pass: parse the file once and run the semantic rules.
    let (toks, table) = item_parse(&masked_file, &masked);
    semantic::check_r8(path, &table, &allowances, &in_test_region, violations);
    semantic::check_r9(
        path,
        &table,
        &toks,
        &allowances,
        &in_test_region,
        violations,
    );
    semantic::check_r10_uses(path, &table, violations);
    semantic::check_r12(path, &table, &toks, &allowances, violations);
    semantic::check_r13(path, &table, &toks, &allowances, violations);

    FileRecord {
        path: path.to_string(),
        table,
        allowances,
    }
}

fn item_parse(masked_file: &lexer::MaskedFile, masked: &[char]) -> (Vec<Tok>, ItemTable) {
    let toks = parser::lex(masked);
    let table = parser::parse_items(masked_file, &toks);
    (toks, table)
}

/// Whitespace-tolerant match of `pattern` (which must not itself contain
/// whitespace) in `masked` starting at `from`. Returns the char index just
/// past the match.
fn match_pattern(masked: &[char], from: usize, pattern: &str) -> Option<usize> {
    let mut i = from;
    for expected in pattern.chars() {
        while i < masked.len() && masked[i].is_whitespace() {
            i += 1;
        }
        if i >= masked.len() || masked[i] != expected {
            return None;
        }
        i += 1;
    }
    Some(i)
}

/// Char ranges covered by `#[cfg(test)]` items and `#[test]` functions: the
/// attribute's following brace-delimited block.
fn find_test_regions(masked: &[char]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for (i, &c) in masked.iter().enumerate() {
        if c != '#' {
            continue;
        }
        let matched = match_pattern(masked, i, "#[cfg(test)]")
            .or_else(|| match_pattern(masked, i, "#[test]"));
        if let Some(after) = matched {
            if let Some(region) = brace_block(masked, after) {
                regions.push(region);
            }
        }
    }
    regions
}

/// From `from`, find the next `{` and return the char range through its
/// matching `}` (inclusive).
fn brace_block(masked: &[char], from: usize) -> Option<(usize, usize)> {
    let open = (from..masked.len()).find(|&i| masked[i] == '{')?;
    let mut depth = 0usize;
    for (i, &c) in masked.iter().enumerate().skip(open) {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Rule R4's second half: every crate root must carry the forbid header.
fn check_forbid_header(path: &str, source: &str, violations: &mut Vec<Violation>) {
    let masked_file = lexer::mask(source);
    let masked: Vec<char> = masked_file.code.chars().collect();
    let found = masked
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c == '#')
        .any(|(i, _)| match_pattern(&masked, i, "#![forbid(unsafe_code)]").is_some());
    if !found {
        violations.push(Violation {
            rule: Rule::R4,
            code: "R4.missing_forbid",
            path: path.to_string(),
            line: 1,
            message: "crate root missing `#![forbid(unsafe_code)]` (see --explain R4)".to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Manifest checks (R6)
// ---------------------------------------------------------------------------

fn check_manifest(path: &str, source: &str, violations: &mut Vec<Violation>) {
    let manifest_dir = match path.rfind('/') {
        Some(idx) => &path[..idx],
        None => "",
    };
    let mut push = |code: &'static str, line: usize, message: String| {
        violations.push(Violation {
            rule: Rule::R6,
            code,
            path: path.to_string(),
            line,
            message,
        });
    };

    enum Section {
        Other,
        /// `[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`, …
        Deps,
        /// `[dependencies.NAME]` — keys on following lines describe NAME.
        SingleDep(String),
    }
    let mut section = Section::Other;

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_toml_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            let name = line.trim_start_matches('[').trim_end_matches(']').trim();
            section = if name.ends_with("dependencies") {
                Section::Deps
            } else if let Some((head, dep)) = name.rsplit_once('.') {
                if head.ends_with("dependencies") {
                    Section::SingleDep(dep.trim_matches('"').to_string())
                } else {
                    Section::Other
                }
            } else {
                Section::Other
            };
            continue;
        }
        match &section {
            Section::Other => {}
            Section::Deps => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                let value = value.trim();
                // `name.workspace = true` / `name.path = "…"` dotted form.
                let (dep_name, sub_key) = match key.split_once('.') {
                    Some((name, sub)) => (name.trim_matches('"'), Some(sub)),
                    None => (key.trim_matches('"'), None),
                };
                check_dep_entry(manifest_dir, dep_name, sub_key, value, line_no, &mut push);
            }
            Section::SingleDep(dep_name) => {
                let Some((key, value)) = line.split_once('=') else {
                    continue;
                };
                check_dep_entry(
                    manifest_dir,
                    dep_name,
                    Some(key.trim()),
                    value.trim(),
                    line_no,
                    &mut push,
                );
            }
        }
    }
}

/// Validate one dependency declaration.
///
/// `sub_key` is `Some("workspace")` / `Some("path")` / … for dotted or
/// multi-line forms, `None` when `value` is the whole right-hand side
/// (either a bare version string or an inline table).
fn check_dep_entry(
    manifest_dir: &str,
    dep_name: &str,
    sub_key: Option<&str>,
    value: &str,
    line_no: usize,
    push: &mut impl FnMut(&'static str, usize, String),
) {
    match sub_key {
        Some("workspace") => {
            // Inherited from [workspace.dependencies], which is checked
            // where it is defined (the root manifest).
        }
        Some("path") => {
            check_dep_path(manifest_dir, dep_name, value, line_no, push);
        }
        Some("git") => {
            push(
                "R6.git_dep",
                line_no,
                format!(
                    "dependency `{dep_name}` uses a git source (offline build; \
                         see --explain R6)"
                ),
            );
        }
        Some(_) => {
            // version / features / optional / default-features keys of a
            // multi-line dep table: nothing to check here; a registry dep
            // would have been classified when its `version` key or inline
            // table was seen. A pure `[dependencies.x] version = "1"` form
            // is caught below via the version key.
            if sub_key == Some("version") && !APPROVED_DEPS.contains(&dep_name) {
                push(
                    "R6.registry_dep",
                    line_no,
                    format!(
                        "registry dependency `{dep_name}` is not offline-approved \
                         (see --explain R6)"
                    ),
                );
            }
        }
        None => {
            if value.starts_with('{') {
                let table = value.trim_start_matches('{').trim_end_matches('}');
                let mut saw_source = false;
                for part in split_inline_table(table) {
                    let Some((key, val)) = part.split_once('=') else {
                        continue;
                    };
                    let (key, val) = (key.trim(), val.trim());
                    match key {
                        "workspace" | "path" | "git" | "version" => {
                            saw_source = true;
                            check_dep_entry(manifest_dir, dep_name, Some(key), val, line_no, push);
                        }
                        _ => {}
                    }
                }
                if !saw_source {
                    push(
                        "R6.unknown_source",
                        line_no,
                        format!(
                            "dependency `{dep_name}` has no recognizable source \
                                 (see --explain R6)"
                        ),
                    );
                }
            } else {
                // Bare version string: registry dependency.
                if !APPROVED_DEPS.contains(&dep_name) {
                    push(
                        "R6.registry_dep",
                        line_no,
                        format!(
                            "registry dependency `{dep_name}` is not offline-approved \
                             (see --explain R6)"
                        ),
                    );
                }
            }
        }
    }
}

/// Reject path dependencies that escape the repository root.
fn check_dep_path(
    manifest_dir: &str,
    dep_name: &str,
    value: &str,
    line_no: usize,
    push: &mut impl FnMut(&'static str, usize, String),
) {
    let rel = value.trim().trim_matches('"');
    if rel.starts_with('/') || rel.chars().nth(1) == Some(':') {
        push(
            "R6.abs_path",
            line_no,
            format!("dependency `{dep_name}` uses an absolute path (see --explain R6)"),
        );
        return;
    }
    // Normalize manifest_dir + rel, counting how far `..` pops.
    let mut depth: isize = 0;
    let components = manifest_dir
        .split('/')
        .chain(rel.split('/'))
        .filter(|c| !c.is_empty() && *c != ".");
    for component in components {
        if component == ".." {
            depth -= 1;
            if depth < 0 {
                push(
                    "R6.escaping_path",
                    line_no,
                    format!(
                        "dependency `{dep_name}` path `{rel}` escapes the repository \
                         (see --explain R6)"
                    ),
                );
                return;
            }
        } else {
            depth += 1;
        }
    }
}

/// Drop a trailing `# comment` from a TOML line (respecting quoted strings).
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Split an inline TOML table body on commas outside quotes/brackets.
fn split_inline_table(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut bracket_depth = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '[' if !in_string => bracket_depth += 1,
            ']' if !in_string => bracket_depth = bracket_depth.saturating_sub(1),
            ',' if !in_string && bracket_depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_source(path: &str, source: &str) -> Vec<Violation> {
        let mut v = Vec::new();
        check_rust_file(path, source, &mut v);
        v
    }

    #[test]
    fn r3_flags_hash_collections() {
        let v = scan_source("crates/x/src/a.rs", "use std::collections::HashMap;\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::R3);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn r3_annotation_suppresses_with_reason() {
        let src = "\
// detlint: order-insensitive -- only probed by key, never iterated
use std::collections::HashMap;
";
        assert!(scan_source("a.rs", src).is_empty());
        let trailing = "let m: HashMap<u8, u8> = x; // detlint: order-insensitive -- probe only\n";
        assert!(scan_source("a.rs", trailing).is_empty());
    }

    #[test]
    fn r3_annotation_without_reason_is_itself_a_violation() {
        let src = "// detlint: order-insensitive\nuse std::collections::HashMap;\n";
        let v = scan_source("a.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|x| x.message.contains("without a justification")));
    }

    #[test]
    fn annotations_survive_crlf_tabs_and_eof() {
        // CRLF: the \r must not end up inside the justification.
        let crlf =
            "// detlint: order-insensitive -- probe only\r\nuse std::collections::HashMap;\r\n";
        assert!(scan_source("a.rs", crlf).is_empty(), "CRLF annotation");
        // Tab / leading-whitespace indentation.
        let tabbed =
            "\t// detlint: order-insensitive -- probe only\n\tuse std::collections::HashMap;\n";
        assert!(scan_source("a.rs", tabbed).is_empty(), "tabbed annotation");
        // Trailing annotation on the file's unterminated last line.
        let eof = "use std::collections::HashMap; // detlint: order-insensitive -- probe only";
        assert!(scan_source("a.rs", eof).is_empty(), "EOF annotation");
        // CRLF conformance variant too (different directive parser arm).
        let conf = "// conformance: strict -- whole-buffer by contract\r\nfn f(r: &Rlp<'_>) { r.ensure_exact().ok(); }\r\n";
        assert!(
            scan_source("crates/rlp/src/lib.rs", conf).is_empty(),
            "CRLF conformance annotation"
        );
    }

    #[test]
    fn r3_ignores_strings_and_comments() {
        let src = "let s = \"HashMap\"; // HashMap in a comment\n/* HashMap */\n";
        assert!(scan_source("a.rs", src).is_empty());
    }

    #[test]
    fn r1_flags_wall_clock_outside_allowlist() {
        let src = "let t = std::time::Instant::now();\n";
        let v = scan_source("crates/netsim/src/engine.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::R1);
        assert!(scan_source("vendor/criterion/src/lib.rs", src).is_empty());
    }

    #[test]
    fn r1_profile_module_is_the_only_obs_quarantine() {
        // The self-profiler file is sanctioned — the allowlist entry wins
        // over the crates/obs/ hard ban …
        let src = "let t = std::time::Instant::now();\n";
        assert!(scan_source("crates/obs/src/profile.rs", src).is_empty());
        // … but every other obs file stays hard-banned.
        for path in [
            "crates/obs/src/lib.rs",
            "crates/obs/src/trace.rs",
            "crates/obs/src/bin/obsctl.rs",
        ] {
            let v = scan_source(path, src);
            assert_eq!(v.len(), 1, "{path} should flag: {v:?}");
            assert_eq!(v[0].rule, Rule::R1);
        }
    }

    #[test]
    fn r10_obs_bin_may_import_its_own_lib() {
        // `use obs::…` inside obs's own bin target is self-reference, not
        // an in-workspace import …
        let own = "use obs::TraceQuery;\n";
        assert!(scan_source("crates/obs/src/bin/obsctl.rs", own).is_empty());
        // … but any other workspace crate stays banned there.
        let other = "use netsim::NetSim;\n";
        let v = scan_source("crates/obs/src/bin/obsctl.rs", other);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].code, "R10.obs_use");
    }

    #[test]
    fn r1_hard_ban_under_obs_ignores_annotation() {
        let src = "\
// detlint: allow(R1) -- trying to sneak wall clock into the tracer
let t = std::time::Instant::now();
";
        let v = scan_source("crates/obs/src/lib.rs", src);
        // Both the annotation itself and the wall-clock read are flagged.
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == Rule::R1));
        assert!(v.iter().any(|x| x
            .message
            .contains("no annotation escape hatch under crates/obs/")));
        assert!(v.iter().any(|x| x.message.contains("wall-clock type")));
        // The same source outside crates/obs/ is clean: the annotation works.
        assert!(scan_source("crates/netsim/src/engine.rs", src).is_empty());
    }

    #[test]
    fn r2_flags_ambient_entropy() {
        let v = scan_source("a.rs", "let mut rng = rand::thread_rng();\n");
        assert_eq!(v[0].rule, Rule::R2);
        let v = scan_source("a.rs", "let x: u8 = rand::random();\n");
        assert_eq!(v[0].rule, Rule::R2);
        // `random` as a plain identifier is fine.
        assert!(scan_source("a.rs", "let random = 4;\n").is_empty());
    }

    #[test]
    fn r4_flags_unsafe_keyword() {
        let v = scan_source("a.rs", "let p = unsafe { *ptr };\n");
        assert_eq!(v[0].rule, Rule::R4);
        // ...but not the string or the lint name.
        assert!(scan_source("a.rs", "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn r5_flags_unwrap_only_in_scope_and_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(scan_source("crates/rlp/src/decode.rs", src).len(), 1);
        assert!(scan_source("crates/netsim/src/engine.rs", src).is_empty());
        assert!(scan_source("crates/rlp/tests/decode.rs", src).is_empty());

        let test_mod = "\
fn decode(x: Option<u8>) -> Option<u8> { x }

#[cfg(test)]
mod tests {
    fn helper(x: Option<u8>) -> u8 { x.unwrap() }
}
";
        assert!(scan_source("crates/rlp/src/decode.rs", test_mod).is_empty());

        let test_fn = "#[test]\nfn t() { Some(1u8).unwrap(); }\n";
        assert!(scan_source("crates/rlp/src/decode.rs", test_fn).is_empty());
    }

    #[test]
    fn r5_allows_with_annotation() {
        let src = "\
fn f(x: [u8; 4]) -> u32 {
    // detlint: allow(R5) -- slice is exactly 4 bytes by construction
    u32::from_be_bytes(x[..4].try_into().unwrap())
}
";
        assert!(scan_source("crates/rlp/src/decode.rs", src).is_empty());
    }

    #[test]
    fn r7_flags_strict_decode_only_in_scope_and_outside_tests() {
        let src = "fn f(b: &[u8]) { let r = Rlp::new(b); r.ensure_exact().ok(); }\n";
        let v = scan_source("crates/devp2p/src/messages.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::R7);
        // Out of scope (netsim, tests dir) and inside test regions: clean.
        assert!(scan_source("crates/netsim/src/engine.rs", src).is_empty());
        assert!(scan_source("crates/devp2p/tests/wire.rs", src).is_empty());
        let test_fn = "#[test]\nfn t() { Rlp::new(b\"x\").ensure_exact().ok(); }\n";
        assert!(scan_source("crates/devp2p/src/messages.rs", test_fn).is_empty());
    }

    #[test]
    fn r7_conformance_annotation_suppresses_with_reason() {
        let src = "\
// conformance: strict -- one-shot decode is whole-buffer by contract
fn f(r: &Rlp<'_>) { r.ensure_exact().ok(); }
";
        assert!(scan_source("crates/rlp/src/lib.rs", src).is_empty());
        let trailing =
            "fn f(r: &Rlp<'_>) { r.ensure_exact().ok(); } // conformance: strict -- contract\n";
        assert!(scan_source("crates/rlp/src/lib.rs", trailing).is_empty());
    }

    #[test]
    fn r7_annotation_without_reason_or_unknown_spec_is_itself_a_violation() {
        let src = "// conformance: strict\nfn f(r: &Rlp<'_>) { r.ensure_exact().ok(); }\n";
        let v = scan_source("crates/rlp/src/lib.rs", src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v
            .iter()
            .any(|x| x.message.contains("without a justification")));

        let v = scan_source("a.rs", "// conformance: lenient -- nope\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("unrecognized conformance annotation"));
    }

    #[test]
    fn r7_flags_trailing_bytes_construction_but_not_handling() {
        let construct = "fn f() -> Result<(), RlpError> { Err(RlpError::TrailingBytes) }\n";
        let v = scan_source("crates/rlp/src/decode.rs", construct);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("TrailingBytes"));

        // Match arms inspect the error; the enum declares it. Neither
        // imposes strictness.
        let handle =
            "fn g(e: &RlpError) -> u8 { match e { RlpError::TrailingBytes => 1, _ => 0 } }\n";
        assert!(scan_source("crates/rlp/src/decode.rs", handle).is_empty());
        let declare = "enum RlpError { TrailingBytes, Other }\n";
        assert!(scan_source("crates/rlp/src/error.rs", declare).is_empty());
    }

    #[test]
    fn r7_flags_exact_item_count_check_but_not_range_split() {
        let strict = "fn f(r: &Rlp<'_>) -> bool { r.item_count().unwrap_or(0) != 4 }\n";
        let v = scan_source("crates/enode/src/record.rs", strict);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, Rule::R7);

        let lenient = "fn f(r: &Rlp<'_>) -> bool { r.item_count().unwrap_or(0) < 4 }\n";
        assert!(scan_source("crates/enode/src/record.rs", lenient).is_empty());
    }

    #[test]
    fn forbid_header_required_in_lib_roots() {
        let mut v = Vec::new();
        check_forbid_header("crates/x/src/lib.rs", "pub fn f() {}\n", &mut v);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::R4);

        let mut v = Vec::new();
        check_forbid_header(
            "crates/x/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub fn f() {}\n",
            &mut v,
        );
        assert!(v.is_empty());
    }

    #[test]
    fn r6_rejects_git_and_unapproved_registry_deps() {
        let manifest = "\
[dependencies]
serde = { path = \"../../vendor/serde\", features = [\"derive\"] }
rand.workspace = true
left-pad = \"1\"
evil = { git = \"https://example.com/evil\" }
";
        let mut v = Vec::new();
        check_manifest("crates/x/Cargo.toml", manifest, &mut v);
        let messages: Vec<&str> = v.iter().map(|x| x.message.as_str()).collect();
        assert_eq!(v.len(), 2, "{messages:?}");
        assert!(messages.iter().any(|m| m.contains("left-pad")));
        assert!(messages.iter().any(|m| m.contains("git source")));
    }

    #[test]
    fn r6_rejects_escaping_paths() {
        let manifest = "[dependencies]\nescape = { path = \"../../../elsewhere\" }\n";
        let mut v = Vec::new();
        check_manifest("crates/x/Cargo.toml", manifest, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("escapes the repository"));

        // In-repo relative paths are fine.
        let ok = "[dependencies]\nrlp = { path = \"../rlp\" }\n";
        let mut v = Vec::new();
        check_manifest("crates/x/Cargo.toml", ok, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn r6_handles_multiline_dep_tables() {
        let manifest = "[dependencies.badcrate]\nversion = \"3\"\n";
        let mut v = Vec::new();
        check_manifest("crates/x/Cargo.toml", manifest, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("badcrate"));
    }

    #[test]
    fn toml_comment_stripping_respects_strings() {
        assert_eq!(
            strip_toml_comment("a = \"x#y\" # real comment"),
            "a = \"x#y\" "
        );
        assert_eq!(strip_toml_comment("plain = 1"), "plain = 1");
    }
}
