//! Item-level parsing on top of [`crate::lexer`].
//!
//! The lexer masks comments and literal bodies; this module turns the masked
//! text into a flat token stream (words + single-char punctuation) and then
//! into a per-file **item table**: `use` roots, `static` / `thread_local!`
//! declarations, type definitions with field lists, `fn` signatures with
//! parameter lists and body spans, and `impl` blocks. It is still not a Rust
//! parser — it is a recoverable recognizer that over-approximates where it
//! must (anything it cannot classify is skipped, never misattributed), which
//! is the right failure mode for a linter: a construct the parser misses is
//! a construct the semantic rules silently tolerate, not a false positive.
//!
//! The item table also carries the two *marker annotations* the semantic
//! rules key on:
//!
//! * `// hotpath` on a fn enables the R12 allocation lint for its body;
//! * `// shard-state` on a type enters it into the R11 shard inventory.
//!
//! A marker applies to the item it directly precedes: the walk from the
//! item's first line skips upward over attribute lines, doc comments and
//! ordinary comments, and stops at the first line holding real code.

use crate::lexer::MaskedFile;
use std::collections::BTreeMap;

/// One token of masked source: an identifier/number word or a single
/// punctuation char.
#[derive(Debug, Clone)]
pub struct Tok {
    pub text: String,
    /// 1-based line.
    pub line: usize,
    /// Char index into the masked text (comparable with test-region spans).
    pub pos: usize,
    /// True for identifier/number words, false for punctuation.
    pub word: bool,
}

/// Tokenize masked code into words and punctuation.
pub fn lex(masked: &[char]) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut line = 1;
    let mut i = 0;
    while i < masked.len() {
        let c = masked[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let start = i;
            while i < masked.len() && (masked[i].is_alphanumeric() || masked[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                text: masked[start..i].iter().collect(),
                line,
                pos: start,
                word: true,
            });
        } else {
            toks.push(Tok {
                text: c.to_string(),
                line,
                pos: i,
                word: false,
            });
            i += 1;
        }
    }
    toks
}

/// A `use` declaration, reduced to its root path segment (`use rlp::Rlp` →
/// `rlp`) — all the workspace graph needs.
#[derive(Debug, Clone)]
pub struct UseDecl {
    pub root: String,
    pub line: usize,
}

/// A `static` declaration, either free-standing or inside `thread_local!`.
#[derive(Debug, Clone)]
pub struct StaticDecl {
    pub name: String,
    pub line: usize,
    /// Char position of the `static` keyword (for test-region checks).
    pub pos: usize,
    pub is_mut: bool,
    /// Type tokens (words and punctuation), in order.
    pub ty: Vec<String>,
    pub thread_local: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    Struct,
    Enum,
    Union,
}

/// One field of a type. Enum variant fields are named `Variant.field`
/// (tuple fields get positional names: `Variant.0`, or plain `0` for tuple
/// structs).
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub ty: Vec<String>,
    pub line: usize,
}

/// A `struct`/`enum`/`union` definition with its flattened field list.
#[derive(Debug, Clone)]
pub struct TypeDef {
    pub name: String,
    pub kind: TypeKind,
    pub line: usize,
    pub pos: usize,
    pub fields: Vec<FieldDef>,
    /// Carries a `// shard-state` marker (R11 inventory).
    pub shard_state: bool,
}

/// One fn parameter: the pattern's bound names and the ascribed type tokens
/// (empty for `self` receivers).
#[derive(Debug, Clone)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: Vec<String>,
}

/// Token-index span of a brace-delimited body, with the matching char span.
#[derive(Debug, Clone, Copy)]
pub struct BodySpan {
    /// Index of the opening `{` token.
    pub tok_lo: usize,
    /// Index one past the closing `}` token.
    pub tok_hi: usize,
    /// Char position of the opening `{` (for test-region checks).
    pub pos: usize,
}

/// A fn definition (free, in an impl, or in a trait; bodyless trait
/// signatures have `body: None`).
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    pub line: usize,
    pub pos: usize,
    pub params: Vec<Param>,
    pub body: Option<BodySpan>,
    /// Carries a `// hotpath` marker (R12 allocation lint).
    pub hotpath: bool,
    /// Carries the `// hotpath: fat-key -- <why>` variant: hotpath with
    /// the fat-keyed-map lint (R13) waived.
    pub hotpath_fatkey: bool,
}

/// An `impl` block header (inherent or trait impl).
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// The implementing type's root name (`impl Trait for Type` → `Type`).
    pub ty: String,
    pub line: usize,
}

/// Everything the semantic rules need from one file.
#[derive(Debug, Clone, Default)]
pub struct ItemTable {
    pub uses: Vec<UseDecl>,
    pub statics: Vec<StaticDecl>,
    pub types: Vec<TypeDef>,
    pub fns: Vec<FnDef>,
    pub impls: Vec<ImplBlock>,
}

/// Parse the masked file into tokens plus an item table.
pub fn parse(masked_file: &MaskedFile) -> (Vec<Tok>, ItemTable) {
    let masked: Vec<char> = masked_file.code.chars().collect();
    let toks = lex(&masked);
    let table = parse_items(masked_file, &toks);
    (toks, table)
}

/// Parse an already-lexed token stream (callers that also need the tokens).
pub fn parse_items(masked_file: &MaskedFile, toks: &[Tok]) -> ItemTable {
    let ctx = MarkerCtx::new(masked_file);
    let mut table = ItemTable::default();
    parse_range(toks, 0, toks.len(), false, &ctx, &mut table);
    table
}

/// Which marker comments exist, and which lines are "passive" (attributes,
/// comments, doc comments) for the upward attachment walk.
struct MarkerCtx {
    hotpath: BTreeMap<usize, ()>,
    /// `// hotpath: fat-key -- <why>` lines: still hotpath (R12), but the
    /// fat-keyed-map lint (R13) is waived for the attached fn.
    hotpath_fatkey: BTreeMap<usize, ()>,
    shard_state: BTreeMap<usize, ()>,
    /// Lines whose masked content is empty but carried a `//` comment.
    comment_only: BTreeMap<usize, ()>,
    /// Masked source split into lines (index 0 = line 1).
    lines: Vec<String>,
}

impl MarkerCtx {
    fn new(masked_file: &MaskedFile) -> Self {
        let mut hotpath = BTreeMap::new();
        let mut hotpath_fatkey = BTreeMap::new();
        let mut shard_state = BTreeMap::new();
        let mut comment_lines = BTreeMap::new();
        for comment in &masked_file.line_comments {
            comment_lines.insert(comment.line, ());
            let body = comment.text.trim_start_matches('/').trim();
            if marker_matches(body, "hotpath") {
                hotpath.insert(comment.line, ());
            }
            if marker_variant_matches(body, "hotpath", "fat-key") {
                // The variant is still a hotpath marker (R12 applies);
                // it additionally waives R13 for the attached fn.
                hotpath.insert(comment.line, ());
                hotpath_fatkey.insert(comment.line, ());
            }
            if marker_matches(body, "shard-state") {
                shard_state.insert(comment.line, ());
            }
        }
        let lines: Vec<String> = masked_file.code.lines().map(str::to_string).collect();
        let mut comment_only = BTreeMap::new();
        for (&line, ()) in &comment_lines {
            let code = lines.get(line - 1).map(|l| l.trim()).unwrap_or("");
            if code.is_empty() {
                comment_only.insert(line, ());
            }
        }
        MarkerCtx {
            hotpath,
            hotpath_fatkey,
            shard_state,
            comment_only,
            lines,
        }
    }

    /// A line the attachment walk may step over: an attribute, or a line
    /// that was entirely comment. Blank lines and code lines stop the walk.
    fn passive(&self, line: usize) -> bool {
        if self.comment_only.contains_key(&line) {
            return true;
        }
        self.lines
            .get(line - 1)
            .map(|l| l.trim().starts_with('#'))
            .unwrap_or(false)
    }

    fn attached(&self, markers: &BTreeMap<usize, ()>, item_line: usize) -> bool {
        // Trailing form: marker comment on the item's own first line.
        if markers.contains_key(&item_line) {
            return true;
        }
        let mut line = item_line;
        while line > 1 {
            line -= 1;
            if markers.contains_key(&line) && self.comment_only.contains_key(&line) {
                return true;
            }
            if !self.passive(line) {
                return false;
            }
        }
        false
    }
}

/// `body` matches `name` bare or with a ` -- note` suffix.
fn marker_matches(body: &str, name: &str) -> bool {
    match body.strip_prefix(name) {
        Some(rest) => rest.is_empty() || rest.trim_start().starts_with("--"),
        None => false,
    }
}

/// `body` matches `name: variant`, bare or with a ` -- note` suffix
/// (e.g. `hotpath: fat-key -- cold diagnostic scan`).
fn marker_variant_matches(body: &str, name: &str, variant: &str) -> bool {
    let Some(rest) = body.strip_prefix(name) else {
        return false;
    };
    let Some(rest) = rest.trim_start().strip_prefix(':') else {
        return false;
    };
    match rest.trim_start().strip_prefix(variant) {
        Some(rest) => rest.is_empty() || rest.trim_start().starts_with("--"),
        None => false,
    }
}

fn is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    toks.get(i)
        .is_some_and(|t| !t.word && t.text.starts_with(c))
}

fn word_at(toks: &[Tok], i: usize) -> Option<&str> {
    toks.get(i)
        .and_then(|t| if t.word { Some(t.text.as_str()) } else { None })
}

/// From `i` pointing at `open`, return the index one past the matching
/// `close`. Falls back to the end of the range on unbalanced input.
fn skip_balanced(toks: &[Tok], mut i: usize, hi: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    while i < hi {
        if is_punct(toks, i, open) {
            depth += 1;
        } else if is_punct(toks, i, close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

/// From `i` pointing at `<`, return the index one past the matching `>`,
/// treating the `>` of a `->` arrow as not-a-closer.
fn skip_generics(toks: &[Tok], mut i: usize, hi: usize) -> usize {
    let mut depth = 0usize;
    while i < hi {
        if is_punct(toks, i, '<') {
            depth += 1;
        } else if is_punct(toks, i, '>') && !(i > 0 && is_punct(toks, i - 1, '-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    hi
}

/// Collect type tokens from `i` until a top-level terminator char, tracking
/// `()[]{}<>` nesting. Returns (tokens, index at the terminator).
fn collect_type(toks: &[Tok], mut i: usize, hi: usize, stop: &[char]) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    let mut paren = 0isize;
    let mut angle = 0isize;
    while i < hi {
        let t = &toks[i];
        if !t.word {
            let c = t.text.chars().next().unwrap_or(' ');
            if paren == 0 && angle == 0 && stop.contains(&c) {
                return (out, i);
            }
            match c {
                '(' | '[' | '{' => paren += 1,
                ')' | ']' | '}' => paren -= 1,
                '<' => angle += 1,
                '>' if !(i > 0 && is_punct(toks, i - 1, '-')) => angle -= 1,
                _ => {}
            }
            if paren < 0 {
                // Closing the caller's delimiter (e.g. the `)` of a param
                // list we were called inside of).
                return (out, i);
            }
        }
        out.push(t.text.clone());
        i += 1;
    }
    (out, hi)
}

fn parse_range(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    thread_local: bool,
    ctx: &MarkerCtx,
    table: &mut ItemTable,
) {
    let mut i = lo;
    while i < hi {
        let Some(word) = word_at(toks, i) else {
            if is_punct(toks, i, '{') {
                // A brace at item level (e.g. a const initializer's struct
                // expression): skip it wholesale so its contents are never
                // misread as items.
                i = skip_balanced(toks, i, hi, '{', '}');
            } else {
                i += 1;
            }
            continue;
        };
        match word {
            "pub" => {
                i += 1;
                if is_punct(toks, i, '(') {
                    i = skip_balanced(toks, i, hi, '(', ')');
                }
            }
            "use" => i = parse_use(toks, i, hi, table),
            "static" if !(i > 0 && is_punct(toks, i - 1, '\'')) => {
                i = parse_static(toks, i, hi, thread_local, table);
            }
            "thread_local" if is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '{') => {
                let end = skip_balanced(toks, i + 2, hi, '{', '}');
                parse_range(toks, i + 3, end.saturating_sub(1), true, ctx, table);
                i = end;
            }
            "struct" | "enum" | "union" => i = parse_type(toks, i, hi, ctx, table),
            "fn" => i = parse_fn(toks, i, hi, ctx, table),
            "impl" => i = parse_impl(toks, i, hi, ctx, table),
            "mod" => {
                // `mod name { … }`: recurse into the block; `mod name;` skip.
                i += 1;
                while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
                    i += 1;
                }
                if is_punct(toks, i, '{') {
                    let end = skip_balanced(toks, i, hi, '{', '}');
                    parse_range(toks, i + 1, end.saturating_sub(1), thread_local, ctx, table);
                    i = end;
                }
            }
            "trait" => {
                while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
                    i += 1;
                }
                if is_punct(toks, i, '{') {
                    let end = skip_balanced(toks, i, hi, '{', '}');
                    parse_range(toks, i + 1, end.saturating_sub(1), false, ctx, table);
                    i = end;
                }
            }
            "macro_rules" => {
                // Skip macro definitions entirely: their arms are patterns,
                // not items.
                while i < hi && !is_punct(toks, i, '{') {
                    i += 1;
                }
                i = skip_balanced(toks, i, hi, '{', '}');
            }
            _ => i += 1,
        }
    }
}

fn parse_use(toks: &[Tok], mut i: usize, hi: usize, table: &mut ItemTable) -> usize {
    let line = toks[i].line;
    i += 1;
    while is_punct(toks, i, ':') {
        i += 1;
    }
    if let Some(root) = word_at(toks, i) {
        table.uses.push(UseDecl {
            root: root.to_string(),
            line,
        });
    }
    // Skip the rest of the use tree (may contain `{…}` groups) to `;`.
    let mut depth = 0usize;
    while i < hi {
        if is_punct(toks, i, '{') {
            depth += 1;
        } else if is_punct(toks, i, '}') {
            depth = depth.saturating_sub(1);
        } else if is_punct(toks, i, ';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    hi
}

fn parse_static(
    toks: &[Tok],
    start: usize,
    hi: usize,
    thread_local: bool,
    table: &mut ItemTable,
) -> usize {
    let line = toks[start].line;
    let pos = toks[start].pos;
    let mut i = start + 1;
    let is_mut = word_at(toks, i) == Some("mut");
    if is_mut {
        i += 1;
    }
    let Some(name) = word_at(toks, i) else {
        return i;
    };
    let name = name.to_string();
    i += 1;
    let mut ty = Vec::new();
    if is_punct(toks, i, ':') {
        let (collected, at) = collect_type(toks, i + 1, hi, &['=', ';']);
        ty = collected;
        i = at;
    }
    // Skip the initializer expression (may contain braces) to `;`.
    let mut depth = 0usize;
    while i < hi {
        if is_punct(toks, i, '{') || is_punct(toks, i, '(') || is_punct(toks, i, '[') {
            depth += 1;
        } else if is_punct(toks, i, '}') || is_punct(toks, i, ')') || is_punct(toks, i, ']') {
            depth = depth.saturating_sub(1);
        } else if is_punct(toks, i, ';') && depth == 0 {
            i += 1;
            break;
        }
        i += 1;
    }
    table.statics.push(StaticDecl {
        name,
        line,
        pos,
        is_mut,
        ty,
        thread_local,
    });
    i
}

fn parse_type(
    toks: &[Tok],
    start: usize,
    hi: usize,
    ctx: &MarkerCtx,
    table: &mut ItemTable,
) -> usize {
    let kind = match word_at(toks, start) {
        Some("struct") => TypeKind::Struct,
        Some("enum") => TypeKind::Enum,
        _ => TypeKind::Union,
    };
    let line = toks[start].line;
    let pos = toks[start].pos;
    let mut i = start + 1;
    let Some(name) = word_at(toks, i) else {
        return i;
    };
    let name = name.to_string();
    i += 1;
    if is_punct(toks, i, '<') {
        i = skip_generics(toks, i, hi);
    }
    let mut fields = Vec::new();
    // Tuple struct: `struct Name(T, U);`
    if kind == TypeKind::Struct && is_punct(toks, i, '(') {
        let end = skip_balanced(toks, i, hi, '(', ')');
        parse_tuple_fields(toks, i + 1, end.saturating_sub(1), "", &mut fields);
        i = end;
        while i < hi && !is_punct(toks, i, ';') {
            i += 1;
        }
        i += 1;
    } else {
        // Skip a where clause to the body (or a unit struct's `;`).
        while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
            i += 1;
        }
        if is_punct(toks, i, '{') {
            let end = skip_balanced(toks, i, hi, '{', '}');
            match kind {
                TypeKind::Enum => {
                    parse_variants(toks, i + 1, end.saturating_sub(1), &mut fields);
                }
                _ => parse_named_fields(toks, i + 1, end.saturating_sub(1), "", &mut fields),
            }
            i = end;
        } else {
            i += 1;
        }
    }
    let shard_state = ctx.attached(&ctx.shard_state, line);
    table.types.push(TypeDef {
        name,
        kind,
        line,
        pos,
        fields,
        shard_state,
    });
    i
}

/// `name: Type, …` fields inside `{ }`. `prefix` is `Variant.` for enum
/// struct-variants, empty otherwise.
fn parse_named_fields(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    prefix: &str,
    fields: &mut Vec<FieldDef>,
) {
    let mut i = lo;
    while i < hi {
        if is_punct(toks, i, '#') {
            i += 1;
            if is_punct(toks, i, '[') {
                i = skip_balanced(toks, i, hi, '[', ']');
            }
            continue;
        }
        if word_at(toks, i) == Some("pub") {
            i += 1;
            if is_punct(toks, i, '(') {
                i = skip_balanced(toks, i, hi, '(', ')');
            }
            continue;
        }
        let Some(name) = word_at(toks, i) else {
            i += 1;
            continue;
        };
        let name = name.to_string();
        let line = toks[i].line;
        i += 1;
        if !is_punct(toks, i, ':') {
            continue;
        }
        let (ty, at) = collect_type(toks, i + 1, hi, &[',']);
        fields.push(FieldDef {
            name: format!("{prefix}{name}"),
            ty,
            line,
        });
        i = at + 1;
    }
}

/// `T, U, …` positional fields inside `( )`, named by index.
fn parse_tuple_fields(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    prefix: &str,
    fields: &mut Vec<FieldDef>,
) {
    let mut i = lo;
    let mut index = 0usize;
    while i < hi {
        if is_punct(toks, i, '#') {
            i += 1;
            if is_punct(toks, i, '[') {
                i = skip_balanced(toks, i, hi, '[', ']');
            }
            continue;
        }
        if word_at(toks, i) == Some("pub") {
            i += 1;
            if is_punct(toks, i, '(') {
                i = skip_balanced(toks, i, hi, '(', ')');
            }
            continue;
        }
        let line = toks[i].line;
        let (ty, at) = collect_type(toks, i, hi, &[',']);
        if !ty.is_empty() {
            fields.push(FieldDef {
                name: format!("{prefix}{index}"),
                ty,
                line,
            });
            index += 1;
        }
        i = at.max(i) + 1;
    }
}

/// Enum variants, flattening each variant's payload into the field list.
fn parse_variants(toks: &[Tok], lo: usize, hi: usize, fields: &mut Vec<FieldDef>) {
    let mut i = lo;
    while i < hi {
        if is_punct(toks, i, '#') {
            i += 1;
            if is_punct(toks, i, '[') {
                i = skip_balanced(toks, i, hi, '[', ']');
            }
            continue;
        }
        let Some(variant) = word_at(toks, i) else {
            i += 1;
            continue;
        };
        let variant = variant.to_string();
        i += 1;
        if is_punct(toks, i, '(') {
            let end = skip_balanced(toks, i, hi, '(', ')');
            parse_tuple_fields(
                toks,
                i + 1,
                end.saturating_sub(1),
                &format!("{variant}."),
                fields,
            );
            i = end;
        } else if is_punct(toks, i, '{') {
            let end = skip_balanced(toks, i, hi, '{', '}');
            parse_named_fields(
                toks,
                i + 1,
                end.saturating_sub(1),
                &format!("{variant}."),
                fields,
            );
            i = end;
        } else if is_punct(toks, i, '=') {
            // Discriminant: skip the expression to the next `,`.
            while i < hi && !is_punct(toks, i, ',') {
                i += 1;
            }
        }
        if is_punct(toks, i, ',') {
            i += 1;
        }
    }
}

fn parse_fn(
    toks: &[Tok],
    start: usize,
    hi: usize,
    ctx: &MarkerCtx,
    table: &mut ItemTable,
) -> usize {
    let line = toks[start].line;
    let pos = toks[start].pos;
    let mut i = start + 1;
    let Some(name) = word_at(toks, i) else {
        return i;
    };
    let name = name.to_string();
    i += 1;
    if is_punct(toks, i, '<') {
        i = skip_generics(toks, i, hi);
    }
    let mut params = Vec::new();
    if is_punct(toks, i, '(') {
        let end = skip_balanced(toks, i, hi, '(', ')');
        parse_params(toks, i + 1, end.saturating_sub(1), &mut params);
        i = end;
    }
    // Return type / where clause, then the body (or `;` for a signature).
    while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
        i += 1;
    }
    let mut body = None;
    if is_punct(toks, i, '{') {
        let end = skip_balanced(toks, i, hi, '{', '}');
        body = Some(BodySpan {
            tok_lo: i,
            tok_hi: end,
            pos: toks[i].pos,
        });
        // Function-local statics (the lazy-init pattern: `static TABLE:
        // OnceLock<…>` inside an accessor fn) are still global shared
        // state — collect them so R8 sees them.
        scan_body_statics(toks, i + 1, end.saturating_sub(1), false, table);
        i = end;
    } else {
        i += 1;
    }
    let hotpath = ctx.attached(&ctx.hotpath, line);
    let hotpath_fatkey = ctx.attached(&ctx.hotpath_fatkey, line);
    table.fns.push(FnDef {
        name,
        line,
        pos,
        params,
        body,
        hotpath,
        hotpath_fatkey,
    });
    i
}

/// Walk a function body collecting `static` and `thread_local!` statement
/// declarations only — expressions are never misread as items because the
/// scan keys on the two keywords alone.
fn scan_body_statics(
    toks: &[Tok],
    lo: usize,
    hi: usize,
    thread_local: bool,
    table: &mut ItemTable,
) {
    let mut i = lo;
    while i < hi {
        match word_at(toks, i) {
            Some("static") if !(i > 0 && is_punct(toks, i - 1, '\'')) => {
                i = parse_static(toks, i, hi, thread_local, table);
            }
            Some("thread_local") if is_punct(toks, i + 1, '!') && is_punct(toks, i + 2, '{') => {
                let end = skip_balanced(toks, i + 2, hi, '{', '}');
                scan_body_statics(toks, i + 3, end.saturating_sub(1), true, table);
                i = end;
            }
            _ => i += 1,
        }
    }
}

/// Parameter list: split on top-level `,`; within each part, bound names
/// are the words before the top-level `:` (minus pattern keywords), the
/// type is everything after it. `self` receivers have no ascription.
fn parse_params(toks: &[Tok], lo: usize, hi: usize, params: &mut Vec<Param>) {
    let mut i = lo;
    while i < hi {
        let part_lo = i;
        // Find the end of this parameter (top-level comma).
        let mut depth = 0isize;
        let mut colon: Option<usize> = None;
        while i < hi {
            let t = &toks[i];
            if !t.word {
                match t.text.chars().next().unwrap_or(' ') {
                    '(' | '[' | '{' | '<' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    '>' if !(i > 0 && is_punct(toks, i - 1, '-')) => depth -= 1,
                    ':' if depth == 0 && colon.is_none() && !is_punct(toks, i + 1, ':') => {
                        colon = Some(i);
                    }
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        let part_hi = i;
        i += 1; // past the comma
        if part_lo >= part_hi {
            continue;
        }
        let (name_hi, ty): (usize, Vec<String>) = match colon {
            Some(c) => (
                c,
                toks[c + 1..part_hi]
                    .iter()
                    .map(|t| t.text.clone())
                    .collect(),
            ),
            None => (part_hi, Vec::new()),
        };
        let names: Vec<String> = toks[part_lo..name_hi]
            .iter()
            .filter(|t| t.word && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone())
            .collect();
        if !names.is_empty() || !ty.is_empty() {
            params.push(Param { names, ty });
        }
    }
}

fn parse_impl(
    toks: &[Tok],
    start: usize,
    hi: usize,
    ctx: &MarkerCtx,
    table: &mut ItemTable,
) -> usize {
    let line = toks[start].line;
    let mut i = start + 1;
    if is_punct(toks, i, '<') {
        i = skip_generics(toks, i, hi);
    }
    // Collect header words up to the body; `impl Trait for Type` names the
    // type after `for`, `impl Type` names it directly.
    let mut first: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
        if is_punct(toks, i, '<') {
            i = skip_generics(toks, i, hi);
            continue;
        }
        if let Some(w) = word_at(toks, i) {
            if w == "for" {
                saw_for = true;
            } else if w == "where" {
                break;
            } else if saw_for {
                after_for.get_or_insert_with(|| w.to_string());
            } else {
                first.get_or_insert_with(|| w.to_string());
            }
        }
        i += 1;
    }
    while i < hi && !is_punct(toks, i, '{') && !is_punct(toks, i, ';') {
        i += 1;
    }
    if let Some(ty) = after_for.or(first) {
        table.impls.push(ImplBlock { ty, line });
    }
    if is_punct(toks, i, '{') {
        let end = skip_balanced(toks, i, hi, '{', '}');
        parse_range(toks, i + 1, end.saturating_sub(1), false, ctx, table);
        return end;
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn table(src: &str) -> ItemTable {
        parse(&lexer::mask(src)).1
    }

    #[test]
    fn uses_reduce_to_root_segments() {
        let t = table("use std::collections::BTreeMap;\nuse crate::engine::{NetSim, Ev};\nuse netsim::NetSim;\n");
        let roots: Vec<&str> = t.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, ["std", "crate", "netsim"]);
        assert_eq!(t.uses[2].line, 3);
    }

    #[test]
    fn statics_and_thread_locals() {
        let src = "\
static mut COUNTER: u64 = 0;
static NAME: &str = \"x\";
thread_local! {
    static CACHE: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}
";
        let t = table(src);
        assert_eq!(t.statics.len(), 3);
        assert!(t.statics[0].is_mut);
        assert_eq!(t.statics[0].name, "COUNTER");
        assert!(!t.statics[1].is_mut);
        assert!(t.statics[2].thread_local);
        assert_eq!(t.statics[2].name, "CACHE");
        assert!(t.statics[2].ty.contains(&"RefCell".to_string()));
        assert_eq!(t.statics[2].line, 4);
    }

    #[test]
    fn static_lifetimes_are_not_declarations() {
        let t = table("fn f(x: &'static str) -> &'static str { x }\n");
        assert!(t.statics.is_empty());
        assert_eq!(t.fns.len(), 1);
    }

    #[test]
    fn struct_fields_with_generics() {
        let src = "\
pub struct Slot {
    pub host: Option<Box<dyn Host>>,
    nat: BTreeMap<HostAddr, u64>,
}
";
        let t = table(src);
        assert_eq!(t.types.len(), 1);
        let ty = &t.types[0];
        assert_eq!(ty.name, "Slot");
        assert_eq!(ty.fields.len(), 2);
        assert_eq!(ty.fields[0].name, "host");
        assert!(ty.fields[1].ty.contains(&"BTreeMap".to_string()));
        assert_eq!(ty.fields[1].line, 3);
    }

    #[test]
    fn tuple_structs_and_enums() {
        let src = "\
struct Pair(u8, Rc<[u8]>);
enum Ev {
    Timer { at: u64 },
    Udp(HostAddr, Payload),
    Quit,
}
";
        let t = table(src);
        assert_eq!(t.types.len(), 2);
        let pair = &t.types[0];
        assert_eq!(pair.fields.len(), 2);
        assert_eq!(pair.fields[1].name, "1");
        assert!(pair.fields[1].ty.contains(&"Rc".to_string()));
        let ev = &t.types[1];
        let names: Vec<&str> = ev.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["Timer.at", "Udp.0", "Udp.1"]);
    }

    #[test]
    fn fns_params_and_bodies() {
        let src = "\
impl NetSim {
    pub fn with_host(&mut self, addr: HostAddr, f: impl FnOnce(&mut Ctx)) -> bool {
        let x = 1;
        x > 0
    }
}
fn free(seed: u64) {}
fn sig_only(x: u8);
";
        let t = table(src);
        assert_eq!(t.impls.len(), 1);
        assert_eq!(t.impls[0].ty, "NetSim");
        assert_eq!(t.fns.len(), 3);
        let wh = &t.fns[0];
        assert_eq!(wh.name, "with_host");
        assert!(wh.body.is_some());
        let param_names: Vec<String> = wh.params.iter().flat_map(|p| p.names.clone()).collect();
        assert_eq!(param_names, ["self", "addr", "f"]);
        assert!(t.fns[2].body.is_none());
    }

    #[test]
    fn markers_attach_through_attrs_and_comments() {
        let src = "\
// hotpath
#[inline]
pub fn dispatch(&mut self) {}

// shard-state
// carried across worker boundaries
#[derive(Clone)]
struct Slot { x: u8 }

fn cold() {}

struct Plain { y: u8 }
";
        let t = table(src);
        assert!(t.fns[0].hotpath);
        assert!(!t.fns[1].hotpath);
        assert!(t.types[0].shard_state);
        assert!(!t.types[1].shard_state);
    }

    #[test]
    fn marker_does_not_leak_past_code_lines() {
        let src = "\
// hotpath
fn hot() {}
fn also_after() {}
";
        let t = table(src);
        assert!(t.fns[0].hotpath);
        assert!(!t.fns[1].hotpath);
    }

    #[test]
    fn trailing_marker_on_fn_line() {
        let src = "fn hot() { // hotpath\n}\n";
        let t = table(src);
        assert!(t.fns[0].hotpath);
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "\
macro_rules! m {
    ($x:ident) => { static FAKE: u8 = 0; };
}
static REAL: u8 = 0;
";
        let t = table(src);
        assert_eq!(t.statics.len(), 1);
        assert_eq!(t.statics[0].name, "REAL");
    }
}
