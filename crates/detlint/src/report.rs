//! The machine-readable report: a deterministic JSON serialization of a
//! scan (consumed by `scripts/ci.sh`) plus the tiny parser and summary
//! renderer the `--report` mode uses to read it back.
//!
//! Determinism is load-bearing: CI emits the report twice and fails on any
//! byte difference, which pins the whole analysis pipeline — file
//! collection order, rule evaluation, inventory sorting — as
//! order-deterministic. Nothing here reads a clock, a map with randomized
//! iteration, or an environment variable.

use crate::rules::{self, Rule};
use crate::scan::Violation;
use crate::semantic::ShardType;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Format version of the JSON report (and of `detlint.baseline` keys).
pub const FORMAT_VERSION: u64 = 2;

/// A full scan result: violations split against the baseline, plus the R11
/// shard-state inventory.
#[derive(Debug, Clone)]
pub struct Report {
    pub new: Vec<Violation>,
    pub baselined: Vec<Violation>,
    pub shard_state: Vec<ShardType>,
}

impl Report {
    /// New-violation counts per rule, every rule present.
    pub fn summary(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            rules::ALL.iter().map(|r| (r.id(), 0)).collect();
        for violation in &self.new {
            *counts.entry(violation.rule.id()).or_insert(0) += 1;
        }
        counts
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Serialize the report. Byte-identical across runs on identical trees.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"format\": {FORMAT_VERSION},");
    out.push_str("  \"summary\": {");
    let summary = report.summary();
    for (i, rule) in rules::ALL.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "\"{}\": {}",
            rule.id(),
            summary.get(rule.id()).copied().unwrap_or(0)
        );
    }
    out.push_str("},\n");
    render_violations(&mut out, "new", &report.new);
    out.push_str(",\n");
    render_violations(&mut out, "baselined", &report.baselined);
    out.push_str(",\n");
    render_shard_state(&mut out, &report.shard_state);
    out.push_str("\n}\n");
    out
}

fn render_violations(out: &mut String, key: &str, violations: &[Violation]) {
    let _ = write!(out, "  \"{key}\": [");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"code\": {}, \"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}",
            json_string(v.code),
            json_string(v.rule.id()),
            json_string(&v.path),
            v.line,
            json_string(&v.message)
        );
    }
    if violations.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

fn render_shard_state(out: &mut String, inventory: &[ShardType]) {
    out.push_str("  \"shard_state\": [");
    for (i, ty) in inventory.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        let _ = write!(
            out,
            "    {{\"type\": {}, \"path\": {}, \"line\": {}, \"fields\": [",
            json_string(&ty.name),
            json_string(&ty.path),
            ty.line
        );
        for (j, field) in ty.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\n      {{\"name\": {}, \"type\": {}, \"line\": {}, \"banned\": {}, \
                 \"via\": {}, \"justified\": {}}}",
                json_string(&field.name),
                json_string(&field.ty),
                field.line,
                field
                    .banned
                    .as_deref()
                    .map(json_string)
                    .unwrap_or_else(|| "null".to_string()),
                field
                    .via
                    .as_deref()
                    .map(json_string)
                    .unwrap_or_else(|| "null".to_string()),
                field.justified
            );
        }
        if ty.fields.is_empty() {
            out.push_str("]}");
        } else {
            out.push_str("\n    ]}");
        }
    }
    if inventory.is_empty() {
        out.push(']');
    } else {
        out.push_str("\n  ]");
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// Parser (for --report: CI consumes the JSON artifact, not human output)
// ---------------------------------------------------------------------------

/// Minimal JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a char offset.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while chars.get(*pos).is_some_and(|c| c.is_whitespace()) {
        *pos += 1;
    }
}

fn expect(chars: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(chars, pos);
    if chars.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                expect(chars, pos, ':')?;
                let value = parse_value(chars, pos)?;
                entries.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(chars, pos)?)),
        Some('t') if chars[*pos..].starts_with(&['t', 'r', 'u', 'e']) => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some('f') if chars[*pos..].starts_with(&['f', 'a', 'l', 's', 'e']) => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some('n') if chars[*pos..].starts_with(&['n', 'u', 'l', 'l']) => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while chars
                .get(*pos)
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at offset {start}"))
        }
        _ => Err(format!("unexpected input at offset {pos}", pos = *pos)),
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = chars
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------------------
// Summary table
// ---------------------------------------------------------------------------

/// What `--report` extracts from a parsed report file.
#[derive(Debug)]
pub struct ParsedReport {
    /// Per-rule new-violation counts, in rule order.
    pub counts: Vec<(String, usize)>,
    /// Offending `(code, path, line)` triples of new violations.
    pub offending: Vec<(String, String, u64)>,
    pub baselined: usize,
    pub shard_types: usize,
}

/// Interpret a parsed JSON document as a detlint report.
pub fn read_report(doc: &Json) -> Result<ParsedReport, String> {
    let format = doc
        .get("format")
        .and_then(Json::as_u64)
        .ok_or("report has no `format` field")?;
    if format != FORMAT_VERSION {
        return Err(format!(
            "report format {format} unsupported (this detlint reads format \
             {FORMAT_VERSION}); regenerate with `cargo run -p detlint -- --json`"
        ));
    }
    let summary = doc.get("summary").ok_or("report has no `summary`")?;
    let mut counts = Vec::new();
    for rule in rules::ALL {
        let count = summary
            .get(rule.id())
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("summary missing rule {}", rule.id()))?;
        counts.push((rule.id().to_string(), count as usize));
    }
    let mut offending = Vec::new();
    for entry in doc
        .get("new")
        .and_then(Json::as_arr)
        .ok_or("report has no `new` array")?
    {
        let code = entry
            .get("code")
            .and_then(Json::as_str)
            .ok_or("violation entry has no `code`")?;
        let path = entry.get("path").and_then(Json::as_str).unwrap_or("");
        let line = entry.get("line").and_then(Json::as_u64).unwrap_or(0);
        offending.push((code.to_string(), path.to_string(), line));
    }
    let baselined = doc
        .get("baselined")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    let shard_types = doc
        .get("shard_state")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    Ok(ParsedReport {
        counts,
        offending,
        baselined,
        shard_types,
    })
}

/// Render the per-rule summary table `--report` prints.
pub fn render_summary(parsed: &ParsedReport) -> String {
    let mut out = String::new();
    out.push_str("rule  new  title\n");
    out.push_str("----  ---  -----\n");
    for (rule_id, count) in &parsed.counts {
        let title = Rule::parse(rule_id)
            .map(Rule::title)
            .unwrap_or("(unknown rule)");
        let _ = writeln!(out, "{rule_id:<4}  {count:>3}  {title}");
    }
    let total: usize = parsed.counts.iter().map(|(_, c)| *c).sum();
    let _ = writeln!(
        out,
        "----  ---\ntotal {total:>3}  ({} baselined, {} shard-state type{} in inventory)",
        parsed.baselined,
        parsed.shard_types,
        if parsed.shard_types == 1 { "" } else { "s" },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantic::ShardField;

    fn sample_report() -> Report {
        Report {
            new: vec![Violation {
                rule: Rule::R8,
                code: "R8.static_mut",
                path: "crates/x/src/a.rs".to_string(),
                line: 3,
                message: "`static mut X` is shared mutable state".to_string(),
            }],
            baselined: vec![],
            shard_state: vec![ShardType {
                path: "crates/netsim/src/payload.rs".to_string(),
                line: 10,
                name: "Payload".to_string(),
                fields: vec![ShardField {
                    name: "data".to_string(),
                    ty: "Rc<[u8]>".to_string(),
                    line: 12,
                    banned: Some("Rc".to_string()),
                    via: None,
                    justified: true,
                }],
            }],
        }
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let rendered = render_json(&sample_report());
        let doc = parse_json(&rendered).expect("self-rendered JSON parses");
        let parsed = read_report(&doc).expect("self-rendered JSON reads back");
        assert_eq!(parsed.offending.len(), 1);
        assert_eq!(parsed.offending[0].0, "R8.static_mut");
        assert_eq!(parsed.shard_types, 1);
        let r8 = parsed.counts.iter().find(|(r, _)| r == "R8").unwrap();
        assert_eq!(r8.1, 1);
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_json(&sample_report());
        let b = render_json(&sample_report());
        assert_eq!(a, b);
    }

    #[test]
    fn string_escaping_survives_roundtrip() {
        let escaped = json_string("quote \" backslash \\ newline \n tab \t");
        let parsed = parse_json(&escaped).unwrap();
        assert_eq!(
            parsed.as_str().unwrap(),
            "quote \" backslash \\ newline \n tab \t"
        );
    }

    #[test]
    fn stale_format_fails_loudly() {
        let doc = parse_json("{\"format\": 1, \"summary\": {}}").unwrap();
        let err = read_report(&doc).unwrap_err();
        assert!(err.contains("format 1 unsupported"), "{err}");
    }

    #[test]
    fn summary_table_lists_every_rule() {
        let rendered = render_json(&sample_report());
        let parsed = read_report(&parse_json(&rendered).unwrap()).unwrap();
        let table = render_summary(&parsed);
        for rule in rules::ALL {
            assert!(table.contains(rule.id()), "missing {}", rule.id());
        }
        assert!(table.contains("total   1"));
    }
}
