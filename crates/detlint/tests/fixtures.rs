//! Fixture self-test: every rule R1–R13 has one minimal passing and one
//! minimal failing fixture under `fixtures/{pass,fail}/`, and the failing
//! fixture produces exactly the expected diagnostic codes at the expected
//! lines. This pins both halves of each rule: that it fires, and that its
//! documented escape hatch / compliant pattern silences it.
//!
//! Fixtures are scanned under a *virtual* repo-relative path (`vpath`) so
//! path-scoped rules (R1 allowlist, R5/R7 crate scope, R8/R9 library
//! scope, R10 layering) behave exactly as in a workspace scan. The real
//! `fixtures/` directory itself is excluded from workspace scans.

use detlint::{rules, scan_manifest_source, scan_rust_source, Violation};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

struct Fixture {
    rule: &'static str,
    /// Fixture file name under `fixtures/{pass,fail}/`.
    file: &'static str,
    /// Virtual repo-relative path the fixture is scanned as.
    vpath: &'static str,
    /// Exact `(code, line)` set the fail fixture must produce.
    expected_fail: &'static [(&'static str, usize)],
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        rule: "R1",
        file: "r1.rs",
        vpath: "crates/netsim/src/engine.rs",
        expected_fail: &[("R1.wall_clock", 3)],
    },
    Fixture {
        rule: "R2",
        file: "r2.rs",
        vpath: "crates/netsim/src/rng.rs",
        expected_fail: &[("R2.ambient_entropy", 3), ("R2.ambient_entropy", 4)],
    },
    Fixture {
        rule: "R3",
        file: "r3.rs",
        vpath: "crates/nodefinder/src/crawl.rs",
        expected_fail: &[("R3.hash_collection", 2), ("R3.hash_collection", 3)],
    },
    Fixture {
        rule: "R4",
        file: "r4.rs",
        vpath: "crates/rlp/src/raw.rs",
        expected_fail: &[("R4.unsafe_code", 3)],
    },
    Fixture {
        rule: "R5",
        file: "r5.rs",
        vpath: "crates/rlp/src/decode.rs",
        expected_fail: &[("R5.panic_escape", 3)],
    },
    Fixture {
        rule: "R6",
        file: "r6.toml",
        vpath: "crates/x/Cargo.toml",
        expected_fail: &[
            ("R6.registry_dep", 7),
            ("R6.git_dep", 8),
            ("R6.abs_path", 9),
            ("R6.escaping_path", 10),
        ],
    },
    Fixture {
        rule: "R7",
        file: "r7.rs",
        vpath: "crates/rlp/src/decode.rs",
        expected_fail: &[
            ("R7.ensure_exact", 3),
            ("R7.item_count", 4),
            ("R7.trailing_bytes", 5),
        ],
    },
    Fixture {
        rule: "R8",
        file: "r8.rs",
        vpath: "crates/netsim/src/state.rs",
        expected_fail: &[
            ("R8.static_mut", 2),
            ("R8.interior_mut", 3),
            ("R8.thread_local_cell", 5),
        ],
    },
    Fixture {
        rule: "R9",
        file: "r9.rs",
        vpath: "crates/netsim/src/rng.rs",
        expected_fail: &[("R9.literal_seed", 5), ("R9.ambient_seed", 11)],
    },
    Fixture {
        rule: "R10",
        file: "r10.rs",
        vpath: "crates/rlp/src/lib.rs",
        expected_fail: &[("R10.layer_use", 2), ("R10.layer_use", 3)],
    },
    Fixture {
        rule: "R11",
        file: "r11.rs",
        vpath: "crates/netsim/src/shard.rs",
        expected_fail: &[
            ("R11.shard_field", 7),
            ("R11.shard_field", 8),
            ("R11.shard_field", 9),
        ],
    },
    Fixture {
        rule: "R12",
        file: "r12.rs",
        vpath: "crates/netsim/src/hot.rs",
        expected_fail: &[
            ("R12.format", 4),
            ("R12.vec_new", 5),
            ("R12.vec_macro", 6),
            ("R12.to_string", 7),
            ("R12.clone", 8),
        ],
    },
    Fixture {
        rule: "R13",
        file: "r13.rs",
        vpath: "crates/nodefinder/src/crawl.rs",
        expected_fail: &[
            ("R13.btreemap", 4),
            ("R13.btreeset", 5),
            ("R13.btreemap", 6),
        ],
    },
];

fn scan_fixture(kind: &str, fixture: &Fixture) -> Vec<Violation> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(fixture.file);
    let source = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    if fixture.file.ends_with(".toml") {
        scan_manifest_source(fixture.vpath, &source)
    } else {
        scan_rust_source(fixture.vpath, &source)
    }
}

#[test]
fn every_rule_has_both_fixtures() {
    let covered: BTreeSet<&str> = FIXTURES.iter().map(|f| f.rule).collect();
    for rule in rules::ALL {
        assert!(
            covered.contains(rule.id()),
            "rule {} has no fixture entry",
            rule.id()
        );
    }
    assert_eq!(covered.len(), rules::ALL.len(), "stray fixture entries");
}

#[test]
fn fail_fixtures_produce_exactly_the_expected_codes() {
    for fixture in FIXTURES {
        let got: BTreeSet<(String, usize)> = scan_fixture("fail", fixture)
            .into_iter()
            .map(|v| (v.code.to_string(), v.line))
            .collect();
        let want: BTreeSet<(String, usize)> = fixture
            .expected_fail
            .iter()
            .map(|&(code, line)| (code.to_string(), line))
            .collect();
        assert_eq!(
            got, want,
            "fail fixture for {} ({})",
            fixture.rule, fixture.file
        );
        // Every expected code belongs to the rule under test: the fixture
        // must not smuggle in violations of other rules.
        for (code, _) in &want {
            assert_eq!(
                code.split('.').next(),
                Some(fixture.rule),
                "fixture {} expects a foreign code {code}",
                fixture.rule
            );
        }
    }
}

#[test]
fn pass_fixtures_are_clean() {
    for fixture in FIXTURES {
        let got = scan_fixture("pass", fixture);
        assert!(
            got.is_empty(),
            "pass fixture for {} ({}) is not clean: {:?}",
            fixture.rule,
            fixture.file,
            got.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        );
    }
}

#[test]
fn fail_fixtures_never_fire_foreign_rules() {
    for fixture in FIXTURES {
        for violation in scan_fixture("fail", fixture) {
            assert_eq!(
                violation.rule.id(),
                fixture.rule,
                "fail fixture for {} fired {}: {violation}",
                fixture.rule,
                violation.code
            );
        }
    }
}
