//! Workspace-graph integration tests: the graph built from the *real*
//! repository manifests must match the layering constants R10 enforces,
//! and the builder/cycle machinery must behave on synthetic graphs.

use detlint::graph::{WorkspaceGraph, PROTOCOL_CRATES, UPPER_LAYERS, WORKSPACE_CRATES};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Load every Cargo.toml in the repository, as the scanner does.
fn real_graph() -> WorkspaceGraph {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut manifests = Vec::new();
    collect_manifests(&root, &root, &mut manifests);
    manifests.sort();
    let manifests: Vec<(String, String)> = manifests
        .into_iter()
        .map(|rel| {
            let text = fs::read_to_string(root.join(&rel)).expect("read manifest");
            (rel.to_string_lossy().replace('\\', "/"), text)
        })
        .collect();
    WorkspaceGraph::from_manifests(&manifests)
}

fn collect_manifests(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy().to_string();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || path.ends_with("detlint/fixtures") {
                continue;
            }
            collect_manifests(root, &path, out);
        } else if name == "Cargo.toml" {
            out.push(path.strip_prefix(root).expect("relative").to_path_buf());
        }
    }
}

#[test]
fn workspace_crates_constant_matches_reality() {
    let graph = real_graph();
    let under_crates: BTreeSet<&str> = graph
        .crates
        .values()
        .filter(|node| node.dir.starts_with("crates/"))
        .map(|node| node.name.as_str())
        .collect();
    let expected: BTreeSet<&str> = WORKSPACE_CRATES.iter().copied().collect();
    assert_eq!(
        under_crates, expected,
        "graph::WORKSPACE_CRATES is stale — update it with the crate listing"
    );
}

#[test]
fn layering_matrix_matches_cargo_toml_reality() {
    let graph = real_graph();
    // The matrix: for every (crate, dep) edge among workspace members,
    // protocol crates must never reach an upper layer, and obs reaches
    // nothing in-workspace.
    for name in WORKSPACE_CRATES {
        let deps: BTreeSet<&str> = graph
            .resolved_deps(name)
            .into_iter()
            .map(|(node, _)| node.name.as_str())
            .collect();
        if PROTOCOL_CRATES.contains(&name) {
            for upper in UPPER_LAYERS {
                assert!(
                    !deps.contains(upper),
                    "{name} (protocol) depends on {upper} (upper layer)"
                );
            }
        }
        if name == "obs" {
            let workspace_deps: Vec<&str> = deps
                .iter()
                .copied()
                .filter(|d| WORKSPACE_CRATES.contains(d))
                .collect();
            assert!(
                workspace_deps.is_empty(),
                "obs must depend on nothing in-workspace, found {workspace_deps:?}"
            );
        }
    }
    // And the real tree is R10-clean at the manifest level.
    let violations = graph.layering_violations();
    assert!(
        violations.is_empty(),
        "{:?}",
        violations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );
}

#[test]
fn real_workspace_has_no_dependency_cycles() {
    let cycles = real_graph().cycles();
    assert!(cycles.is_empty(), "dependency cycles: {cycles:?}");
}

#[test]
fn path_dep_resolution_follows_relative_paths() {
    let manifests = vec![
        (
            "crates/a/Cargo.toml".to_string(),
            "[package]\nname = \"a\"\n[dependencies]\nb = { path = \"../b\" }\n".to_string(),
        ),
        (
            "crates/b/Cargo.toml".to_string(),
            "[package]\nname = \"b\"\n".to_string(),
        ),
    ];
    let graph = WorkspaceGraph::from_manifests(&manifests);
    let deps = graph.resolved_deps("a");
    assert_eq!(deps.len(), 1);
    assert_eq!(deps[0].0.name, "b");
    assert_eq!(deps[0].0.dir, "crates/b");
}

#[test]
fn synthetic_cycles_are_detected_and_dev_edges_exempt() {
    // a -> b -> c -> a is a cycle.
    let mut graph = WorkspaceGraph::default();
    graph.add_crate("a", "crates/a");
    graph.add_crate("b", "crates/b");
    graph.add_crate("c", "crates/c");
    graph.add_path_dep("a", "b", 3, false);
    graph.add_path_dep("b", "c", 3, false);
    graph.add_path_dep("c", "a", 3, false);
    let cycles = graph.cycles();
    assert_eq!(cycles.len(), 1, "{cycles:?}");
    let cycle = &cycles[0];
    assert_eq!(cycle.first(), cycle.last());
    assert_eq!(cycle.len(), 4);

    // The same shape through a dev-dependency edge is cargo-legal.
    let mut graph = WorkspaceGraph::default();
    graph.add_crate("a", "crates/a");
    graph.add_crate("b", "crates/b");
    graph.add_path_dep("a", "b", 3, false);
    graph.add_path_dep("b", "a", 3, true);
    assert!(graph.cycles().is_empty());
}
