// R7 pass: lenient reject/tolerate split, or justified strictness.
fn decode(r: &Rlp<'_>) -> Result<u64, RlpError> {
    if r.item_count()? < 4 {
        return Err(RlpError::TooFewItems);
    }
    // conformance: strict -- checksum trailer is whole-buffer by spec
    r.ensure_exact()?;
    Ok(0)
}
