// R3 pass: ordered collections, or a justified probe-only map.
use std::collections::BTreeMap;
// detlint: order-insensitive -- probed by key, never iterated
use std::collections::HashMap;
