// R2 pass: all randomness flows from the experiment seed.
use rand::{rngs::StdRng, Rng, SeedableRng};

fn roll(seed: u64) -> u8 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}
