// R1 pass: simulated time is threaded in; wall-clock reads are justified.
fn elapsed(now_ms: u64, start_ms: u64) -> u64 {
    now_ms - start_ms
}

fn wall_profile() -> u64 {
    // detlint: allow(R1) -- bench-only wall profiling, never in sim results
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
