// R4 pass: the forbid header plus safe indexing.
#![forbid(unsafe_code)]

fn read(bytes: &[u8]) -> Option<u8> {
    bytes.first().copied()
}
