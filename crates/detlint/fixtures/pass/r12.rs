// R12 pass: the hot path reuses buffers; Payload clones are refcount
// bumps; cold functions may allocate freely.
// hotpath -- runs once per simulated event
fn dispatch(ev: u64, bytes: Payload, buf: &mut Vec<u8>) -> Payload {
    buf.push(ev as u8);
    bytes.clone()
}

fn cold_label(ev: u64) -> String {
    format!("ev-{ev}")
}
