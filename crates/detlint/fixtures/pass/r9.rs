// R9 pass: every RNG derives from a seed parameter, directly or through
// a let-chain or closure parameter.
use rand::{rngs::StdRng, Rng, SeedableRng};

fn jitter(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.gen()
}

fn fork(seed: u64, lane: u64) -> StdRng {
    let mixed = seed ^ (lane << 32);
    StdRng::seed_from_u64(mixed)
}

fn sealer() -> impl Fn(u64) -> StdRng {
    |seed: u64| StdRng::seed_from_u64(seed)
}
