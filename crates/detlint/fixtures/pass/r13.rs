// R13 pass: hot fns probe compact-id dense tables; the fat-key marker
// variant justifies an order-sensitive scan; cold fns and scalar-keyed
// trees are free; a line allowance covers a transitional site.
// hotpath -- runs once per simulated event
fn dispatch(seen: &mut SeenTable, cid: CompactId, now: u64) {
    seen.note(cid, now);
}

// hotpath: fat-key -- the stale scan must iterate in NodeId order for
// byte-identical exports; it runs once per static tick, not per event
fn stale_scan(entries: &BTreeMap<NodeId, u64>, cutoff: u64) -> usize {
    let live: BTreeSet<NodeId> = BTreeSet::new();
    entries.len() + live.len() + cutoff as usize
}

// hotpath -- scalar keys compare in one word; R13 is about fat keys
fn overflow_probe(overflow: &BTreeMap<u64, u64>, at: u64) -> bool {
    overflow.contains_key(&at)
}

// hotpath
fn shim(now: u64) -> usize {
    // detlint: allow(R13) -- transitional shim, deleted with the old table
    let m: BTreeMap<NodeId, u64> = BTreeMap::new();
    m.len() + now as usize
}

fn cold_index(nodes: &[NodeRecord]) -> BTreeMap<NodeId, u64> {
    let index: BTreeMap<NodeId, u64> = BTreeMap::new();
    index
}
