// R5 pass: decoders return Result; tests may unwrap.
fn read_u8(bytes: &[u8]) -> Result<u8, ()> {
    bytes.first().copied().ok_or(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn reads_first_byte() {
        assert_eq!(super::read_u8(b"x").unwrap(), b'x');
    }
}
