// R11 pass: shard-state types own their data, or justify the exception.
// shard-state -- per-host record handed between workers
struct HostState {
    id: u64,
    peers: Vec<u64>,
    meta: Option<Box<[u8]>>,
}

// shard-state -- wraps the payload buffer
struct Buf {
    // detlint: allow(R11) -- swapped for Arc in the sharding change itself
    bytes: std::rc::Rc<[u8]>,
}
