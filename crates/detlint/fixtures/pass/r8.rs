// R8 pass: immutable statics, or a justified write-once table.
static LIMIT: u64 = 4096;
// detlint: allow(R8) -- write-once table of constants, same value every init
static TABLE: OnceLock<[u8; 32]> = OnceLock::new();
