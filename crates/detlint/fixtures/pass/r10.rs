// R10 pass: protocol crates reach down (std, sibling codecs), never up.
use std::fmt;

use enode::NodeId;

fn describe(id: &NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "{id:?}")
}
