// R1 fail: wall-clock time in simulation code.
fn elapsed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
