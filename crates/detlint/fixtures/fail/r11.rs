// R11 fail: a shard-crossing type holding single-thread shared state.
use std::cell::RefCell;
use std::rc::Rc;

// shard-state -- moves between workers in the sharded engine
struct ConnTable {
    entries: Rc<Vec<u8>>,
    scratch: RefCell<u64>,
    raw: *const u8,
}
