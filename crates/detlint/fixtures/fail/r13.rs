// R13 fail: fat-keyed ordered maps probed on the per-event path.
// hotpath -- runs once per simulated event
fn dispatch(id: NodeId, addr: HostAddr, now: u64) -> usize {
    let seen: BTreeMap<NodeId, u64> = BTreeMap::new();
    let nat: BTreeSet<HostAddr> = BTreeSet::new();
    let routed: BTreeMap<enode::NodeId, u64> = BTreeMap::new();
    seen.len() + nat.len() + routed.len()
}
