// R7 fail: strict trailing-data rejection without justification.
fn decode(r: &Rlp<'_>) -> Result<(), RlpError> {
    r.ensure_exact()?;
    if r.item_count()? != 4 {
        return Err(RlpError::TrailingBytes);
    }
    Ok(())
}
