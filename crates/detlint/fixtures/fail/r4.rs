// R4 fail: unsafe is banned workspace-wide.
fn read(p: *const u8) -> u8 {
    unsafe { *p }
}
