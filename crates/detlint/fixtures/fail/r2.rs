// R2 fail: ambient entropy sources.
fn roll() -> u8 {
    let mut rng = rand::thread_rng();
    let noise: u8 = rand::random();
    noise
}
