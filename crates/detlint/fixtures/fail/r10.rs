// R10 fail: a protocol crate importing the simulation layer.
use netsim::NetSim;
use nodefinder::Crawler;

fn run(sim: &mut NetSim, crawler: &Crawler) {
    let _ = (sim, crawler);
}
