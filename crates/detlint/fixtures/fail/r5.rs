// R5 fail: panic escape in an attacker-facing decoder.
fn read_u8(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap()
}
