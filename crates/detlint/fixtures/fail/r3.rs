// R3 fail: hash collections iterate in random order.
use std::collections::HashMap;
use std::collections::HashSet;
