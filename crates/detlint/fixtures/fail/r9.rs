// R9 fail: seeds pinned or pulled from thin air.
use rand::{rngs::StdRng, Rng, SeedableRng};

fn jitter() -> u64 {
    let mut rng = StdRng::seed_from_u64(42);
    rng.gen()
}

fn fork() -> StdRng {
    let pid = std::process::id() as u64;
    StdRng::seed_from_u64(pid)
}
