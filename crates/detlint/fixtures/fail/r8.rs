// R8 fail: shared mutable state in three flavors.
static mut COUNTER: u64 = 0;
static CACHE: OnceLock<u64> = OnceLock::new();
thread_local! {
    static LOCAL: RefCell<u64> = RefCell::new(0);
}
