// R12 fail: allocation and formatting on the per-event path.
// hotpath -- runs once per simulated event
fn dispatch(ev: u64, label: &str) -> u64 {
    let tag = format!("ev-{ev}");
    let out: Vec<u8> = Vec::new();
    let copy = vec![0u8; 4];
    let owned = label.to_string();
    let dup = owned.clone();
    tag.len() as u64 + out.len() as u64 + copy.len() as u64 + dup.len() as u64
}
