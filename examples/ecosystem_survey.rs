//! Survey the DEVp2p ecosystem the way §6 does: crawl, sanitize, then
//! break the population down by service, network, and client.
//!
//! ```sh
//! cargo run --release --example ecosystem_survey
//! ```

use analysis::clients::client_table;
use analysis::ecosystem::{funnel, networks, services_table};
use analysis::render::count_table;
use ethereum_p2p::prelude::*;
use nodefinder::sanitize;
use std::net::Ipv4Addr;

fn main() {
    // A busier world than the quickstart: spammers included so the §5.4
    // pipeline has something to catch.
    let config = WorldConfig {
        seed: 99,
        n_nodes: 80,
        duration_ms: 6 * 60_000,
        spammer_ips: 1,
        spammer_rotation_ms: 20_000,
        udp_loss: 0.0,
        always_on_fraction: 0.8,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);

    let key = SecretKey::from_bytes(&[55u8; 32]).expect("valid key");
    let crawler = NodeFinder::new(
        key,
        CrawlerConfig {
            static_redial_interval_ms: 90_000,
            ..CrawlerConfig::default()
        },
        world.bootstrap.clone(),
    );
    let addr = HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303);
    let host = world
        .sim
        .add_host(addr, HostMeta::default_cloud(), Box::new(crawler));
    world.sim.schedule_start(host, 0);
    world.sim.run_until(6 * 60_000);

    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .expect("crawler host")
        .into_any()
        .downcast::<NodeFinder>()
        .expect("is a NodeFinder");
    let raw = DataStore::from_log(&crawler.log);

    // §5.4 sanitization before any analysis.
    let params = SanitizeParams {
        short_lived_ms: 60_000,
        min_nodes_per_ip: 3,
        max_generation_interval_ms: 60_000,
    };
    let (store, report) = sanitize(&raw, params);
    println!(
        "sanitization: {} node IDs removed from {} abusive IP(s)\n",
        report.removed_nodes.len(),
        report.abusive_ips.len()
    );

    // §6.1 funnel.
    let f = funnel(&store);
    println!(
        "funnel: {} IDs → {} HELLO → {} STATUS → {} Mainnet ({:.0}% useless)\n",
        f.total_ids,
        f.hello_nodes,
        f.status_nodes,
        f.mainnet_nodes,
        100.0 * f.useless_fraction
    );

    // Table 3: services.
    println!(
        "{}",
        count_table("DEVp2p services", &services_table(&store), 10)
    );

    // Fig 9: networks.
    let nb = networks(&store);
    println!(
        "networks: {} distinct ids, {} distinct genesis hashes",
        nb.distinct_networks, nb.distinct_genesis
    );
    println!("{}", count_table("nodes per network", &nb.per_network, 8));

    // Table 4: clients among Mainnet peers.
    println!(
        "{}",
        count_table("Mainnet clients", &client_table(&store), 8)
    );
}
