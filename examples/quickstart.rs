//! Quickstart: crawl a small simulated DEVp2p world with NodeFinder and
//! print what it learned.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

fn main() {
    // 1. Build a world: 40 nodes sampled from the paper's population
    //    marginals (client mix, networks, NAT, geography), no spammers.
    let config = WorldConfig {
        seed: 7,
        n_nodes: 40,
        duration_ms: 4 * 60_000,
        spammer_ips: 0,
        udp_loss: 0.0,
        always_on_fraction: 0.9,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    println!(
        "world: {} hosts ({} bootstrap), {} ground-truth Mainnet",
        world.sim.host_count(),
        world.bootstrap.len(),
        world.mainnet_nodes().count()
    );

    // 2. Add one NodeFinder instance. It speaks the real protocols:
    //    discv4 over UDP, RLPx + DEVp2p + eth over TCP.
    let key = SecretKey::from_bytes(&[42u8; 32]).expect("valid key");
    let crawler = NodeFinder::new(
        key,
        CrawlerConfig {
            static_redial_interval_ms: 60_000, // compressed 30-minute loop
            ..CrawlerConfig::default()
        },
        world.bootstrap.clone(),
    );
    let addr = HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303);
    let host = world
        .sim
        .add_host(addr, HostMeta::default_cloud(), Box::new(crawler));
    world.sim.schedule_start(host, 0);

    // 3. Run four simulated minutes.
    world.sim.run_until(4 * 60_000);
    println!(
        "simulation: {} events, {} UDP datagrams",
        world.sim.events_processed(),
        world.sim.udp_counters().0
    );

    // 4. Pull the crawler back out and aggregate its logs.
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .expect("crawler host")
        .into_any()
        .downcast::<NodeFinder>()
        .expect("is a NodeFinder");
    let store = DataStore::from_log(&crawler.log);

    println!("\ncrawl results:");
    println!("  node IDs seen      : {}", store.total_ids());
    println!("  HELLO collected    : {}", store.hello_nodes().count());
    println!("  STATUS collected   : {}", store.status_nodes().count());
    println!("  Mainnet classified : {}", store.mainnet_nodes().count());

    println!("\nfirst few peers:");
    for obs in store.hello_nodes().take(5) {
        let hello = obs.hello.as_ref().expect("hello nodes have hellos");
        println!(
            "  {}… {:<42} caps={:?} mainnet={}",
            obs.id.short(),
            hello.client_id,
            hello.capabilities,
            obs.is_mainnet()
        );
    }
}
