//! A §7-style snapshot: measure the Mainnet slice's size, reachability
//! split, geography, and freshness over one window.
//!
//! ```sh
//! cargo run --release --example mainnet_snapshot
//! ```

use analysis::geo::{as_distribution, country_distribution, top_as_share, GeoDb};
use analysis::render::count_table;
use analysis::snapshot::{freshness, latency_cdf, size_comparison};
use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

fn main() {
    let config = WorldConfig {
        seed: 2018,
        n_nodes: 100,
        duration_ms: 8 * 60_000,
        spammer_ips: 0,
        udp_loss: 0.0,
        unreachable_fraction: 0.6,
        always_on_fraction: 0.7,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);

    // Two instances, like a scaled-down version of the paper's thirty.
    let mut hosts = Vec::new();
    for i in 0..2u8 {
        let key = SecretKey::from_bytes(&[60 + i; 32]).expect("valid key");
        let crawler = NodeFinder::new(
            key,
            CrawlerConfig {
                static_redial_interval_ms: 90_000,
                ..CrawlerConfig::default()
            },
            world.bootstrap.clone(),
        );
        let addr = HostAddr::new(Ipv4Addr::new(192, 17, 100, 1 + i), 30303);
        let host = world
            .sim
            .add_host(addr, HostMeta::default_cloud(), Box::new(crawler));
        world.sim.schedule_start(host, 0);
        hosts.push(host);
    }
    world.sim.run_until(8 * 60_000);

    let mut merged = nodefinder::CrawlLog::default();
    for host in hosts {
        let crawler = world
            .sim
            .remove_host_behaviour(host)
            .expect("crawler host")
            .into_any()
            .downcast::<NodeFinder>()
            .expect("is a NodeFinder");
        merged.merge(crawler.log);
    }
    let store = DataStore::from_log(&merged);

    // Size and reachability (Table 6's core comparison).
    let sc = size_comparison(&store);
    println!("snapshot size:");
    println!("  Mainnet nodes (in+out) : {}", sc.nodefinder);
    println!("  …answered our dials    : {}", sc.nodefinder_reachable);
    println!("  …incoming-only (NATed) : {}", sc.nodefinder_unreachable);
    println!(
        "  advantage vs reachable-only crawling: {:.2}×\n",
        sc.advantage_factor
    );

    // Geography / AS (Figs 12–13) via the world-derived Geo database.
    let db = GeoDb::from_world(&world);
    println!(
        "{}",
        count_table("by country", &country_distribution(&store, &db), 8)
    );
    let ases = as_distribution(&store, &db);
    println!("{}", count_table("by AS", &ases, 8));
    println!("top-8 AS share: {:.1}%\n", top_as_share(&ases, 8));

    // Freshness (Fig 14) and latency (Fig 13).
    let f = freshness(&store, 6_000);
    println!(
        "freshness: head≈{}, {:.0}% stale, {} stuck at Byzantium+1",
        f.network_head,
        100.0 * f.stale_fraction,
        f.stuck_at_byzantium
    );
    let lat = latency_cdf(&store);
    if !lat.is_empty() {
        println!(
            "latency: p50={}ms p90={}ms over {} samples",
            lat.quantile(0.5),
            lat.quantile(0.9),
            lat.len()
        );
    }
}
