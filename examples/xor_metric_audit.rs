//! Audit the Geth-vs-Parity node-distance divergence (§6.3) directly
//! against the library's Kademlia primitives — no network required.
//!
//! ```sh
//! cargo run --release --example xor_metric_audit
//! ```

use ethereum_p2p::prelude::*;
use kad::{log_distance_geth, log_distance_parity, metrics_agree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(1804);

    // 1. A concrete pair: the same two node IDs measured by both clients.
    let a = NodeId(rng.gen::<[u8; 32]>().repeat(2).try_into().unwrap());
    let b = NodeId(rng.gen::<[u8; 32]>().repeat(2).try_into().unwrap());
    let (ha, hb) = (a.kad_hash(), b.kad_hash());
    println!("node A {}…  node B {}…", a.short(), b.short());
    println!("  geth distance   : {}", log_distance_geth(&ha, &hb));
    println!("  parity distance : {}", log_distance_parity(&ha, &hb));
    println!("  metrics agree?  : {}\n", metrics_agree(&ha, &hb));

    // 2. Equation 1: agreement happens exactly when XOR = 2^k − 1.
    let x = [0u8; 32];
    let mut y = [0u8; 32];
    y[31] = 0x0f; // XOR = 0b1111 = 2^4 − 1
    println!("constructed XOR = 2^4−1:");
    println!(
        "  geth {} vs parity {} — agree: {}\n",
        log_distance_geth(&x, &y),
        log_distance_parity(&x, &y),
        metrics_agree(&x, &y)
    );

    // 3. What it does to routing: fill one table per metric with the same
    //    500 random nodes and compare who each returns as "closest".
    let records: Vec<NodeRecord> = (0..500)
        .map(|_| {
            let mut id = [0u8; 64];
            rng.fill(&mut id[..]);
            NodeRecord::new(
                NodeId(id),
                Endpoint::new(std::net::Ipv4Addr::new(10, 0, 0, 1), 30303),
            )
        })
        .collect();
    let local = NodeId([0xEEu8; 64]);
    let mut geth_table = RoutingTable::new(local, Metric::GethLog2);
    let mut parity_table = RoutingTable::new(local, Metric::ParityByteSum);
    for r in &records {
        let _ = geth_table.add(*r, 0);
        let _ = parity_table.add(*r, 0);
    }
    let mut target = [0u8; 64];
    rng.fill(&mut target[..]);
    let target_hash = NodeId(target).kad_hash();
    let geth_closest = geth_table.closest(&target_hash, 16);
    let parity_closest = parity_table.closest(&target_hash, 16);
    let overlap = geth_closest
        .iter()
        .filter(|g| parity_closest.iter().any(|p| p.id == g.id))
        .count();
    println!("closest-16 sets for a random target:");
    println!(
        "  geth table size {} / parity table size {}",
        geth_table.len(),
        parity_table.len()
    );
    println!(
        "  overlap between the two closest-16 answers: {overlap}/16 \
         (low overlap = Parity NEIGHBORS responses are useless to Geth's lookups)"
    );

    // 4. The distribution view, small-scale (Fig 11 is the 100K version).
    let mut geth_at_256 = 0;
    let mut parity_sum = 0u64;
    let trials = 5_000;
    for _ in 0..trials {
        let p: [u8; 32] = rng.gen();
        let q: [u8; 32] = rng.gen();
        if log_distance_geth(&p, &q) == 256 {
            geth_at_256 += 1;
        }
        parity_sum += log_distance_parity(&p, &q) as u64;
    }
    println!("\n{trials} random pairs:");
    println!(
        "  geth: {:.1}% at distance 256 (expect ~50%)",
        100.0 * geth_at_256 as f64 / trials as f64
    );
    println!(
        "  parity: mean distance {:.1} (expect ~224)",
        parity_sum as f64 / trials as f64
    );
}
