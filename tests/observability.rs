//! Observability guarantees, end to end: same-seed crawls export
//! byte-identical traces, and installing the recorder never perturbs the
//! simulation (zero observer effect).

use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

const SIM_MS: u64 = 2 * 60_000;

/// A small always-on world crawled start to finish, optionally under the
/// obs recorder. Returns the aggregated store's JSON plus the recorder.
fn crawl(instrument: bool) -> (String, Option<obs::Recorder>) {
    let recorder = if instrument {
        let r = obs::Recorder::new();
        r.install();
        Some(r)
    } else {
        None
    };
    let config = WorldConfig {
        seed: 77,
        n_nodes: 12,
        duration_ms: SIM_MS,
        always_on_fraction: 1.0,
        spammer_ips: 0,
        udp_loss: 0.0,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    let key = SecretKey::from_bytes(&[0xCB; 32]).unwrap();
    let crawler = NodeFinder::new(key, CrawlerConfig::default(), world.bootstrap.clone());
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    world.sim.run_until(SIM_MS);
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);
    obs::uninstall();
    (store.to_json(), recorder)
}

/// Two fresh same-seed runs must export byte-identical JSONL traces and
/// Prometheus snapshots — the replay guarantee the flight recorder is
/// built on.
#[test]
fn trace_export_is_byte_identical_across_same_seed_runs() {
    let (store_a, rec_a) = crawl(true);
    let (store_b, rec_b) = crawl(true);
    let rec_a = rec_a.unwrap();
    let rec_b = rec_b.unwrap();
    assert!(rec_a.event_count() > 0, "trace must not be empty");
    assert_eq!(rec_a.export_jsonl(), rec_b.export_jsonl());
    assert_eq!(rec_a.prometheus(), rec_b.prometheus());
    assert_eq!(store_a, store_b);
}

/// Installing the recorder must not change a single byte of the
/// resulting DataStore: obs never touches the sim RNG or schedules
/// events, so the instrumented world replays the uninstrumented one.
#[test]
fn recorder_has_zero_observer_effect() {
    let (instrumented, _rec) = crawl(true);
    let (bare, _) = crawl(false);
    assert_eq!(instrumented, bare);
}

/// Every instrumented layer shows up in the metrics: discovery traffic,
/// RLPx frames, DEVp2p HELLOs, crawler funnel counters, engine totals.
#[test]
fn all_layers_report_metrics() {
    let (_store, rec) = crawl(true);
    let rec = rec.unwrap();
    for counter in [
        "netsim.events_total",
        "netsim.udp_sent",
        "discv4.pings_sent",
        "discv4.pongs_received",
        "discv4.findnodes_sent",
        "discv4.neighbors_received",
        "rlpx.auth_written",
        "rlpx.frames_written",
        "devp2p.hello_sent",
        "devp2p.hello_received",
        "crawler.funnel.sightings",
        "crawler.funnel.responded",
        "crawler.funnel.hello",
        "crawler.funnel.status",
    ] {
        assert!(
            rec.counter(counter) > 0,
            "counter {counter} never incremented"
        );
    }
    assert!(rec.gauge("netsim.queue_depth_peak") > 0);
    assert!(rec.gauge("discv4.table_size_peak") > 0);
    assert!(rec.gauge("crawler.cfg.probe_timeout_ms") > 0);
}

/// The TraceQuery API answers per-stage latency questions directly from
/// the flight recorder, without touching the DataStore.
#[test]
fn trace_query_exposes_stage_latencies() {
    let (_store, rec) = crawl(true);
    let rec = rec.unwrap();
    let q = rec.query();
    for stage in [
        "crawler.stage.connect_ms",
        "crawler.stage.auth_ms",
        "crawler.stage.hello_ms",
        "crawler.stage.status_ms",
    ] {
        let p99 = q.span_quantile_ms(stage, 0.99);
        assert!(p99.is_some(), "no {stage} spans recorded");
        assert!(
            p99.unwrap() < 30_000,
            "{stage} p99 {p99:?} exceeds the probe timeout"
        );
    }
    // Probe completions carry their connection type and outcome.
    let done = q.named("crawler.probe.done");
    assert!(!done.is_empty());
    assert!(done.iter().any(|e| e.field("responded").is_some()));
}
