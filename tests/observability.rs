//! Observability guarantees, end to end: same-seed crawls export
//! byte-identical traces, and installing the recorder never perturbs the
//! simulation (zero observer effect).

use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

const SIM_MS: u64 = 2 * 60_000;

/// A small always-on world crawled start to finish, optionally under the
/// obs recorder and/or the shard-aware self-profiler. Returns the
/// aggregated store's JSON plus the recorder.
fn crawl(instrument: bool, profile: bool) -> (String, Option<obs::Recorder>) {
    let recorder = if instrument {
        let r = obs::Recorder::new();
        r.install();
        Some(r)
    } else {
        None
    };
    if profile {
        obs::profile::install();
    }
    let config = WorldConfig {
        seed: 77,
        n_nodes: 12,
        duration_ms: SIM_MS,
        always_on_fraction: 1.0,
        spammer_ips: 0,
        udp_loss: 0.0,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    let key = SecretKey::from_bytes(&[0xCB; 32]).unwrap();
    let crawler = NodeFinder::new(key, CrawlerConfig::default(), world.bootstrap.clone());
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    world.sim.run_until(SIM_MS);
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);
    if profile {
        assert!(
            obs::profile::export_json().is_some(),
            "profiler was installed but produced no export"
        );
        obs::profile::uninstall();
    }
    obs::uninstall();
    (store.to_json(), recorder)
}

/// Two fresh same-seed runs must export byte-identical JSONL traces and
/// Prometheus snapshots — the replay guarantee the flight recorder is
/// built on.
#[test]
fn trace_export_is_byte_identical_across_same_seed_runs() {
    let (store_a, rec_a) = crawl(true, false);
    let (store_b, rec_b) = crawl(true, false);
    let rec_a = rec_a.unwrap();
    let rec_b = rec_b.unwrap();
    assert!(rec_a.event_count() > 0, "trace must not be empty");
    assert_eq!(rec_a.export_jsonl(), rec_b.export_jsonl());
    assert_eq!(rec_a.prometheus(), rec_b.prometheus());
    assert_eq!(store_a, store_b);
}

/// Installing the recorder must not change a single byte of the
/// resulting DataStore: obs never touches the sim RNG or schedules
/// events, so the instrumented world replays the uninstrumented one.
#[test]
fn recorder_has_zero_observer_effect() {
    let (instrumented, _rec) = crawl(true, false);
    let (bare, _) = crawl(false, false);
    assert_eq!(instrumented, bare);
}

/// Every instrumented layer shows up in the metrics: discovery traffic,
/// RLPx frames, DEVp2p HELLOs, crawler funnel counters, engine totals.
#[test]
fn all_layers_report_metrics() {
    let (_store, rec) = crawl(true, false);
    let rec = rec.unwrap();
    for counter in [
        "netsim.events_total",
        "netsim.udp_sent",
        "discv4.pings_sent",
        "discv4.pongs_received",
        "discv4.findnodes_sent",
        "discv4.neighbors_received",
        "rlpx.auth_written",
        "rlpx.frames_written",
        "devp2p.hello_sent",
        "devp2p.hello_received",
        "crawler.funnel.sightings",
        "crawler.funnel.responded",
        "crawler.funnel.hello",
        "crawler.funnel.status",
    ] {
        assert!(
            rec.counter(counter) > 0,
            "counter {counter} never incremented"
        );
    }
    assert!(rec.gauge("netsim.queue_depth_peak") > 0);
    assert!(rec.gauge("discv4.table_size_peak") > 0);
    assert!(rec.gauge("crawler.cfg.probe_timeout_ms") > 0);
}

/// The TraceQuery API answers per-stage latency questions directly from
/// the flight recorder, without touching the DataStore.
#[test]
fn trace_query_exposes_stage_latencies() {
    let (_store, rec) = crawl(true, false);
    let rec = rec.unwrap();
    let q = rec.query();
    for stage in [
        "crawler.stage.connect_ms",
        "crawler.stage.auth_ms",
        "crawler.stage.hello_ms",
        "crawler.stage.status_ms",
    ] {
        let p99 = q.span_quantile_ms(stage, 0.99);
        assert!(p99.is_some(), "no {stage} spans recorded");
        assert!(
            p99.unwrap() < 30_000,
            "{stage} p99 {p99:?} exceeds the probe timeout"
        );
    }
    // Probe completions carry their connection type and outcome.
    let done = q.named("crawler.probe.done");
    assert!(!done.is_empty());
    assert!(done.iter().any(|e| e.field("responded").is_some()));
}

/// The wall-clock self-profiler is quarantined: running the same seed
/// with profiling on must leave every exported byte — trace, metrics,
/// DataStore — identical to a run with profiling off. Wall time may only
/// ever surface in the profiler's own report.
#[test]
fn profiler_has_zero_observer_effect() {
    let (store_prof, rec_prof) = crawl(true, true);
    let (store_bare, rec_bare) = crawl(true, false);
    let rec_prof = rec_prof.unwrap();
    let rec_bare = rec_bare.unwrap();
    assert_eq!(
        rec_prof.export_jsonl(),
        rec_bare.export_jsonl(),
        "profiler perturbed the JSONL trace"
    );
    assert_eq!(
        rec_prof.prometheus(),
        rec_bare.prometheus(),
        "profiler perturbed the Prometheus snapshot"
    );
    assert_eq!(store_prof, store_bare, "profiler perturbed the DataStore");
}

/// Causal provenance end to end: a completed STATUS handshake's trace
/// event chains back through the handshake stages of the same connection
/// to an external root, with depth matching the chain length exactly.
///
/// The peer pipelines its responses: the RLPx ack and its HELLO both
/// answer the crawler's auth (sent during the connect dispatch), and
/// its STATUS answers the crawler's HELLO (sent during the auth
/// dispatch). So the recorded causal forest for one connection is
/// connect → {auth, hello} and auth → status — the STATUS receipt
/// chains status → auth → connect, with the hello receipt a sibling
/// branch off the same connect root.
#[test]
fn status_span_chains_back_through_the_handshake_to_a_root() {
    let (_store, rec) = crawl(true, false);
    let rec = rec.unwrap();
    let q = rec.query();

    let status = q.named("crawler.stage.status_ms");
    assert!(!status.is_empty(), "no STATUS spans recorded");
    // Join the four stages of one connection via the conn field each
    // stage span carries. Not every probed connection walks all four
    // stages (a probe can ride an already-established connection), so
    // pick the first STATUS completion whose conn has the full set.
    let stage_key = |name: &str, conn: &obs::Value| {
        q.named(name)
            .into_iter()
            .find(|e| e.field("conn") == Some(conn))
            .map(|e| e.key)
    };
    let (status_ev, hello_key, auth_key, connect_key) = status
        .iter()
        .find_map(|ev| {
            let conn = ev.field("conn")?;
            Some((
                ev,
                stage_key("crawler.stage.hello_ms", conn)?,
                stage_key("crawler.stage.auth_ms", conn)?,
                stage_key("crawler.stage.connect_ms", conn)?,
            ))
        })
        .expect("no connection completed all four handshake stages");
    assert_ne!(status_ev.key, 0, "stage span missing its dispatch key");

    let chain = q.chain(status_ev.key);
    assert_eq!(chain[0], status_ev.key);
    // The chain visits the earlier stages in reverse causal order.
    let pos = |key: u64| {
        chain
            .iter()
            .position(|&k| k == key)
            .unwrap_or_else(|| panic!("key {key} not on the causal chain {chain:?}"))
    };
    assert!(
        pos(auth_key) < pos(connect_key),
        "auth must be causally downstream of connect in {chain:?}"
    );
    // The pipelined hello receipt branches off the same connect root.
    let hello_chain = q.chain(hello_key);
    assert_eq!(
        hello_chain.get(1),
        Some(&connect_key),
        "hello's causal parent must be the connect stage"
    );
    // Both chains terminate at an external root (cause 0), and depth
    // counts the links exactly.
    for (chain, ev_depth) in [
        (&chain, status_ev.depth),
        (&hello_chain, q.events_for_key(hello_key)[0].depth),
    ] {
        let root = *chain.last().unwrap();
        assert_eq!(q.cause_of(root), Some(0), "chain did not reach a root");
        assert_eq!(
            chain.len(),
            ev_depth as usize + 1,
            "depth must equal the number of causal links"
        );
    }
}
