//! Scenario-driven robustness suite: NodeFinder vs. Byzantine peers and
//! injected network pathologies.
//!
//! Every scenario makes three claims, mirroring the conditions the live
//! crawl survived (§4.2):
//!
//! 1. **Termination** — the crawl is bounded by `run_until`; nothing
//!    wedges on a peer that stalls, floods, or resets.
//! 2. **Determinism** — two fresh worlds with the same seed produce
//!    byte-identical `DataStore`s, adversaries and faults included.
//! 3. **Coverage** — every reachable well-behaved host still completes
//!    a HELLO; the adversary degrades only its own funnel stage.

use adversary::{GarbageHello, ResetAfterN, SlowLoris, Tarpit, WrongGenesis};
use ethereum_p2p::prelude::*;
use ethwire::SNAPSHOT_HEAD;
use netsim::{Fault, FaultWindow, HostId, LinkSelector, Region};
use std::net::Ipv4Addr;

const RUN_MS: u64 = 5 * 60_000;
const N_HONEST: u8 = 4;

fn meta(reachable: bool) -> HostMeta {
    HostMeta {
        country: "US",
        asn: "Test",
        region: Region::NorthAmerica,
        reachable,
    }
}

fn crawler_config() -> CrawlerConfig {
    CrawlerConfig {
        // compress the paper's long intervals for a 5-minute world
        static_redial_interval_ms: 60_000,
        stale_after_ms: 10 * 60_000,
        probe_timeout_ms: 30_000,
        backoff: nodefinder::BackoffPolicy {
            base_ms: 5_000,
            cap_ms: 60_000,
            jitter_ms: 1_000,
        },
        penalty_threshold: 3,
        penalty_box_ms: 2 * 60_000,
        ..CrawlerConfig::default()
    }
}

type AdvFactory = dyn Fn(SecretKey, Vec<Endpoint>) -> Box<dyn netsim::Host>;

/// What one scenario run leaves behind for assertions.
struct Outcome {
    json: String,
    store: DataStore,
    honest: Vec<NodeRecord>,
    adv_id: NodeId,
    adv: Option<Box<dyn std::any::Any>>,
    penalty_boxed_total: u64,
}

/// Build a small controlled world — `N_HONEST` always-on Mainnet Geth
/// nodes, optionally one adversary, one NodeFinder — apply `shape` to the
/// simulator (fault windows, churn, flaps), and crawl it to `run_ms`.
fn run_scenario(
    seed: u64,
    run_ms: u64,
    adv: Option<&AdvFactory>,
    shape: &dyn Fn(&mut NetSim, &[HostId]),
) -> Outcome {
    let mut sim = NetSim::new(SimConfig {
        seed,
        udp_loss: 0.0,
        jitter_ms: 0,
        ..SimConfig::default()
    });

    let keyed: Vec<(SecretKey, NodeRecord)> = (0..N_HONEST)
        .map(|i| {
            let key = SecretKey::from_bytes(&[0x10 + i; 32]).expect("valid key");
            let record = NodeRecord::new(
                NodeId::from_secret_key(&key),
                Endpoint::new(Ipv4Addr::new(10, 0, 0, i + 1), 30303),
            );
            (key, record)
        })
        .collect();
    let honest: Vec<NodeRecord> = keyed.iter().map(|(_, r)| *r).collect();

    let mut honest_hosts = Vec::new();
    for (i, (key, record)) in keyed.iter().enumerate() {
        let peers: Vec<NodeRecord> = honest
            .iter()
            .copied()
            .filter(|r| r.id != record.id)
            .collect();
        let node = EthNode::new(
            NodeProfile::geth(
                *key,
                format!("Geth/honest-{i}/linux-amd64/go1.10"),
                Chain::new(ChainConfig::mainnet(), SNAPSHOT_HEAD),
            ),
            peers,
        );
        let host = sim.add_host(
            HostAddr::new(record.endpoint.ip, 30303),
            meta(true),
            Box::new(node),
        );
        sim.schedule_start(host, 0);
        honest_hosts.push(host);
    }

    let adv_key = SecretKey::from_bytes(&[0xAD; 32]).expect("valid key");
    let adv_id = NodeId::from_secret_key(&adv_key);
    let adv_record = NodeRecord::new(adv_id, Endpoint::new(Ipv4Addr::new(10, 0, 9, 9), 30303));
    let adv_host = adv.map(|factory| {
        let endpoints: Vec<Endpoint> = honest.iter().map(|r| r.endpoint).collect();
        let host = sim.add_host(
            HostAddr::new(adv_record.endpoint.ip, 30303),
            meta(true),
            factory(adv_key, endpoints),
        );
        sim.schedule_start(host, 0);
        host
    });

    let crawler_key = SecretKey::from_bytes(&[0xCC; 32]).expect("valid key");
    let mut bootstrap = honest.clone();
    if adv.is_some() {
        bootstrap.push(adv_record);
    }
    let crawler = NodeFinder::new(crawler_key, crawler_config(), bootstrap);
    let crawler_host = sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    sim.schedule_start(crawler_host, 0);

    shape(&mut sim, &honest_hosts);
    sim.run_until(run_ms);

    let crawler = sim
        .remove_host_behaviour(crawler_host)
        .expect("crawler present")
        .into_any()
        .downcast::<NodeFinder>()
        .expect("crawler type");
    let adv_box = adv_host.map(|h| {
        sim.remove_host_behaviour(h)
            .expect("adversary present")
            .into_any()
    });
    let store = DataStore::from_log(&crawler.log);
    Outcome {
        json: store.to_json(),
        store,
        honest,
        adv_id,
        adv: adv_box,
        penalty_boxed_total: crawler.penalty_boxed_total(),
    }
}

fn no_shape(_: &mut NetSim, _: &[HostId]) {}

/// Claim 3: every honest node was discovered and completed a HELLO.
fn assert_full_honest_coverage(outcome: &Outcome) {
    for record in &outcome.honest {
        let obs = outcome
            .store
            .nodes
            .get(&record.id)
            .unwrap_or_else(|| panic!("honest node {} never observed", record.endpoint.ip));
        assert!(
            obs.hello.is_some(),
            "honest node {} never completed HELLO",
            record.endpoint.ip
        );
    }
}

/// Claim 2: the same seed reproduces the same datastore, byte for byte.
fn assert_deterministic(
    seed: u64,
    adv: Option<&AdvFactory>,
    shape: &dyn Fn(&mut NetSim, &[HostId]),
) -> Outcome {
    let a = run_scenario(seed, RUN_MS, adv, shape);
    let b = run_scenario(seed, RUN_MS, adv, shape);
    assert_eq!(
        a.json, b.json,
        "two fresh worlds must produce byte-identical datastores"
    );
    a
}

// ---------------------------------------------------------------------
// Byzantine-peer scenarios
// ---------------------------------------------------------------------

#[test]
fn slow_loris_stalls_at_hello_without_hurting_coverage() {
    let factory: &AdvFactory = &|key, boot| Box::new(SlowLoris::new(key, boot));
    let outcome = assert_deterministic(71, Some(factory), &no_shape);
    assert_full_honest_coverage(&outcome);

    // The crawler authenticated the loris (RLPx fine) but timed out
    // waiting for HELLO — the paper's dominant dialed-but-silent class.
    let obs = outcome
        .store
        .nodes
        .get(&outcome.adv_id)
        .expect("loris dialed");
    assert!(obs.dials_attempted > 0);
    assert!(obs.hello.is_none(), "loris must never produce a HELLO");
    assert!(
        obs.failures.contains_key("hello_timeout"),
        "expected hello_timeout, failures: {:?}",
        obs.failures
    );
    let loris = outcome
        .adv
        .expect("adversary ran")
        .downcast::<SlowLoris>()
        .expect("loris type");
    assert!(loris.auths_acked > 0, "loris never saw a real auth");
}

#[test]
fn garbage_hello_is_classified_as_protocol_error() {
    let factory: &AdvFactory = &|key, boot| Box::new(GarbageHello::new(key, boot));
    let outcome = assert_deterministic(72, Some(factory), &no_shape);
    assert_full_honest_coverage(&outcome);

    let obs = outcome
        .store
        .nodes
        .get(&outcome.adv_id)
        .expect("garbage peer dialed");
    assert!(obs.hello.is_none());
    assert!(
        obs.failures.contains_key("protocol_error"),
        "expected protocol_error, failures: {:?}",
        obs.failures
    );
    let adv = outcome
        .adv
        .expect("adversary ran")
        .downcast::<GarbageHello>()
        .expect("garbage type");
    assert!(adv.garbage_sent > 0, "no garbage HELLO was ever delivered");
}

#[test]
fn wrong_genesis_peer_is_responsive_but_never_mainnet() {
    let factory: &AdvFactory = &|key, boot| Box::new(WrongGenesis::new(key, boot));
    let outcome = assert_deterministic(73, Some(factory), &no_shape);
    assert_full_honest_coverage(&outcome);

    // Fully protocol-conformant, so it lands in the responsive funnel…
    let obs = outcome
        .store
        .nodes
        .get(&outcome.adv_id)
        .expect("wrong-genesis peer dialed");
    assert!(obs.hello.is_some(), "handshake should succeed");
    let status = obs.status.expect("STATUS should be collected");
    assert_eq!(status.genesis_hash, [0xEE; 32]);
    // …but classification keeps it out of the Mainnet population (§5.1).
    assert!(!obs.is_mainnet());
    let adv = outcome
        .adv
        .expect("adversary ran")
        .downcast::<WrongGenesis>()
        .expect("wrong-genesis type");
    assert!(adv.statuses_sent > 0);
}

#[test]
fn findnode_tarpit_pollutes_discovery_but_crawl_terminates() {
    let factory: &AdvFactory = &|key, boot| Box::new(Tarpit::new(key, boot));
    let outcome = assert_deterministic(74, Some(factory), &no_shape);
    assert_full_honest_coverage(&outcome);

    let tarpit = outcome
        .adv
        .expect("adversary ran")
        .downcast::<Tarpit>()
        .expect("tarpit type");
    assert!(tarpit.queries_served > 0, "tarpit was never queried");
    assert!(tarpit.fakes_sent > 0);

    // The junk inflates the discovered-vs-responsive gap (Figs. 6–7)…
    let funnel = outcome.store.dial_funnel();
    assert!(
        funnel.discovered > outcome.honest.len() + 1,
        "fake records should appear in the store, funnel: {funnel:?}"
    );
    assert!(funnel.unresponsive_dialed > 0, "funnel: {funnel:?}");
    let totals = outcome.store.failure_totals();
    assert!(
        totals.get("connect_failed").copied().unwrap_or(0) > 0,
        "dials at TEST-NET addresses must fail, totals: {totals:?}"
    );
    // …and the penalty box absorbs the repeat offenders instead of
    // letting them starve the dial scheduler.
    assert!(
        outcome.penalty_boxed_total > 0,
        "repeatedly failing fakes should have been boxed"
    );
}

#[test]
fn reset_after_n_bytes_is_a_remote_reset() {
    let factory: &AdvFactory = &|key, boot| Box::new(ResetAfterN::new(key, boot));
    let outcome = assert_deterministic(75, Some(factory), &no_shape);
    assert_full_honest_coverage(&outcome);

    let obs = outcome
        .store
        .nodes
        .get(&outcome.adv_id)
        .expect("resetter dialed");
    assert!(obs.hello.is_none());
    assert!(
        obs.failures.contains_key("remote_reset"),
        "expected remote_reset, failures: {:?}",
        obs.failures
    );
    let adv = outcome
        .adv
        .expect("adversary ran")
        .downcast::<ResetAfterN>()
        .expect("resetter type");
    assert!(adv.resets > 0, "no connection was ever reset");
}

// ---------------------------------------------------------------------
// Network-fault scenarios
// ---------------------------------------------------------------------

#[test]
fn udp_burst_loss_window_is_survivable() {
    let shape = |sim: &mut NetSim, _: &[HostId]| {
        sim.add_fault(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 30_000,
            until_ms: 90_000,
            fault: Fault::UdpLoss(0.5),
        });
    };
    let outcome = assert_deterministic(81, None, &shape);
    // Discovery suffers inside the window, but TCP probing and the
    // post-window discovery rounds still reach everyone.
    assert_full_honest_coverage(&outcome);
}

#[test]
fn blackholed_host_is_rediscovered_after_the_window() {
    let target = Ipv4Addr::new(10, 0, 0, 2);
    let shape = move |sim: &mut NetSim, _: &[HostId]| {
        sim.add_fault(FaultWindow {
            link: LinkSelector::Host(HostAddr::new(target, 30303)),
            from_ms: 0,
            until_ms: 60_000,
            fault: Fault::Blackhole,
        });
    };
    let outcome = assert_deterministic(82, None, &shape);
    // The blackholed host failed its early dials and went through
    // backoff, but a retry after the window completed the probe.
    assert_full_honest_coverage(&outcome);
    let obs = outcome
        .store
        .nodes
        .values()
        .find(|o| o.ips.contains(&target))
        .expect("blackholed host observed");
    assert!(
        obs.failures.contains_key("connect_failed"),
        "window dials should have failed, failures: {:?}",
        obs.failures
    );
    assert!(obs.hello.is_some(), "recovery dial should have succeeded");
}

#[test]
fn corruption_window_degrades_then_recovers() {
    let crawler_addr = HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303);
    let shape = move |sim: &mut NetSim, _: &[HostId]| {
        sim.add_fault(FaultWindow {
            link: LinkSelector::Host(crawler_addr),
            from_ms: 0,
            until_ms: 30_000,
            fault: Fault::TcpCorrupt,
        });
    };
    let outcome = assert_deterministic(83, None, &shape);
    // Every in-window handshake fails some stage; the crawler classifies
    // rather than wedges, and clean re-dials finish the job.
    let totals = outcome.store.failure_totals();
    assert!(
        !totals.is_empty(),
        "corrupted handshakes should have been classified"
    );
    assert_full_honest_coverage(&outcome);
}

#[test]
fn churn_burst_and_nat_flap_are_survivable_and_deterministic() {
    let shape = |sim: &mut NetSim, honest: &[HostId]| {
        // Half the population drops at once for 30s…
        sim.churn_burst(&honest[2..], 60_000, 30_000);
        // …and one host's NAT mapping flaps twice.
        sim.nat_flap(honest[0], 90_000, 10_000, 2);
    };
    let outcome = assert_deterministic(84, None, &shape);
    assert_full_honest_coverage(&outcome);
}

#[test]
fn latency_spike_beyond_expiry_drops_stale_pings_without_pongs() {
    // A 25 s one-way latency spike exceeds discv4's 20 s packet
    // expiration window: every discovery datagram sent through it lands
    // stale. The receivers' expiration check must drop-and-count those
    // packets (a delayed PING elicits no PONG) instead of processing
    // them as fresh — and the crawl must recover once the spike lifts.
    let shape = |sim: &mut NetSim, _: &[HostId]| {
        sim.add_fault(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 0,
            until_ms: 60_000,
            fault: Fault::LatencySpike(25_000),
        });
    };

    let run_with_recorder = |shape: &dyn Fn(&mut NetSim, &[HostId])| {
        let rec = obs::Recorder::new();
        rec.install();
        let outcome = run_scenario(91, RUN_MS, None, shape);
        obs::uninstall();
        (rec, outcome)
    };

    let (rec_a, outcome_a) = run_with_recorder(&shape);
    let (rec_b, outcome_b) = run_with_recorder(&shape);
    assert_eq!(
        outcome_a.json, outcome_b.json,
        "spiked worlds must stay deterministic"
    );
    assert_eq!(
        rec_a.counter("discv4.expired_dropped"),
        rec_b.counter("discv4.expired_dropped"),
        "expiry accounting must be deterministic"
    );
    assert!(
        rec_a.counter("discv4.expired_dropped") > 0,
        "in-window datagrams arrive 25 s late and must be dropped as expired"
    );
    // TCP probing retries after the window still reach every honest host.
    assert_full_honest_coverage(&outcome_a);

    // Control: the identical world without the spike never trips the
    // expiration check — the drops above are caused by delay alone.
    let (rec_c, _) = run_with_recorder(&no_shape);
    assert_eq!(
        rec_c.counter("discv4.expired_dropped"),
        0,
        "without the spike nothing should expire in flight"
    );
}
