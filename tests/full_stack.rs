//! Cross-crate integration tests: the whole stack — crypto, RLP, discv4,
//! RLPx, DEVp2p, eth — driven through the simulator via the umbrella
//! crate's public API.

use adversary::{GarbageHello, ResetAfterN, SlowLoris, Tarpit};
use ethereum_p2p::prelude::*;
use ethpop::ServiceKind;
use netsim::Region;
use std::net::Ipv4Addr;

fn meta(reachable: bool) -> HostMeta {
    HostMeta {
        country: "US",
        asn: "Test",
        region: Region::NorthAmerica,
        reachable,
    }
}

/// Two behavioral nodes on different chains must refuse each other after
/// STATUS: the Geth side with SubprotocolError, the Parity side with
/// UselessPeer (§3 observation 4).
#[test]
fn chain_mismatch_disconnect_reasons_are_client_specific() {
    let mut sim = NetSim::new(SimConfig {
        udp_loss: 0.0,
        jitter_ms: 0,
        ..SimConfig::default()
    });

    let geth_key = SecretKey::from_bytes(&[1u8; 32]).unwrap();
    let parity_key = SecretKey::from_bytes(&[2u8; 32]).unwrap();
    let geth_record = NodeRecord::new(
        NodeId::from_secret_key(&geth_key),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
    );

    // Geth on Mainnet; Parity on Ropsten (network 3).
    let geth = EthNode::new(
        NodeProfile::geth(
            geth_key,
            "Geth/test".into(),
            Chain::new(ChainConfig::mainnet(), 100),
        ),
        vec![],
    );
    let parity = EthNode::new(
        NodeProfile::parity(
            parity_key,
            "Parity/test".into(),
            Chain::new(ChainConfig::alt(3, 33), 100),
        ),
        vec![geth_record], // parity bootstraps off geth and will dial it
    );

    let geth_host = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
        meta(true),
        Box::new(geth),
    );
    let parity_host = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 2), 30303),
        meta(true),
        Box::new(parity),
    );
    sim.schedule_start(geth_host, 0);
    sim.schedule_start(parity_host, 0);
    sim.run_until(120_000);

    let geth = sim
        .remove_host_behaviour(geth_host)
        .unwrap()
        .into_any()
        .downcast::<EthNode>()
        .unwrap();
    let parity = sim
        .remove_host_behaviour(parity_host)
        .unwrap()
        .into_any()
        .downcast::<EthNode>()
        .unwrap();

    // At least one side must have detected the mismatch and hung up with
    // its client-specific reason.
    let geth_sent_subproto = geth
        .stats
        .disconnects_sent
        .get("Subprotocol error")
        .copied()
        .unwrap_or(0);
    let parity_sent_useless = parity
        .stats
        .disconnects_sent
        .get("Useless peer")
        .copied()
        .unwrap_or(0);
    assert!(
        geth_sent_subproto + parity_sent_useless > 0,
        "expected a chain-mismatch disconnect; geth sent {:?}, parity sent {:?}",
        geth.stats.disconnects_sent,
        parity.stats.disconnects_sent
    );
    // And Parity never emits codes above 0x0b.
    assert_eq!(
        parity
            .stats
            .disconnects_sent
            .get("Subprotocol error")
            .copied()
            .unwrap_or(0),
        0,
        "parity must never send SubprotocolError"
    );
}

/// A light node HELLOs fine but never produces a STATUS, so the crawler
/// can't classify its network (§5.3's missing-node analysis).
#[test]
fn light_nodes_hello_but_never_status() {
    let mut sim = NetSim::new(SimConfig {
        udp_loss: 0.0,
        jitter_ms: 0,
        ..SimConfig::default()
    });

    let light_key = SecretKey::from_bytes(&[3u8; 32]).unwrap();
    let light_record = NodeRecord::new(
        NodeId::from_secret_key(&light_key),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
    );
    let light = EthNode::new(
        NodeProfile::light(
            light_key,
            "Parity/v1.10.3-light".into(),
            Capability::new("les", 2),
        ),
        vec![],
    );
    let crawler_key = SecretKey::from_bytes(&[4u8; 32]).unwrap();
    let crawler = NodeFinder::new(crawler_key, CrawlerConfig::default(), vec![light_record]);

    let light_host = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
        meta(true),
        Box::new(light),
    );
    let crawler_host = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 2), 30303),
        meta(true),
        Box::new(crawler),
    );
    sim.schedule_start(light_host, 0);
    sim.schedule_start(crawler_host, 0);
    sim.run_until(60_000);

    let crawler = sim
        .remove_host_behaviour(crawler_host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);
    let obs = store
        .nodes
        .get(&light_record.id)
        .expect("crawler must have probed the light node");
    assert!(obs.hello.is_some(), "HELLO should be collected");
    let hello = obs.hello.as_ref().unwrap();
    assert!(hello.capabilities.iter().any(|c| c.starts_with("les")));
    assert!(obs.status.is_none(), "light nodes never send eth STATUS");
    assert!(!obs.is_mainnet());
}

/// Classic vs Mainnet: same genesis hash, distinguished only by the DAO
/// header check — the crawler must classify both correctly.
#[test]
fn dao_check_separates_classic_from_mainnet() {
    let mut sim = NetSim::new(SimConfig {
        udp_loss: 0.0,
        jitter_ms: 0,
        ..SimConfig::default()
    });

    let main_key = SecretKey::from_bytes(&[5u8; 32]).unwrap();
    let classic_key = SecretKey::from_bytes(&[6u8; 32]).unwrap();
    let main_record = NodeRecord::new(
        NodeId::from_secret_key(&main_key),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
    );
    let classic_record = NodeRecord::new(
        NodeId::from_secret_key(&classic_key),
        Endpoint::new(Ipv4Addr::new(10, 0, 0, 2), 30303),
    );

    let mainnet_node = EthNode::new(
        NodeProfile::geth(
            main_key,
            "Geth/mainnet".into(),
            Chain::new(ChainConfig::mainnet(), ethwire::SNAPSHOT_HEAD),
        ),
        vec![],
    );
    let classic_node = EthNode::new(
        NodeProfile::geth(
            classic_key,
            "Geth/classic".into(),
            Chain::new(ChainConfig::classic(), ethwire::SNAPSHOT_HEAD),
        ),
        vec![],
    );
    let crawler_key = SecretKey::from_bytes(&[7u8; 32]).unwrap();
    let crawler = NodeFinder::new(
        crawler_key,
        CrawlerConfig::default(),
        vec![main_record, classic_record],
    );

    let h1 = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 1), 30303),
        meta(true),
        Box::new(mainnet_node),
    );
    let h2 = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 2), 30303),
        meta(true),
        Box::new(classic_node),
    );
    let hc = sim.add_host(
        HostAddr::new(Ipv4Addr::new(10, 0, 0, 3), 30303),
        meta(true),
        Box::new(crawler),
    );
    for h in [h1, h2, hc] {
        sim.schedule_start(h, 0);
    }
    sim.run_until(120_000);

    let crawler = sim
        .remove_host_behaviour(hc)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);

    let main_obs = store.nodes.get(&main_record.id).expect("mainnet probed");
    let classic_obs = store.nodes.get(&classic_record.id).expect("classic probed");
    // Both advertise the same genesis…
    assert_eq!(
        main_obs.status.unwrap().genesis_hash,
        classic_obs.status.unwrap().genesis_hash
    );
    // …but the DAO check separates them.
    assert_eq!(main_obs.dao_fork, Some(true));
    assert_eq!(classic_obs.dao_fork, Some(false));
    assert!(main_obs.is_mainnet());
    assert!(!classic_obs.is_mainnet());
}

/// Crawl a generated world, optionally salting it with ~10% adversarial
/// hosts, and return (ground truth, datastore).
fn crawl_population(with_adversaries: bool) -> (World, DataStore) {
    let config = WorldConfig {
        seed: 4242,
        n_nodes: 36,
        duration_ms: 10 * 60_000,
        always_on_fraction: 1.0,
        spammer_ips: 0,
        udp_loss: 0.0,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    let mut bootstrap = world.bootstrap.clone();
    if with_adversaries {
        // Four Byzantine hosts — ~10% of the population — each breaking
        // the probe pipeline at a different stage.
        type AdvFactory = Box<dyn Fn(SecretKey, Vec<Endpoint>) -> Box<dyn netsim::Host>>;
        let boot_eps: Vec<Endpoint> = world.bootstrap.iter().map(|r| r.endpoint).collect();
        let factories: Vec<AdvFactory> = vec![
            Box::new(|k, b| Box::new(SlowLoris::new(k, b))),
            Box::new(|k, b| Box::new(GarbageHello::new(k, b))),
            Box::new(|k, b| Box::new(Tarpit::new(k, b))),
            Box::new(|k, b| Box::new(ResetAfterN::new(k, b))),
        ];
        for (i, factory) in factories.into_iter().enumerate() {
            let key = SecretKey::from_bytes(&[0xA0 + i as u8; 32]).unwrap();
            let ep = Endpoint::new(Ipv4Addr::new(203, 0, 113, i as u8 + 1), 30303);
            bootstrap.push(NodeRecord::new(NodeId::from_secret_key(&key), ep));
            let host = world.sim.add_host(
                HostAddr::new(ep.ip, ep.tcp_port),
                meta(true),
                factory(key, boot_eps.clone()),
            );
            world.sim.schedule_start(host, 0);
        }
    }
    let crawler_key = SecretKey::from_bytes(&[0xCB; 32]).unwrap();
    let crawler = NodeFinder::new(
        crawler_key,
        CrawlerConfig {
            static_redial_interval_ms: 60_000,
            stale_after_ms: 10 * 60_000,
            probe_timeout_ms: 30_000,
            penalty_threshold: 3,
            penalty_box_ms: 2 * 60_000,
            ..CrawlerConfig::default()
        },
        bootstrap,
    );
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    world.sim.run_until(10 * 60_000);
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);
    (world, store)
}

/// Count ground-truth reachable well-behaved hosts whose HELLO the
/// crawler collected.
fn helloed_honest(world: &World, store: &DataStore) -> (usize, usize) {
    let reachable: Vec<_> = world.nodes.iter().filter(|n| n.reachable).collect();
    let helloed = reachable
        .iter()
        .filter(|n| {
            store
                .nodes
                .get(&n.initial_id)
                .map(|o| o.hello.is_some())
                .unwrap_or(false)
        })
        .count();
    (helloed, reachable.len())
}

/// A 10% adversarial population must shift the dialed-vs-responded
/// funnel in the paper's direction — more dialed-but-unresponsive IDs —
/// without costing a single well-behaved host (the crawler's probe
/// pipeline degrades per-peer, never globally).
#[test]
fn mixed_population_shifts_funnel_without_losing_honest_coverage() {
    let (base_world, base_store) = crawl_population(false);
    let (mixed_world, mixed_store) = crawl_population(true);

    // 100% of reachable well-behaved hosts complete a HELLO — with and
    // without the Byzantine contingent.
    let (base_found, base_total) = helloed_honest(&base_world, &base_store);
    let (mixed_found, mixed_total) = helloed_honest(&mixed_world, &mixed_store);
    assert_eq!(
        base_found, base_total,
        "baseline crawl must HELLO every reachable well-behaved host"
    );
    assert_eq!(
        mixed_found, mixed_total,
        "adversaries must not cost the crawler a single well-behaved host"
    );
    assert_eq!(base_total, mixed_total, "same generated ground truth");

    // The funnel widens at the bottom: every adversary (and the tarpit's
    // fake records) lands in dialed-but-unresponsive, exactly the gap the
    // paper measures between discovered and productive peers (Figs. 6–7).
    let base_funnel = base_store.dial_funnel();
    let mixed_funnel = mixed_store.dial_funnel();
    assert!(
        mixed_funnel.unresponsive_dialed > base_funnel.unresponsive_dialed,
        "expected more dialed-but-unresponsive IDs, base {base_funnel:?} mixed {mixed_funnel:?}"
    );
    assert!(
        mixed_funnel.discovered > base_funnel.discovered,
        "tarpit fakes should inflate the discovered set"
    );
    // And the failure classifiers saw the adversaries' signatures.
    let totals = mixed_store.failure_totals();
    assert!(
        totals.get("hello_timeout").copied().unwrap_or(0) > 0,
        "slow-loris signature missing: {totals:?}"
    );
    assert!(
        totals.get("protocol_error").copied().unwrap_or(0) > 0,
        "garbage-HELLO signature missing: {totals:?}"
    );
}

/// Profile construction sanity for non-eth services end to end: the world
/// builder uses these, so their invariants matter.
#[test]
fn profile_service_kinds_are_coherent() {
    let key = SecretKey::from_bytes(&[8u8; 32]).unwrap();
    let swarm = NodeProfile::other_service(key, "swarm/v0.3".into(), Capability::new("bzz", 1));
    assert!(matches!(swarm.service, ServiceKind::OtherService));
    assert_eq!(swarm.capabilities[0].name, "bzz");
    let light = NodeProfile::light(key, "les-client".into(), Capability::new("les", 2));
    assert!(matches!(light.service, ServiceKind::Light));
}
