//! Tier-1 gate for the detlint rules: the build fails on any new violation.
//!
//! This is the enforcement half of the workspace's determinism policy
//! (DESIGN.md § Determinism). `cargo run -p detlint` gives the same answer
//! interactively; this test makes `cargo test` sufficient to catch a
//! regression.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_no_new_detlint_violations() {
    let (new, _baselined) =
        detlint::check(workspace_root()).expect("detlint scan should read the workspace");
    if !new.is_empty() {
        let mut report = String::new();
        for violation in &new {
            report.push_str(&format!("  {violation}\n"));
        }
        panic!(
            "\n{} new detlint violation(s):\n{report}\
             Run `cargo run -p detlint -- --explain <rule>` for each rule's \
             rationale and escape hatch.\n",
            new.len()
        );
    }
}

#[test]
fn baseline_is_empty() {
    // The policy of this workspace is zero grandfathered debt; if a future
    // emergency adds a baseline entry, this test makes that state loud.
    let baseline = detlint::baseline::load(&workspace_root().join("detlint.baseline"))
        .expect("baseline file should be readable");
    assert!(
        baseline.is_empty(),
        "detlint.baseline has {} entr(ies); the policy is an empty baseline — \
         fix or annotate the sites instead: {:?}",
        baseline.len(),
        baseline,
    );
}

#[test]
fn workspace_is_clean_even_without_the_baseline() {
    // Stronger than the baseline-filtered check: the raw scan itself must
    // come back empty, so the two tests together pin both "no new debt"
    // and "no grandfathered debt".
    let violations =
        detlint::scan_workspace(workspace_root()).expect("scan should succeed on the workspace");
    assert!(
        violations.is_empty(),
        "expected a fully clean workspace, found: {violations:?}"
    );
}
