//! Tier-1 gate for the detlint rules: the build fails on any new violation.
//!
//! This is the enforcement half of the workspace's determinism policy
//! (DESIGN.md § Determinism). `cargo run -p detlint` gives the same answer
//! interactively; this test makes `cargo test` sufficient to catch a
//! regression.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_no_new_detlint_violations() {
    let (new, _baselined) =
        detlint::check(workspace_root()).expect("detlint scan should read the workspace");
    if !new.is_empty() {
        let mut report = String::new();
        for violation in &new {
            report.push_str(&format!("  {violation}\n"));
        }
        panic!(
            "\n{} new detlint violation(s):\n{report}\
             Run `cargo run -p detlint -- --explain <rule>` for each rule's \
             rationale and escape hatch.\n",
            new.len()
        );
    }
}

#[test]
fn baseline_is_empty() {
    // The policy of this workspace is zero grandfathered debt; if a future
    // emergency adds a baseline entry, this test makes that state loud.
    let baseline = detlint::baseline::load(&workspace_root().join("detlint.baseline"))
        .expect("baseline file should be readable");
    assert!(
        baseline.is_empty(),
        "detlint.baseline has {} entr(ies); the policy is an empty baseline — \
         fix or annotate the sites instead: {:?}",
        baseline.len(),
        baseline,
    );
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    // scripts/ci.sh renders the report twice and `cmp`s the files; this is
    // the same gate as a tier-1 test, pinning the whole pipeline — file
    // collection order, rule evaluation, shard-state inventory sorting —
    // as order-deterministic.
    let first = detlint::report::render_json(
        &detlint::check_report(workspace_root()).expect("first report scan"),
    );
    let second = detlint::report::render_json(
        &detlint::check_report(workspace_root()).expect("second report scan"),
    );
    assert_eq!(
        first, second,
        "detlint --json must be byte-identical across runs on an unchanged tree"
    );
}

#[test]
fn shard_state_inventory_covers_the_netsim_event_state() {
    // The R11 inventory is the input to ROADMAP item 1 (sharding the
    // simulation): the per-host state that a shard boundary would have to
    // move must be listed, and every banned handle inside it must carry an
    // explicit justification.
    let report = detlint::check_report(workspace_root()).expect("report scan");
    let names: Vec<&str> = report
        .shard_state
        .iter()
        .map(|ty| ty.name.as_str())
        .collect();
    for expected in ["ConnInfo", "Slot", "Ev", "Payload"] {
        assert!(
            names.contains(&expected),
            "shard-state inventory lost `{expected}` (have {names:?}); \
             was its `// shard-state` marker removed?"
        );
    }
    for ty in &report.shard_state {
        assert!(
            ty.path.starts_with("crates/netsim/"),
            "unexpected shard-state type outside netsim: {} in {}",
            ty.name,
            ty.path
        );
        for field in &ty.fields {
            if field.banned.is_some() {
                assert!(
                    field.justified,
                    "{}.{} holds {} without a detlint allow(R11) justification",
                    ty.name,
                    field.name,
                    field.banned.as_deref().unwrap_or("?")
                );
            }
        }
    }
}

#[test]
fn workspace_is_clean_even_without_the_baseline() {
    // Stronger than the baseline-filtered check: the raw scan itself must
    // come back empty, so the two tests together pin both "no new debt"
    // and "no grandfathered debt".
    let violations =
        detlint::scan_workspace(workspace_root()).expect("scan should succeed on the workspace");
    assert!(
        violations.is_empty(),
        "expected a fully clean workspace, found: {violations:?}"
    );
}
