//! Checkpoint/restore determinism, end to end: a crawl snapshotted at T
//! and resumed into a freshly built shell must export byte-identical
//! artifacts — DataStore JSON, obs JSONL trace, Prometheus snapshot — to
//! a run that never stopped, at shard counts {1, 4}. This is the proof
//! obligation for the staged pipeline's checkpointing: a snapshot is a
//! pure representation change, never a semantic one.
//!
//! The split run exercises the full restore stack: the netsim engine
//! image (wheels, per-host RNGs, TCP state), the crawler's `NFND`
//! section (interner, dial queue, penalty box, live probes, stage
//! checkpoints, crawl log), and the obs recorder image (metrics
//! registry, trace ring, sequence counter). The world here is honest
//! hosts plus the identity-rotating spammer — the adversary crate's
//! hosts deliberately do not implement `save_state`, so a snapshot of a
//! world containing them fails `Unsupported` by design.

use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

/// Snapshot point. The crawl is well underway: discovery has fanned
/// out, dynamic dials and static re-dials are in flight, and probes are
/// mid-handshake — exactly the state a checkpoint must capture.
const T_MS: u64 = 2 * 60_000;
/// Uninterrupted-run horizon (and the resumed run's target).
const FULL_MS: u64 = 4 * 60_000;
const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Everything a crawl externalizes, captured as bytes, plus the
/// accounting the bugfix sweep asserts on.
struct Artifacts {
    store_json: String,
    trace_jsonl: String,
    prometheus: String,
    events: u64,
    dialing_underflows: u64,
}

fn world_config(shards: usize) -> WorldConfig {
    WorldConfig {
        seed: 4242,
        n_nodes: 24,
        duration_ms: FULL_MS,
        always_on_fraction: 0.5,
        spammer_ips: 1,
        udp_loss: 0.05,
        shards,
        ..WorldConfig::default()
    }
}

/// Build the crawl world: the honest/spammer population from
/// `World::build` plus the NodeFinder. Identical config ⇒ identical
/// static structure, so the same builder serves both the uninterrupted
/// run and the restore shell.
fn build_crawl_world(shards: usize) -> (World, netsim::HostId) {
    let mut world = World::build(world_config(shards));
    let crawler_key = SecretKey::from_bytes(&[0xCB; 32]).unwrap();
    let crawler = NodeFinder::new(
        crawler_key,
        CrawlerConfig {
            static_redial_interval_ms: 60_000,
            stale_after_ms: FULL_MS,
            probe_timeout_ms: 30_000,
            penalty_threshold: 3,
            penalty_box_ms: 2 * 60_000,
            ..CrawlerConfig::default()
        },
        world.bootstrap.clone(),
    );
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    (world, host)
}

/// Pull the artifacts out of a finished world and uninstall its
/// recorder. Mirrors the shard-determinism harness: the per-shard
/// queue-depth gauges are one-per-shard by definition, so they are
/// stripped before comparison.
fn extract(mut world: World, host: netsim::HostId, recorder: &obs::Recorder) -> Artifacts {
    let events = world.sim.events_processed();
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let dialing_underflows = crawler.dialing_underflows();
    let store = DataStore::from_log(&crawler.log);
    obs::uninstall();
    let prometheus = recorder
        .prometheus()
        .lines()
        .filter(|l| !l.contains("netsim_shard_"))
        .map(|l| format!("{l}\n"))
        .collect();
    Artifacts {
        store_json: store.to_json(),
        trace_jsonl: recorder.export_jsonl(),
        prometheus,
        events,
        dialing_underflows,
    }
}

/// The reference: run straight to 2T with no interruption.
fn uninterrupted_run(shards: usize) -> Artifacts {
    let recorder = obs::Recorder::new();
    recorder.install();
    let (mut world, host) = build_crawl_world(shards);
    world.sim.run_until(FULL_MS);
    extract(world, host, &recorder)
}

/// The subject: run to T, snapshot the engine and the recorder, tear
/// everything down, rebuild the shell from config, restore both images,
/// and continue to 2T.
fn split_run(shards: usize) -> Artifacts {
    // First half: 0 → T.
    let recorder = obs::Recorder::new();
    recorder.install();
    let (mut world, _host) = build_crawl_world(shards);
    world.sim.run_until(T_MS);
    let events_at_t = world.sim.events_processed();
    let sim_snap = world.sim.snapshot().expect("engine snapshot at T");
    let obs_snap = recorder.snapshot_state();
    obs::uninstall();
    drop(world);

    // Second half: fresh shell, restore, T → 2T. The recorder image
    // overwrites whatever the shell build emitted, exactly as those
    // emissions are already folded into the first half's image.
    let recorder = obs::Recorder::new();
    recorder.install();
    let (mut world, host) = build_crawl_world(shards);
    recorder
        .restore_state(&obs_snap)
        .expect("recorder restore at T");
    world.sim.restore(&sim_snap).expect("engine restore at T");
    assert_eq!(
        world.sim.events_processed(),
        events_at_t,
        "restore must resume the event count, not reset it"
    );
    world.sim.run_until(FULL_MS);
    assert!(
        world.sim.events_processed() > events_at_t,
        "resumed run did no work after T"
    );
    extract(world, host, &recorder)
}

fn assert_identical(base: &Artifacts, other: &Artifacts, shards: usize) {
    assert_eq!(
        base.store_json, other.store_json,
        "DataStore diverged after resume at {shards} shards"
    );
    assert_eq!(
        base.trace_jsonl, other.trace_jsonl,
        "obs JSONL trace diverged after resume at {shards} shards"
    );
    assert_eq!(
        base.prometheus, other.prometheus,
        "Prometheus snapshot diverged after resume at {shards} shards"
    );
    assert_eq!(
        base.events, other.events,
        "event totals diverged after resume at {shards} shards"
    );
}

/// Assert the dial-slot accounting stayed clean: the checked decrement
/// never fired its underflow path, neither live nor in any export.
fn assert_accounting_clean(a: &Artifacts, label: &str) {
    assert_eq!(
        a.dialing_underflows, 0,
        "{label}: dialing underflow counter fired"
    );
    assert!(
        !a.prometheus.contains("dialing_underflow"),
        "{label}: underflow counter leaked into the Prometheus export"
    );
    assert!(
        !a.trace_jsonl.contains("dialing_underflow"),
        "{label}: underflow counter leaked into the trace"
    );
}

/// Snapshot-at-T / resume-to-2T is byte-identical to never stopping, at
/// shard counts {1, 4}, and the crawl-accounting fixes hold throughout.
#[test]
fn resume_exports_are_byte_identical() {
    for shards in SHARD_COUNTS {
        let full = uninterrupted_run(shards);
        assert!(
            full.events > 1_000,
            "world too quiet to prove anything at {shards} shards"
        );
        assert!(
            !full.store_json.is_empty() && !full.trace_jsonl.is_empty(),
            "exports must be non-trivial at {shards} shards"
        );
        let resumed = split_run(shards);
        assert_identical(&full, &resumed, shards);
        assert_accounting_clean(&full, "uninterrupted");
        assert_accounting_clean(&resumed, "resumed");
    }
}

/// The stage pipeline actually saw traffic: the checkpointed crawl must
/// show stage counters in its Prometheus export, proving the pipeline
/// instrumentation survives a snapshot/restore cycle rather than being
/// reset by it.
#[test]
fn resumed_run_reports_pipeline_progress() {
    let resumed = split_run(1);
    for stage in ["discover", "dial", "handshake", "ingest"] {
        assert!(
            resumed
                .prometheus
                .contains(&format!("crawler_stage_{stage}_entered")),
            "missing {stage} stage counter in resumed export"
        );
    }
}
