//! Shard-count invariance, end to end: the same seeded world crawled at
//! shard counts {1, 2, 4, 7} must export byte-identical DataStores, obs
//! traces, Prometheus snapshots, and dial funnels — with churn, loss,
//! jitter, Byzantine hosts, and (in the second scenario) an active fault
//! schedule all in play. This is the proof obligation for the sharded
//! scheduler: sharding is an execution-layout choice, never a semantic
//! one.

use adversary::{GarbageHello, ResetAfterN, SlowLoris, Tarpit};
use ethereum_p2p::prelude::*;
use netsim::{Fault, FaultWindow, LinkSelector, Region};
use std::net::Ipv4Addr;

const SIM_MS: u64 = 5 * 60_000;
const SHARD_COUNTS: [usize; 3] = [2, 4, 7];

fn meta(reachable: bool) -> HostMeta {
    HostMeta {
        country: "US",
        asn: "Test",
        region: Region::NorthAmerica,
        reachable,
    }
}

/// Everything a crawl externalizes, captured as bytes.
struct Artifacts {
    store_json: String,
    trace_jsonl: String,
    prometheus: String,
    funnel: String,
    events: u64,
    shard_events: Vec<u64>,
}

/// Crawl a mixed honest+Byzantine world at the given shard count. The
/// world carries churn (half the population cycles), UDP loss, latency
/// jitter, one identity-rotating spammer, and four adversaries breaking
/// the probe pipeline at different stages.
fn crawl(shards: usize, with_faults: bool) -> Artifacts {
    let recorder = obs::Recorder::new();
    recorder.install();
    let config = WorldConfig {
        seed: 4242,
        n_nodes: 24,
        duration_ms: SIM_MS,
        always_on_fraction: 0.5,
        spammer_ips: 1,
        udp_loss: 0.05,
        shards,
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    assert_eq!(world.sim.shard_count(), shards.max(1));

    let mut bootstrap = world.bootstrap.clone();
    type AdvFactory = Box<dyn Fn(SecretKey, Vec<Endpoint>) -> Box<dyn netsim::Host>>;
    let boot_eps: Vec<Endpoint> = world.bootstrap.iter().map(|r| r.endpoint).collect();
    let factories: Vec<AdvFactory> = vec![
        Box::new(|k, b| Box::new(SlowLoris::new(k, b))),
        Box::new(|k, b| Box::new(GarbageHello::new(k, b))),
        Box::new(|k, b| Box::new(Tarpit::new(k, b))),
        Box::new(|k, b| Box::new(ResetAfterN::new(k, b))),
    ];
    for (i, factory) in factories.into_iter().enumerate() {
        let key = SecretKey::from_bytes(&[0xA0 + i as u8; 32]).unwrap();
        let ep = Endpoint::new(Ipv4Addr::new(203, 0, 113, i as u8 + 1), 30303);
        bootstrap.push(NodeRecord::new(NodeId::from_secret_key(&key), ep));
        let host = world.sim.add_host(
            HostAddr::new(ep.ip, ep.tcp_port),
            meta(true),
            factory(key, boot_eps.clone()),
        );
        world.sim.schedule_start(host, 0);
    }

    if with_faults {
        // A burst of cross-shard UDP loss, then a global latency spike —
        // both windows overlap live crawl traffic. Fault draws come from
        // per-host RNG streams, so they too must be shard-invariant.
        world.sim.add_fault(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 60_000,
            until_ms: 120_000,
            fault: Fault::UdpLoss(0.5),
        });
        world.sim.add_fault(FaultWindow {
            link: LinkSelector::Any,
            from_ms: 150_000,
            until_ms: 210_000,
            fault: Fault::LatencySpike(80),
        });
    }

    let crawler_key = SecretKey::from_bytes(&[0xCB; 32]).unwrap();
    let crawler = NodeFinder::new(
        crawler_key,
        CrawlerConfig {
            static_redial_interval_ms: 60_000,
            stale_after_ms: SIM_MS,
            probe_timeout_ms: 30_000,
            penalty_threshold: 3,
            penalty_box_ms: 2 * 60_000,
            ..CrawlerConfig::default()
        },
        bootstrap,
    );
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    world.sim.run_until(SIM_MS);

    let events = world.sim.events_processed();
    let shard_events = world.sim.shard_event_counts();
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let store = DataStore::from_log(&crawler.log);
    obs::uninstall();
    // The per-shard queue-depth gauges are one-per-shard by definition,
    // so they are the lone carve-out from the byte-identity contract:
    // strip them before comparing (the global peak and everything else
    // must still match exactly).
    let prometheus = recorder
        .prometheus()
        .lines()
        .filter(|l| !l.contains("netsim_shard_"))
        .map(|l| format!("{l}\n"))
        .collect();
    Artifacts {
        store_json: store.to_json(),
        trace_jsonl: recorder.export_jsonl(),
        prometheus,
        funnel: format!("{:?}", store.dial_funnel()),
        events,
        shard_events,
    }
}

fn assert_identical(base: &Artifacts, other: &Artifacts, shards: usize) {
    assert_eq!(
        base.store_json, other.store_json,
        "DataStore diverged at {shards} shards"
    );
    assert_eq!(
        base.trace_jsonl, other.trace_jsonl,
        "obs JSONL trace diverged at {shards} shards"
    );
    assert_eq!(
        base.prometheus, other.prometheus,
        "Prometheus snapshot diverged at {shards} shards"
    );
    assert_eq!(
        base.funnel, other.funnel,
        "dial funnel diverged at {shards} shards"
    );
    assert_eq!(
        base.events, other.events,
        "event totals diverged at {shards} shards"
    );
}

/// Same seed, shard counts {1, 2, 4, 7}: every exported byte matches the
/// single-wheel reference.
#[test]
fn exports_are_byte_identical_across_shard_counts() {
    let base = crawl(1, false);
    assert!(base.events > 1_000, "world too quiet to prove anything");
    assert!(
        !base.store_json.is_empty() && !base.trace_jsonl.is_empty(),
        "exports must be non-trivial"
    );
    for shards in SHARD_COUNTS {
        let sharded = crawl(shards, false);
        assert_identical(&base, &sharded, shards);
        // Work really spread across the wheels…
        assert_eq!(sharded.shard_events.len(), shards);
        assert!(
            sharded.shard_events.iter().filter(|&&e| e > 0).count() > 1,
            "expected >1 active shard, got {:?}",
            sharded.shard_events
        );
        // …and the per-shard tallies cover every dispatched event.
        assert_eq!(sharded.shard_events.iter().sum::<u64>(), sharded.events);
    }
}

/// The same invariance with a fault schedule active: cross-shard loss
/// bursts and latency spikes draw from per-host RNG streams and must not
/// open a shard-visible divergence.
#[test]
fn exports_are_byte_identical_with_faults_active() {
    let base = crawl(1, true);
    let calm = crawl(1, false);
    assert!(base.events > 1_000, "world too quiet to prove anything");
    assert_ne!(
        base.trace_jsonl, calm.trace_jsonl,
        "fault schedule must actually perturb the trace"
    );
    for shards in SHARD_COUNTS {
        let sharded = crawl(shards, true);
        assert_identical(&base, &sharded, shards);
    }
}
