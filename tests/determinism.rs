//! Determinism guarantees: identical seeds reproduce identical crawls,
//! byte for byte — the property that makes every experiment in
//! EXPERIMENTS.md re-runnable.

use ethereum_p2p::prelude::*;
use std::net::Ipv4Addr;

fn crawl_fingerprint(seed: u64) -> (usize, usize, String) {
    let config = WorldConfig {
        seed,
        n_nodes: 25,
        duration_ms: 3 * 60_000,
        spammer_ips: 1,
        spammer_rotation_ms: 30_000,
        always_on_fraction: 0.6,
        udp_loss: 0.05, // loss exercised on purpose: it must be deterministic too
        ..WorldConfig::default()
    };
    let mut world = World::build(config);
    let key = SecretKey::from_bytes(&[9u8; 32]).unwrap();
    let crawler = NodeFinder::new(
        key,
        CrawlerConfig {
            static_redial_interval_ms: 45_000,
            ..CrawlerConfig::default()
        },
        world.bootstrap.clone(),
    );
    let host = world.sim.add_host(
        HostAddr::new(Ipv4Addr::new(192, 17, 100, 1), 30303),
        HostMeta::default_cloud(),
        Box::new(crawler),
    );
    world.sim.schedule_start(host, 0);
    world.sim.run_until(3 * 60_000);
    let crawler = world
        .sim
        .remove_host_behaviour(host)
        .unwrap()
        .into_any()
        .downcast::<NodeFinder>()
        .unwrap();
    let jsonl = crawler.log.to_jsonl();
    (crawler.log.conns.len(), crawler.log.events.len(), jsonl)
}

#[test]
fn same_seed_same_crawl_bytes() {
    let (conns_a, events_a, log_a) = crawl_fingerprint(12345);
    let (conns_b, events_b, log_b) = crawl_fingerprint(12345);
    assert_eq!(conns_a, conns_b);
    assert_eq!(events_a, events_b);
    assert_eq!(log_a, log_b, "logs must be byte-identical across runs");
    assert!(conns_a > 0 && events_a > 0, "crawl must have produced data");
}

#[test]
fn different_seed_different_crawl() {
    let (_, _, log_a) = crawl_fingerprint(1);
    let (_, _, log_b) = crawl_fingerprint(2);
    assert_ne!(log_a, log_b);
}

#[test]
fn two_fresh_worlds_produce_identical_datastores() {
    // Stronger than comparing raw logs: run the whole campaign twice through
    // two independently-constructed worlds, push each result through the
    // full analysis path (CrawlLog -> DataStore), and require the persisted
    // datastore to be byte-identical. This pins determinism of the
    // aggregation layer, not just of the simulator.
    let (_, _, log_a) = crawl_fingerprint(9001);
    let (_, _, log_b) = crawl_fingerprint(9001);
    let store_a = DataStore::from_log(&nodefinder::CrawlLog::from_jsonl(&log_a).unwrap());
    let store_b = DataStore::from_log(&nodefinder::CrawlLog::from_jsonl(&log_b).unwrap());
    assert!(store_a.total_ids() > 0, "campaign must observe nodes");
    assert_eq!(
        store_a.to_json(),
        store_b.to_json(),
        "datastore output must be byte-identical across fresh worlds"
    );
}

#[test]
fn log_persistence_roundtrip_through_disk_format() {
    let (_, _, jsonl) = crawl_fingerprint(777);
    let log = nodefinder::CrawlLog::from_jsonl(&jsonl).unwrap();
    assert_eq!(log.to_jsonl(), jsonl, "serialization must be stable");
    // and the datastore built from the reloaded log matches
    let store = DataStore::from_log(&log);
    assert!(store.total_ids() > 0);
}
