//! # ethereum-p2p — a reproduction of *Measuring Ethereum Network Peers* (IMC 2018)
//!
//! This umbrella crate re-exports the full workspace: the Ethereum P2P
//! protocol stack built from scratch, the NodeFinder measurement crawler,
//! a deterministic network simulator standing in for the live Internet,
//! and the analysis pipeline that regenerates the paper's tables and
//! figures.
//!
//! ## Layer map (paper §2)
//!
//! | Layer | Crate | What it implements |
//! |---|---|---|
//! | identity | [`enode`] | 512-bit node IDs (secp256k1 keys), `enode://` URLs |
//! | discovery | [`discv4`] + [`kad`] | signed UDP packets, k-buckets, iterative lookup, **both** XOR metrics (§6.3) |
//! | transport | [`rlpx`] | ECIES handshake, AES-CTR + keccak-MAC frames |
//! | session | [`devp2p`] | HELLO/DISCONNECT, capability negotiation |
//! | application | [`ethwire`] | eth/62-63 STATUS, headers, DAO-fork check |
//! | crypto | [`ethcrypto`] | keccak, SHA-256, HMAC, AES, secp256k1 — no external crypto |
//! | substrate | [`netsim`] | deterministic discrete-event network |
//! | world | [`ethpop`] | behavioral Geth/Parity/light/spammer populations |
//! | **contribution** | [`nodefinder`] | the crawler + §5.4 sanitization |
//! | evaluation | [`analysis`] | Tables 1–6, Figures 2–14 |
//! | robustness | [`adversary`] | Byzantine peers for fault-injection tests |
//! | observability | [`obs`] | deterministic sim-time tracing, metrics & flight recorder |
//!
//! ## Quick start
//!
//! ```
//! use ethereum_p2p::prelude::*;
//!
//! // Build a tiny world and let a crawler loose on it.
//! let config = WorldConfig { n_nodes: 12, duration_ms: 60_000, spammer_ips: 0,
//!                            udp_loss: 0.0, ..WorldConfig::default() };
//! let mut world = World::build(config);
//! let key = SecretKey::from_bytes(&[42u8; 32]).unwrap();
//! let crawler = NodeFinder::new(key, CrawlerConfig::default(), world.bootstrap.clone());
//! let addr = HostAddr::new(std::net::Ipv4Addr::new(192, 17, 100, 1), 30303);
//! let host = world.sim.add_host(addr, HostMeta::default_cloud(), Box::new(crawler));
//! world.sim.schedule_start(host, 0);
//! world.sim.run_until(60_000);
//!
//! let crawler = world.sim.remove_host_behaviour(host).unwrap()
//!     .into_any().downcast::<NodeFinder>().unwrap();
//! let store = DataStore::from_log(&crawler.log);
//! assert!(store.total_ids() > 0);
//! ```
//!
//! See `examples/` for fuller scenarios and `crates/bench/src/bin/` for
//! the per-table/figure experiment binaries.
#![forbid(unsafe_code)]

pub use adversary;
pub use analysis;
pub use devp2p;
pub use discv4;
pub use enode;
pub use ethcrypto;
pub use ethpop;
pub use ethwire;
pub use kad;
pub use netsim;
pub use nodefinder;
pub use obs;
pub use rlp;
pub use rlpx;

/// The names most programs need.
pub mod prelude {
    pub use analysis::{Cdf, CountRow};
    pub use devp2p::{Capability, DisconnectReason, Hello};
    pub use discv4::Discv4;
    pub use enode::{Endpoint, NodeId, NodeRecord};
    pub use ethcrypto::secp256k1::SecretKey;
    pub use ethpop::world::{TruthKind, World, WorldConfig};
    pub use ethpop::{EthNode, NodeProfile};
    pub use ethwire::{Chain, ChainConfig, EthMessage, Status};
    pub use kad::{Metric, RoutingTable};
    pub use netsim::{Host, HostAddr, HostMeta, NetSim, SimConfig};
    pub use nodefinder::{CrawlerConfig, DataStore, NodeFinder, SanitizeParams};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        // Spot-check the cross-crate surface stays wired together.
        let id = crate::enode::NodeId([1u8; 64]);
        assert_eq!(id.kad_hash(), crate::ethcrypto::keccak256(&[1u8; 64]));
        assert_eq!(crate::ethwire::MAINNET_NETWORK_ID, 1);
    }
}
