#!/usr/bin/env bash
# Performance regression guards.
#
# 1. Crawl throughput: compares the sim_events_per_wall_second in a
#    freshly generated results/BENCH_crawl.json against the committed
#    baseline (the same file at HEAD). Fails if throughput dropped more
#    than 20% — wall-clock noise on shared runners sits well inside that
#    band, a scheduler or payload regression does not.
# 2. Scaling curve (results/BENCH_scale.json): the 5,000-host tier must
#    hold >= 80% of the 1,000-host tier's steady-state throughput, and
#    the 50,000-host tier >= 85% of the 5,000-host tier — the
#    flat-scaling property the timer wheel + slab + compact-id +
#    crypto-memo work bought. Steady-state rates
#    (steady_events_per_wall_second, the post-join-storm window) are what
#    the cross-tier ratios compare: the storm is a crypto burst whose
#    *size* grows with the population, so whole-slice rates would fold a
#    workload-composition difference into what is meant to be a
#    per-event-cost comparison. The measured ratio sits at ~0.90; the
#    floor is set at 0.85 because back-to-back identical runs on a shared
#    box differ by up to ~4%, and the guard must catch structural
#    regressions, not machine weather.
# 3. Shard invariance: the scale artifact's embedded shard-divergence
#    check must report "identical": true.
# 4. Memory budget: per-tier RSS growth (each tier now runs in its own
#    child process, so rss_before/rss_after deltas are uncontaminated)
#    must stay under 210 kB/host at 5,000 hosts and 70 kB/host at
#    50,000 hosts (the compact-id footprint).
# 5. Shard balance: the 50,000-host 8-shard tier's imbalance_ratio
#    (max/min deterministic per-shard event counts) must stay <= 2.0 —
#    a skewed owner assignment serialises the barrier-epoch scheduler.
# 6. Allocation proxy: BENCH_crawl.json's alloc_bytes_per_event (crawler
#    retained heap over total sim events, deterministic at a fixed seed)
#    must not grow past 1.5x the committed baseline.
# 7. Checkpoint cycle: the scale artifact's 5,000-host snapshot+restore
#    probe must cost < 10% of that tier's steady-state wall time —
#    pausing a campaign has to stay cheap relative to running it.
#
# Usage:
#   scripts/bench_compare.sh            # compare results/BENCH_crawl.json vs HEAD
#   scripts/bench_compare.sh <current> <baseline>   # explicit files
set -u
cd "$(dirname "$0")/.."

current_file="${1:-results/BENCH_crawl.json}"

extract() {
    sed -n 's/.*"sim_events_per_wall_second": *\([0-9][0-9]*\).*/\1/p' | head -n 1
}

if [ $# -ge 2 ]; then
    baseline=$(extract <"$2")
else
    baseline=$(git show HEAD:results/BENCH_crawl.json 2>/dev/null | extract)
fi
current=$(extract <"$current_file")

if [ -z "${baseline:-}" ]; then
    echo "bench_compare: no committed baseline found — recording $current as the new baseline"
    exit 0
fi
if [ -z "${current:-}" ]; then
    echo "bench_compare: FAIL — $current_file has no sim_events_per_wall_second"
    exit 1
fi

# Regression threshold: current must be >= 80% of baseline.
floor=$((baseline * 80 / 100))
echo "bench_compare: baseline=$baseline ev/wall-s, current=$current ev/wall-s, floor=$floor"
if [ "$current" -lt "$floor" ]; then
    echo "bench_compare: FAIL — throughput regressed more than 20% vs the committed baseline"
    exit 1
fi

# ---- scale-artifact guards -------------------------------------------
# The committed full sweep carries its own invariants; a partial (smoke)
# artifact never overwrites it, so these check whatever is at
# results/BENCH_scale.json.
scale_file="results/BENCH_scale.json"
if [ -f "$scale_file" ]; then
    # Per-tier field extraction from the hand-formatted JSON: track the
    # enclosing tier's "hosts" value, print the wanted field when inside
    # the matching tier.
    tier_field() { # tier_field <hosts> <field>
        awk -v want="$1" -v field="\"$2\":" '
            $1 == "\"hosts\":" { h = $2; gsub(/[^0-9]/, "", h) }
            $1 == field && h == want { v = $2; gsub(/[^0-9]/, "", v); print v; exit }
        ' "$scale_file"
    }

    rate_1k=$(tier_field 1000 steady_events_per_wall_second)
    rate_5k=$(tier_field 5000 steady_events_per_wall_second)
    rate_50k=$(tier_field 50000 steady_events_per_wall_second)
    if [ -n "${rate_1k:-}" ] && [ -n "${rate_5k:-}" ]; then
        scale_floor=$((rate_1k * 80 / 100))
        echo "bench_compare: scaling curve 1k=$rate_1k ev/wall-s steady, 5k=$rate_5k ev/wall-s steady, floor=$scale_floor"
        if [ "$rate_5k" -lt "$scale_floor" ]; then
            echo "bench_compare: FAIL — 5k-host steady throughput below 80% of the 1k tier (scaling regression)"
            exit 1
        fi
    else
        echo "bench_compare: scale artifact lacks 1k/5k steady rates — skipping scaling-curve check"
    fi
    if [ -n "${rate_5k:-}" ] && [ -n "${rate_50k:-}" ]; then
        curve_floor=$((rate_5k * 85 / 100))
        echo "bench_compare: scaling curve 5k=$rate_5k ev/wall-s steady, 50k=$rate_50k ev/wall-s steady, floor=$curve_floor"
        if [ "$rate_50k" -lt "$curve_floor" ]; then
            echo "bench_compare: FAIL — 50k-host steady throughput below 85% of the 5k tier (scaling regression)"
            exit 1
        fi
    else
        echo "bench_compare: scale artifact lacks 5k/50k steady rates — skipping 50k-curve check"
    fi

    if grep -q '"identical": false' "$scale_file"; then
        echo "bench_compare: FAIL — sharded trace diverged from the single-wheel reference (see $scale_file)"
        exit 1
    fi

    # imbalance_ratio is fractional, so it bypasses the digits-only
    # tier_field helper; comparison is done in awk to keep this POSIX.
    imbalance=$(awk '
        $1 == "\"hosts\":" { h = $2; gsub(/[^0-9]/, "", h) }
        $1 == "\"imbalance_ratio\":" && h == 50000 { v = $2; gsub(/,/, "", v); print v; exit }
    ' "$scale_file")
    if [ -n "${imbalance:-}" ]; then
        echo "bench_compare: 50k-tier shard imbalance ratio $imbalance (ceiling 2.0)"
        if awk -v r="$imbalance" 'BEGIN { exit !(r > 2.0) }'; then
            echo "bench_compare: FAIL — 50k-tier shard imbalance above 2.0 (skewed owner assignment)"
            exit 1
        fi
    fi

    # Per-tier RSS budgets, in kB/host. Tiers run in their own child
    # processes, so rss_after - rss_before is that tier's own growth.
    check_rss() { # check_rss <hosts> <budget_kb_per_host>
        rss_before=$(tier_field "$1" rss_before_kb)
        rss_after=$(tier_field "$1" rss_after_kb)
        if [ -n "${rss_before:-}" ] && [ -n "${rss_after:-}" ] && [ "$rss_after" -gt 0 ]; then
            rss_delta=$((rss_after - rss_before))
            rss_budget=$(($2 * $1))
            echo "bench_compare: ${1}-host tier RSS growth ${rss_delta} kB (budget ${rss_budget} kB = $2 kB/host)"
            if [ "$rss_delta" -gt "$rss_budget" ]; then
                echo "bench_compare: FAIL — ${1}-host tier RSS exceeds the $2 kB/host budget"
                exit 1
            fi
        fi
    }
    check_rss 5000 210
    check_rss 50000 70

    # Checkpoint-cycle guard: pausing and resuming a crawl must stay
    # cheap relative to running it. At the 5,000-host tier the probe's
    # snapshot+restore wall time must come in under 10% of the tier's
    # steady-state wall time; past that, periodic checkpointing would
    # meaningfully tax a long-running campaign. Skipped when the
    # artifact predates the probe or was generated with
    # SCALE_SNAPSHOT_PROBE=0 (snapshot_bytes 0).
    snap_ms=$(tier_field 5000 snapshot_ms)
    restore_ms=$(tier_field 5000 restore_ms)
    steady_wall=$(tier_field 5000 steady_wall_ms)
    snap_bytes=$(tier_field 5000 snapshot_bytes)
    if [ -n "${snap_ms:-}" ] && [ -n "${restore_ms:-}" ] && [ -n "${steady_wall:-}" ] \
        && [ -n "${snap_bytes:-}" ] && [ "$snap_bytes" -gt 0 ]; then
        cycle_ms=$((snap_ms + restore_ms))
        cycle_ceiling=$((steady_wall / 10))
        echo "bench_compare: 5k-tier checkpoint cycle ${cycle_ms} ms (snapshot ${snap_ms} + restore ${restore_ms}, ${snap_bytes} B; ceiling ${cycle_ceiling} ms = 10% of ${steady_wall} ms steady wall)"
        if [ "$cycle_ms" -gt "$cycle_ceiling" ]; then
            echo "bench_compare: FAIL — 5k-tier snapshot/restore cycle above 10% of steady-state wall time"
            exit 1
        fi
    else
        echo "bench_compare: scale artifact lacks checkpoint-cycle fields — skipping checkpoint-cycle check"
    fi
fi

# ---- allocation-proxy guard ------------------------------------------
# alloc_bytes_per_event is deterministic at a fixed seed (integer heap
# bytes over an integer event count), so regressions here are structural
# — a table that started retaining per-event garbage — not noise.
alloc_extract() {
    sed -n 's/.*"alloc_bytes_per_event": *\([0-9.][0-9.]*\).*/\1/p' | head -n 1
}
if [ $# -ge 2 ]; then
    alloc_baseline=$(alloc_extract <"$2")
else
    alloc_baseline=$(git show HEAD:results/BENCH_crawl.json 2>/dev/null | alloc_extract)
fi
alloc_current=$(alloc_extract <"$current_file")
if [ -z "${alloc_baseline:-}" ]; then
    echo "bench_compare: no committed alloc_bytes_per_event baseline — skipping allocation-proxy check"
elif [ -z "${alloc_current:-}" ]; then
    echo "bench_compare: FAIL — $current_file has no alloc_bytes_per_event"
    exit 1
else
    echo "bench_compare: alloc proxy baseline=$alloc_baseline B/event, current=$alloc_current B/event (ceiling 1.5x)"
    if awk -v c="$alloc_current" -v b="$alloc_baseline" 'BEGIN { exit !(c > b * 1.5) }'; then
        echo "bench_compare: FAIL — alloc_bytes_per_event grew past 1.5x the committed baseline"
        exit 1
    fi
fi
echo "bench_compare: OK"
