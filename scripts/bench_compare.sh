#!/usr/bin/env bash
# Throughput regression guard.
#
# Compares the sim_events_per_wall_second in a freshly generated
# results/BENCH_crawl.json against the committed baseline (the same file
# at HEAD). Fails if throughput dropped more than 20% — wall-clock noise
# on shared runners sits well inside that band, a scheduler or payload
# regression does not.
#
# Usage:
#   scripts/bench_compare.sh            # compare results/BENCH_crawl.json vs HEAD
#   scripts/bench_compare.sh <current> <baseline>   # explicit files
set -u
cd "$(dirname "$0")/.."

current_file="${1:-results/BENCH_crawl.json}"

extract() {
    sed -n 's/.*"sim_events_per_wall_second": *\([0-9][0-9]*\).*/\1/p' | head -n 1
}

if [ $# -ge 2 ]; then
    baseline=$(extract <"$2")
else
    baseline=$(git show HEAD:results/BENCH_crawl.json 2>/dev/null | extract)
fi
current=$(extract <"$current_file")

if [ -z "${baseline:-}" ]; then
    echo "bench_compare: no committed baseline found — recording $current as the new baseline"
    exit 0
fi
if [ -z "${current:-}" ]; then
    echo "bench_compare: FAIL — $current_file has no sim_events_per_wall_second"
    exit 1
fi

# Regression threshold: current must be >= 80% of baseline.
floor=$((baseline * 80 / 100))
echo "bench_compare: baseline=$baseline ev/wall-s, current=$current ev/wall-s, floor=$floor"
if [ "$current" -lt "$floor" ]; then
    echo "bench_compare: FAIL — throughput regressed more than 20% vs the committed baseline"
    exit 1
fi
echo "bench_compare: OK"
