#!/usr/bin/env bash
# The full local gate, in the order a reviewer should trust it:
#
#   1. rustfmt   -- formatting is canonical (no diff)
#   2. clippy    -- workspace lint-clean; protocol crates additionally deny
#                   unwrap/expect (see each crate's [lints] table)
#   3. detlint   -- determinism, panic-safety, wire-policy & parallelism-
#                   readiness rules R1-R12 (see DESIGN.md): the JSON report
#                   is generated twice and byte-compared (the linter must
#                   be deterministic about determinism), then gated via
#                   --report, which prints the per-rule summary table and
#                   fails listing the offending codes
#   4. tests     -- the whole workspace, including tests/static_analysis.rs
#                   which re-runs detlint as a tier-1 test
#   5. conform   -- golden wire vectors + capped differential drivers from
#                   crates/conformance; CONFORMANCE_FULL=1 additionally runs
#                   the 10^5-case differential sweep in release mode
#   6. bench     -- the instrumented reference crawl; fails on any trace
#                   non-determinism or observer effect, emits BENCH_crawl.json;
#                   obsctl's profile/campaign --json reports over those
#                   artifacts are then generated twice and byte-compared
#   7. compare   -- fails if crawl throughput regressed >20% vs the
#                   committed BENCH_crawl.json baseline, if the committed
#                   scale artifact's 5k/1k curve dips below 0.8 or its
#                   50k/5k curve below 0.9, if its shard check diverged,
#                   if a tier's RSS blows its per-host budget, if the
#                   crawl's alloc_bytes_per_event proxy grew past 1.5x,
#                   or if the 5k-tier snapshot/restore cycle costs more
#                   than 10% of steady-state wall time
#   8. scale     -- bench_scale smoke tiers: 250 hosts (with the embedded
#                   shards-{1,4} divergence byte-check) and a sharded
#                   50,000-host world at a shortened sim slice
#
# Everything runs offline: external deps are vendored under vendor/.
# Clippy is best-effort -- some container images ship a toolchain without
# the clippy component, and its absence must not mask the other gates.
set -u
cd "$(dirname "$0")/.."

failures=0
step() {
    echo
    echo "==> $1"
    shift
    if "$@"; then
        echo "    OK"
    else
        echo "    FAILED: $1"
        failures=$((failures + 1))
    fi
}

step "cargo fmt --check" cargo fmt --check

if cargo clippy --version >/dev/null 2>&1; then
    step "cargo clippy" cargo clippy --workspace --all-targets -- -D warnings
else
    echo
    echo "==> cargo clippy"
    echo "    SKIPPED: clippy component not installed"
fi

# detlint: write the machine-readable report twice and require the two to
# be byte-identical, then gate on the report's contents. --json always
# exits 0 (the verdict lives in the report); --report exits 1 listing the
# offending codes when new violations are present.
detlint_json() {
    mkdir -p results \
        && cargo run -q -p detlint -- --json >results/detlint.json \
        && cargo run -q -p detlint -- --json >results/detlint.json.2 \
        && cmp -s results/detlint.json results/detlint.json.2 \
        && rm -f results/detlint.json.2
}
step "detlint --json (byte-identical across runs)" detlint_json
step "detlint --report (rule summary + gate)" \
    cargo run -q -p detlint -- --report results/detlint.json
step "cargo test" cargo test --workspace -q
# The adversarial/fault-injection scenarios are tier-1: call them out so a
# failure is attributable at a glance even though the workspace run above
# already includes them.
step "robustness suite" cargo test -q --test robustness
# Shard-count invariance is likewise tier-1: the same seeded world at
# shard counts {1,2,4,7} must export byte-identical artifacts, faults and
# all (plus the netsim-level property test over arbitrary assignments).
step "shard equivalence suite" cargo test -q --test shard_determinism
# Checkpoint/restore is tier-1 the same way: a crawl snapshotted at T and
# resumed into a fresh shell must export byte-identical artifacts to a
# run that never stopped, at shard counts {1,4} — and the dial-slot
# underflow counter must stay silent throughout.
step "resume determinism suite" cargo test -q --test resume_determinism
step "shard dispatch property (netsim)" cargo test -q -p netsim --test proptest_shards
# Wire conformance is likewise tier-1 (the workspace run covers the golden
# vectors and the capped differential drivers); name it so a golden-vector
# mismatch is attributable at a glance. The full 10^5-case differential
# sweep is too slow for every CI run in debug mode, so it rides behind
# CONFORMANCE_FULL=1 and switches to release.
step "conformance (golden + capped differential)" cargo test -q -p conformance
if [ "${CONFORMANCE_FULL:-0}" = "1" ]; then
    step "conformance differential (full 10^5 cases)" \
        cargo test -q --release -p conformance --test differential
fi
# Instrumented reference crawl: runs the mixed-population world twice and
# fails if the trace export is non-deterministic, then once more without
# the recorder and fails on any observer effect. Writes results/
# obs_trace.jsonl, obs_metrics.prom and BENCH_crawl.json.
step "bench crawl (obs determinism)" cargo run -q --release -p bench --bin bench_crawl
# obsctl determinism: the trace tooling's --json reports over the crawl
# artifacts above must be byte-identical across back-to-back runs — the
# CLI may not inject timestamps, map ordering, or any other run-local
# state into its output.
obsctl_json() {
    cargo run -q -p obs --bin obsctl -- profile --json >results/obsctl_profile.json \
        && cargo run -q -p obs --bin obsctl -- profile --json >results/obsctl_profile.json.2 \
        && cmp -s results/obsctl_profile.json results/obsctl_profile.json.2 \
        && rm -f results/obsctl_profile.json.2 \
        && cargo run -q -p obs --bin obsctl -- campaign --json >results/obsctl_campaign.json \
        && cargo run -q -p obs --bin obsctl -- campaign --json >results/obsctl_campaign.json.2 \
        && cmp -s results/obsctl_campaign.json results/obsctl_campaign.json.2 \
        && rm -f results/obsctl_campaign.json.2
}
step "obsctl --json (byte-identical across runs)" obsctl_json
# Throughput guard: the crawl above rewrote results/BENCH_crawl.json; fail
# if sim-events per wall-second regressed >20% vs the committed baseline.
step "bench compare (throughput guard)" scripts/bench_compare.sh
# Scale smoke tests: the smallest bench_scale tier (250 hosts, including
# the shards-{1,4} divergence byte-check), then a sharded 50,000-host
# world on a shortened sim slice to smoke the barrier-epoch scheduler and
# flyweight memory path at full population. The full sweep — 250/1k/5k/50k
# plus the 250,000-host tier under SCALE_FULL=1 — is run manually when
# results/BENCH_scale.json is refreshed.
step "bench scale (250-host tier)" env TIERS=250 cargo run -q --release -p bench --bin bench_scale
step "bench scale (50k-host sharded smoke)" \
    env TIERS=50000 SCALE_SIM_MS=2000 SCALE_SHARD_CHECK=0 \
    cargo run -q --release -p bench --bin bench_scale

echo
if [ "$failures" -ne 0 ]; then
    echo "ci: $failures step(s) failed"
    exit 1
fi
echo "ci: all steps passed"
